"""Ablations: design choices DESIGN.md calls out, measured.

1. Blinding on/off — what the GFW does to the inter-proxy stream when
   it can parse the TLS framing and SNI.
2. Shadowsocks keep-alive timeout — the 10 s default vs longer, the
   paper's root cause for its PLT.
3. GFW DPI on/off — how much of each method's loss is censorship.
4. Active probing — Shadowsocks dies, ScholarCloud survives.
5. The 2012-2015 VPN-blocking era (footnote 2).
"""

import pytest

from repro.core import ScholarCloud
from repro.gfw import GfwConfig
from repro.measure import Testbed, format_table
from repro.measure.scenarios import run_plr_experiment, run_plt_experiment
from repro.middleware import NativeVpn, ShadowsocksMethod
from repro.net import IPv4Address


def test_ablation_blinding_is_load_bearing(benchmark, emit):
    """Without blinding, the inter-proxy TLS names the remote VM in its
    ClientHello; a policy update that blocks the endpoint kills it."""
    def run():
        # With blinding (deployed configuration): unclassified flows.
        blinded = Testbed()
        system = ScholarCloud(blinded)
        blinded.run_process(system.deploy())
        browser = blinded.browser(connector=system.connector())
        ok = blinded.run_process(browser.load(blinded.scholar_page))
        blinded_labels = dict(blinded.gfw.stats.flows_labeled)

        # Ablated: the domestic proxy speaks plain TLS with the remote
        # VM's hostname in the SNI, and the GFW blocks that endpoint.
        ablated = Testbed()
        ablated.policy.block_domain("vm.scholarcloud.example")
        from repro.net import WireFeatures
        system2 = ScholarCloud(ablated)
        ablated.run_process(system2.deploy())
        # Strip the blinding: expose TLS framing + SNI on the wire.
        system2.agility.codec.features = lambda: WireFeatures(  # type: ignore
            protocol_tag="tls", sni="vm.scholarcloud.example",
            entropy=7.9, handshake=True)
        browser2 = ablated.browser(connector=system2.connector())
        broken = ablated.run_process(browser2.load(ablated.scholar_page))
        return ok, blinded_labels, broken, ablated.gfw.stats.sni_resets

    ok, labels, broken, resets = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_blinding", format_table(
        ("configuration", "outcome"),
        [("blinded (deployed)", f"loads in {ok.plt:.2f}s; GFW labels: {labels or 'none'}"),
         ("unblinded TLS + blocked SNI", f"error: {broken.error}; {resets} RSTs")],
        title="Ablation — message blinding"))
    assert ok.succeeded
    assert not broken.succeeded
    assert resets >= 1


def test_ablation_keepalive_timeout(benchmark, emit):
    """The 10 s keep-alive forces re-auth every 60 s cycle; a 120 s
    keep-alive would have hidden most of Shadowsocks' PLT cost."""
    def measure(keepalive):
        testbed = Testbed()
        method = ShadowsocksMethod(testbed, keepalive=keepalive)
        testbed.run_process(method.setup())
        browser = testbed.browser(connector=method.connector())
        testbed.run_process(browser.load(testbed.scholar_page))
        plts = []
        for _ in range(6):
            testbed.sim.run(until=testbed.sim.now + 60)
            result = testbed.run_process(browser.load(testbed.scholar_page))
            plts.append(result.plt)
        return sum(plts) / len(plts), method.local.auth_rounds

    default_plt, default_auths = benchmark.pedantic(
        measure, args=(10.0,), rounds=1, iterations=1)
    long_plt, long_auths = measure(120.0)
    emit("ablation_keepalive", format_table(
        ("keep-alive", "mean subsequent PLT", "session auth rounds"),
        [("10 s (default)", f"{default_plt:.2f} s", default_auths),
         ("120 s", f"{long_plt:.2f} s", long_auths)],
        title="Ablation — Shadowsocks keep-alive timeout"))
    assert default_auths > long_auths
    assert default_plt > long_plt


def test_ablation_dpi_off(benchmark, emit):
    """Disable DPI: Tor's loss falls to path noise."""
    tor_with = benchmark.pedantic(run_plr_experiment, args=("tor",),
                                  kwargs={"loads": 10}, rounds=1, iterations=1)
    config = GfwConfig(inside_name="border-cn", dpi=False)
    from repro.measure.scenarios import prepare
    world = prepare("tor", gfw_config=config)
    link = world.testbed.border_link
    for _ in range(10):
        world.testbed.run_process(world.browser.load(world.testbed.scholar_page))
        world.testbed.sim.run(until=world.testbed.sim.now + 60)
    without = (sum(link.packets_dropped.values()),
               sum(link.packets_sent.values()))
    rate_without = without[0] / max(1, without[1])
    emit("ablation_dpi", format_table(
        ("configuration", "tor packet loss"),
        [("DPI on (default)", f"{tor_with.rate:.2%}"),
         ("DPI off", f"{rate_without:.2%}")],
        title="Ablation — GFW DPI"))
    assert tor_with.rate > 5 * max(rate_without, 1e-4)


def test_ablation_active_probing(benchmark, emit):
    """Probing on: Shadowsocks' server gets confirmed and IP-blocked;
    ScholarCloud's decoy-serving remote proxy survives."""
    def run_pair():
        outcomes = {}
        for name, factory in (("shadowsocks", ShadowsocksMethod),
                              ("scholarcloud", ScholarCloud)):
            testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                                   active_probing=True))
            method = factory(testbed)
            testbed.run_process(method.setup())
            browser = testbed.browser(connector=method.connector())
            testbed.run_process(browser.load(testbed.scholar_page))
            testbed.sim.run(until=testbed.sim.now + 120)
            blocked = testbed.policy.ip_blocked(
                IPv4Address(str(testbed.remote_vm.address)))
            after = testbed.run_process(browser.load(testbed.scholar_page))
            outcomes[name] = (blocked, after.succeeded)
        return outcomes

    outcomes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    emit("ablation_probing", format_table(
        ("method", "server IP blocked", "loads after probing"),
        [(name, blocked, "ok" if ok else "FAILS")
         for name, (blocked, ok) in outcomes.items()],
        title="Ablation — GFW active probing"))
    assert outcomes["shadowsocks"] == (True, False)
    assert outcomes["scholarcloud"] == (False, True)


def test_ablation_vpn_blocking_era(benchmark, emit):
    """Footnote 2: during 2012-2015 the GFW interfered with VPNs too."""
    era2017 = benchmark.pedantic(run_plt_experiment, args=("native-vpn",),
                                 kwargs={"samples": 5}, rounds=1, iterations=1)
    testbed = Testbed()
    testbed.policy.set_interference("vpn-pptp", 0.18)  # the 2013 regime
    method = NativeVpn(testbed)
    testbed.run_process(method.setup())
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    plts = []
    for _ in range(5):
        testbed.sim.run(until=testbed.sim.now + 60)
        result = testbed.run_process(browser.load(testbed.scholar_page))
        if result.succeeded:
            plts.append(result.plt)
    era2013 = sum(plts) / len(plts) if plts else float("inf")
    emit("ablation_vpn_era", format_table(
        ("era", "native VPN mean PLT"),
        [("2017 (registered VPNs tolerated)", f"{era2017.subsequent.mean:.2f} s"),
         ("2012-2015 (VPNs interfered)", f"{era2013:.2f} s")],
        title="Ablation — the GFW's evolving VPN policy"))
    assert era2013 > era2017.subsequent.mean * 1.5
