"""Figure 4: the TCP connection structure of one Scholar HTTP session.

TCP 1 — user/password auth (Shadowsocks only);
TCP 2 — HTTPS redirect (only when the client starts with plain HTTP,
        i.e. on first visits);
TCP 3 — the actual data connection (always);
TCP 4 — client-IP/account recording (first visit only).
"""

from repro.measure import Testbed, format_table
from repro.middleware import ShadowsocksMethod
from repro.net import PacketCapture


def run_session_trace():
    testbed = Testbed()
    method = ShadowsocksMethod(testbed)
    testbed.run_process(method.setup())
    browser = testbed.browser(connector=method.connector())

    origin_capture = PacketCapture(testbed.sim).attach(
        testbed.net.link_between("us-core", "scholar-origin"))
    auths_before_first = method.server.auths
    first = testbed.run_process(browser.load(testbed.scholar_page))
    first_auths = method.server.auths - auths_before_first
    first_conns = origin_capture.tcp_connections()
    first_record = len(testbed.scholar_server.accounts_recorded)

    testbed.sim.run(until=testbed.sim.now + 60)
    origin_capture.clear()
    auths_before_second = method.server.auths
    second = testbed.run_process(browser.load(testbed.scholar_page))
    second_auths = method.server.auths - auths_before_second
    second_conns = origin_capture.tcp_connections()
    second_record = len(testbed.scholar_server.accounts_recorded) - first_record

    def ports(conns):
        out = set()
        for flow in conns:
            out.add(flow[2])
            out.add(flow[4])
        return out

    return {
        "first": first, "second": second,
        "first_auths": first_auths, "second_auths": second_auths,
        "first_ports": ports(first_conns), "second_ports": ports(second_conns),
        "first_record": first_record, "second_record": second_record,
    }


def test_fig4_session_structure(benchmark, emit):
    trace = benchmark.pedantic(run_session_trace, rounds=1, iterations=1)
    rows = [
        ("TCP 1 (auth, Shadowsocks only)",
         "per session", f"first={trace['first_auths']} "
         f"subsequent={trace['second_auths']}"),
        ("TCP 2 (HTTP->HTTPS redirect)",
         "first visit only",
         f"port80 first={80 in trace['first_ports']} "
         f"subsequent={80 in trace['second_ports']}"),
        ("TCP 3 (Scholar data)",
         "always",
         f"port443 first={443 in trace['first_ports']} "
         f"subsequent={443 in trace['second_ports']}"),
        ("TCP 4 (account recording)",
         "first visit only",
         f"first={trace['first_record']} subsequent={trace['second_record']}"),
    ]
    emit("fig4_session", format_table(
        ("connection", "paper", "measured"), rows,
        title="Figure 4 — client-server connections per HTTP session"))

    assert trace["first"].succeeded and trace["second"].succeeded
    # TCP 1: the keep-alive lapsed between loads, so both re-auth.
    assert trace["first_auths"] >= 1 and trace["second_auths"] >= 1
    # TCP 2: plain-HTTP redirect connection only on the first visit.
    assert 80 in trace["first_ports"]
    assert 80 not in trace["second_ports"]
    # TCP 3: data connections always present.
    assert 443 in trace["first_ports"] and 443 in trace["second_ports"]
    # TCP 4: account recorded exactly once, on the first visit.
    assert trace["first_record"] == 1 and trace["second_record"] == 0
