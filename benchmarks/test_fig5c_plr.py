"""Figure 5c: packet loss rate — robustness to GFW censorship."""

import pytest

from repro.measure import format_table
from repro.measure.scenarios import (
    METHOD_NAMES,
    run_plr_experiment,
    run_us_baseline_plr,
)

#: Paper-reported averages.
PAPER = {
    "native-vpn": 0.0021,
    "openvpn": 0.002,
    "tor": 0.044,
    "shadowsocks": 0.0077,
    "scholarcloud": 0.0022,
}


@pytest.fixture(scope="module")
def plr_results():
    results = {name: run_plr_experiment(name, loads=25)
               for name in METHOD_NAMES}
    results["us-baseline"] = run_us_baseline_plr(loads=10)
    return results


def test_fig5c_plr(benchmark, emit, plr_results):
    benchmark.pedantic(run_plr_experiment, args=("scholarcloud",),
                       kwargs={"loads": 3, "seed": 1},
                       rounds=1, iterations=1)
    rows = []
    for name, result in plr_results.items():
        paper = PAPER.get(name)
        rows.append((
            name,
            f"{paper:.2%}" if paper is not None else "<0.1%",
            f"{result.rate:.2%}",
            f"{result.dropped}/{result.sent}",
        ))
    emit("fig5c_plr", format_table(
        ("method", "paper", "measured", "dropped/sent"), rows,
        title="Figure 5c — packet loss rate"))

    r = plr_results
    # Tor is the most-censored, by an order of magnitude (paper: 4.4%).
    assert r["tor"].rate == max(x.rate for x in r.values())
    assert 0.02 < r["tor"].rate < 0.07
    # Shadowsocks is measurably worse than VPNs/ScholarCloud.
    assert r["shadowsocks"].rate > r["native-vpn"].rate
    assert r["shadowsocks"].rate > r["scholarcloud"].rate
    # VPNs and ScholarCloud sit at path-noise levels (~0.2%).
    for name in ("native-vpn", "openvpn", "scholarcloud"):
        assert r[name].rate < 0.006, name
    # The US control shows the loss is the GFW's doing, not the path.
    assert r["us-baseline"].rate < r["tor"].rate / 5
