"""Fleet gates: PoP-count goodput scaling and bounded blackout dips.

Four acceptance properties for the multi-region fleet:

* **Goodput scales with PoP count.**  Under the CPU-bound PDF workload
  a single PoP saturates and sheds load; adding PoPs raises goodput
  and absorbs the failures, because rendezvous hashing spreads
  sessions ~evenly across the membership.
* **A mid-sweep PoP blackout is a bounded, recovering dip** — the
  failure detector evicts the dead PoP, its sessions fail over to
  their rendezvous second choice, and reinstatement follows the
  restart; availability dips by at most 10 points and ends back at
  its pre-fault level, seed-deterministically across 3 seeds.
* **The fleet report grid**: all 4 divergent regions x 250 clients
  with the blackout campaign running mid-sweep in every region,
  fanned over the parallel runner; the rendered availability report
  lands in ``benchmarks/results/fleet_report.txt`` (the CI artifact).
* **The headline scale** (skipped under ``REPRO_FAST``): 4 regions x
  2,500 hybrid-mode clients = 10,000 concurrent sessions.  The
  blackout grid stays at 250 clients/region on purpose — a PoP crash
  de-fluidizes every flow back to packet level, which is exactly
  right for fidelity and exactly wrong for simulating 10k packet-mode
  clients in CI.
"""

import os
import time

import pytest

from repro.fleet import (
    aggregate_fleet,
    fleet_sweep,
    run_fleet_region_point,
)

FAST = bool(os.environ.get("REPRO_FAST"))

FLEET_REGIONS = ("beijing", "shanghai", "guangzhou", "chengdu")
#: Clients per region on the blackout report grid.
GRID_CLIENTS = 250
#: Clients per region in the headline sweep (x 4 regions = 10,000).
HEADLINE_CLIENTS = 2500
#: The blackout must not cost more than 10 availability points.
DIP_CEILING = 0.10
SCALING_CLIENTS = 600
CAMPAIGN_SEEDS = (0, 1, 2)


def _campaign(seed, clients=GRID_CLIENTS):
    return run_fleet_region_point(
        "beijing", pops=4, clients=clients, cycles=2, seed=seed,
        mode="hybrid", workload="pdf", blackout_pop="pop-2",
        blackout_at=90.0, blackout_downtime=60.0)


def test_goodput_scales_with_pop_count(emit):
    results = {
        pops: run_fleet_region_point(
            "beijing", pops=pops, clients=SCALING_CLIENTS, cycles=1,
            seed=0, mode="hybrid", workload="pdf")
        for pops in (1, 2, 4)
    }
    lines = [f"fleet goodput vs PoP count ({SCALING_CLIENTS} clients, "
             f"pdf workload, hybrid mode)"]
    for pops, result in results.items():
        lines.append(
            f"  pops={pops}: goodput {result.goodput:.3f} loads/s, "
            f"{result.completed}/{result.attempts} completed")
    emit("fleet_pops_scaling", "\n".join(lines))

    assert results[1].goodput < results[2].goodput <= results[4].goodput
    assert results[4].goodput >= results[1].goodput * 1.2, (
        f"goodput {results[1].goodput:.3f} -> {results[4].goodput:.3f} "
        f"gained less than 20% from 1 -> 4 PoPs")
    # The single PoP sheds load at this level; four absorb all of it.
    assert results[1].failed > 0
    assert results[4].failed == 0


def test_blackout_dip_is_bounded_and_recovers_across_seeds(emit):
    lines = [f"blackout campaign (pop-2 down 90s-150s, {GRID_CLIENTS} "
             f"clients, 4 PoPs, pdf/hybrid)"]
    for seed in CAMPAIGN_SEEDS:
        result = _campaign(seed)
        report = aggregate_fleet([result], bucket=60.0)
        dip = report.availability_dip()
        lines.append(
            f"  seed {seed}: dip {100 * dip:.1f}pt, "
            f"recovered={report.recovered()}, remaps={result.remaps}, "
            f"evictions={result.evictions}")
        assert result.evictions == 1
        assert result.reinstatements == 1
        assert result.remaps > 0, "blackout displaced nobody"
        assert dip <= DIP_CEILING, (
            f"seed {seed}: availability dipped {100 * dip:.1f}pt "
            f"(> {100 * DIP_CEILING:.0f}pt ceiling)")
        assert report.recovered(), f"seed {seed}: never recovered"
    emit("fleet_blackout", "\n".join(lines))

    # Same seed, same campaign — byte-identical samples and assignment.
    first, second = _campaign(CAMPAIGN_SEEDS[0]), _campaign(CAMPAIGN_SEEDS[0])
    assert first.samples == second.samples
    assert first.assignment_digest == second.assignment_digest
    assert first.events == second.events


def test_fleet_blackout_report(emit):
    """The CI artifact: all 4 regions, blackout mid-sweep in each."""
    sessions = len(FLEET_REGIONS) * GRID_CLIENTS
    start = time.perf_counter()
    report, results = fleet_sweep(
        FLEET_REGIONS, pops=4, clients=GRID_CLIENTS, cycles=2,
        seed=0, mode="hybrid", workload="pdf", blackout_pop="pop-2",
        blackout_at=90.0, blackout_downtime=60.0, bucket=60.0)
    wall = time.perf_counter() - start

    summary = (
        f"fleet blackout grid: {len(FLEET_REGIONS)} regions x "
        f"{GRID_CLIENTS} clients = {sessions} concurrent sessions "
        f"(hybrid/pdf), mid-sweep pop-2 blackout in every region, "
        f"{wall:.1f} s wall\n"
        f"fleet dip {100 * report.availability_dip():.1f}pt, "
        f"recovered={report.recovered()}\n\n")
    emit("fleet_report", summary + report.render())

    total_attempts = sum(result.attempts for result in results)
    assert total_attempts == sessions * 2  # cycles=2 measured loads each
    # Every region's detector caught its blackout and its restart.
    assert report.evictions == len(FLEET_REGIONS)
    assert report.reinstatements == len(FLEET_REGIONS)
    assert report.availability_dip() <= DIP_CEILING
    assert report.recovered()
    assert report.total_remaps > 0


@pytest.mark.skipif(FAST, reason="full 10k-session sweep; REPRO_FAST trims "
                                 "CI to the 1,000-session blackout grid")
def test_headline_10k_sessions(emit):
    """4 regions x 2,500 clients: the ROADMAP scale target, healthy."""
    sessions = len(FLEET_REGIONS) * HEADLINE_CLIENTS
    start = time.perf_counter()
    report, results = fleet_sweep(
        FLEET_REGIONS, pops=4, clients=HEADLINE_CLIENTS, cycles=2,
        seed=0, mode="hybrid", workload="pdf", bucket=60.0)
    wall = time.perf_counter() - start

    total_attempts = sum(result.attempts for result in results)
    completed = sum(result.completed for result in results)
    availability = completed / total_attempts
    emit("fleet_10k",
         f"headline fleet sweep: {len(FLEET_REGIONS)} regions x "
         f"{HEADLINE_CLIENTS} clients = {sessions} concurrent sessions "
         f"(hybrid/pdf, no faults), {wall:.1f} s wall\n"
         f"{completed}/{total_attempts} loads completed "
         f"(availability {availability:.3f})\n\n" + report.render())

    assert total_attempts == sessions * 2
    # 2,500 bulk clients per region run the PoP CPUs at saturation;
    # partial shedding is honest, collapse is not.
    assert availability >= 0.90, (
        f"availability {availability:.3f} collapsed at {sessions} sessions")
    assert report.recovered()
