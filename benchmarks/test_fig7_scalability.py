"""Figure 7: PLT versus concurrent clients.

The paper drives {5,15,30,60,90,120,150,180} concurrent clients
against the single remote VM; Shadowsocks' PLT "sharply grows when the
number of concurrent clients exceeds 60" while native VPN, OpenVPN,
and ScholarCloud grow gently.  Tor is excluded (no control over the
bridge infrastructure).
"""

import os

import pytest

from repro.measure import format_table
from repro.measure.scenarios import run_scalability_point

#: Full paper sweep, or a trimmed one when REPRO_FAST is set.
LEVELS = ((5, 15, 30, 60, 90, 120, 150, 180)
          if not os.environ.get("REPRO_FAST") else (5, 30, 60, 120))
METHODS = ("native-vpn", "openvpn", "shadowsocks", "scholarcloud")


@pytest.fixture(scope="module")
def scalability_results():
    results = {}
    for method in METHODS:
        results[method] = {
            level: run_scalability_point(method, clients=level, cycles=1)
            for level in LEVELS
        }
    return results


def test_fig7_scalability(benchmark, emit, scalability_results):
    benchmark.pedantic(run_scalability_point, args=("scholarcloud",),
                       kwargs={"clients": 5, "cycles": 1, "seed": 1},
                       rounds=1, iterations=1)
    headers = ("clients",) + METHODS
    rows = []
    for level in LEVELS:
        rows.append((level,) + tuple(
            f"{scalability_results[m][level].mean:.2f}" for m in METHODS))
    emit("fig7_scalability", format_table(
        headers, rows, title="Figure 7 — mean PLT (s) vs concurrent clients"))

    r = scalability_results
    knee_low, knee_high = 60, max(LEVELS)
    # Shadowsocks: modest growth up to 60, sharp past it.
    ss_low = r["shadowsocks"][knee_low].mean
    ss_start = r["shadowsocks"][LEVELS[0]].mean
    ss_high = r["shadowsocks"][knee_high].mean
    assert ss_low < ss_start * 1.6           # pre-knee: near flat
    assert ss_high > ss_low * 1.8            # post-knee: sharp growth
    # The other three stay gentle across the whole sweep.
    for method in ("native-vpn", "openvpn", "scholarcloud"):
        start = r[method][LEVELS[0]].mean
        end = r[method][knee_high].mean
        assert end < start * 1.7, method
    # At full load, Shadowsocks is the worst of the four.
    assert ss_high == max(r[m][knee_high].mean for m in METHODS)
