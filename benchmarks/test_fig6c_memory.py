"""Figure 6c: client-side memory (model-based, see DESIGN.md)."""

import pytest

from repro.measure import (
    ClientLoadSample,
    format_table,
    memory_after_extra_bytes,
    memory_before_bytes,
)
from repro.measure.scenarios import METHOD_NAMES, run_traffic_experiment
from repro.units import MiB

#: Paper: Tor Browser idles ~70% above Chrome; extra after-load memory
#: spans +30 MB (native VPN) to +90 MB (Tor).
PAPER_EXTRA = {"native-vpn": MiB(30), "tor": MiB(90)}


@pytest.fixture(scope="module")
def memory_results():
    out = {}
    for name in METHOD_NAMES:
        traffic = run_traffic_experiment(name)
        sample = ClientLoadSample(name, traffic.cycle_bytes, 60.0,
                                  traffic.connections)
        out[name] = (memory_before_bytes(name),
                     memory_after_extra_bytes(sample))
    return out


def test_fig6c_memory(benchmark, emit, memory_results):
    benchmark(memory_before_bytes, "tor")
    rows = [
        (name,
         f"{before / MiB(1):.0f} MiB",
         f"{PAPER_EXTRA[name] / MiB(1):.0f} MB" if name in PAPER_EXTRA else "-",
         f"{extra / MiB(1):.0f} MiB")
        for name, (before, extra) in memory_results.items()
    ]
    emit("fig6c_memory", format_table(
        ("method", "before (browser)", "paper extra", "measured extra"),
        rows, title="Figure 6c — client memory (cost model)"))

    before = {name: values[0] for name, values in memory_results.items()}
    extra = {name: values[1] for name, values in memory_results.items()}
    # Tor Browser's resting set is ~70% above Chrome's.
    chrome = before["native-vpn"]
    assert before["tor"] / chrome == pytest.approx(1.7, abs=0.1)
    # After-load extra: native VPN least-ish, Tor most (paper 30 vs 90).
    assert extra["tor"] == max(extra.values())
    assert extra["tor"] > 1.8 * extra["native-vpn"]
    assert min(extra.values()) > MiB(15)
