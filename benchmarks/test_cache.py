"""Edge cache & content delivery: the transpacific-savings benches.

The content-delivery bet of ROADMAP item 3, gated:

* **Headline savings.**  At the 300-client overload point on the
  repeated-query (scraper-shaped, Zipf-popularity) workload, turning
  the edge cache on removes at least **40%** of the transpacific
  border bytes and lowers the median PLT — for every seed in (0, 1, 2),
  with admission bypass letting hits skip the waiting room.  Measured
  ~70% byte reduction and ~2.6x lower median PLT.
* **Determinism.**  Same-seed cached sweeps replay byte-identically:
  equal hit/miss/evict event digests, equal border byte counts.
* **Rotation coherence.**  A blinding rotation fired mid-sweep purges
  every entry and the sweep finishes on fresh-epoch hits; the store
  hard-asserts (crashes the run) if a stale-epoch entry were ever
  addressed, so completion *is* the no-stale-serves proof.
* **Fleet scale.**  The hybrid-mode multi-region sweep runs per-PoP
  second tiers and reports per-region hit rates in the FleetReport.

The seed-0 headline numbers land in ``benchmarks/results/
cache_report.json`` (the CI artifact).
"""

import json
import os

import pytest

from repro.cache import CacheConfig, query_corpus
from repro.fleet import fleet_sweep
from repro.http.browser import Browser
from repro.measure import format_table
from repro.measure.scenarios import prepare, run_repeated_query_point
from repro.overload import OverloadConfig

FAST = bool(os.environ.get("REPRO_FAST"))

#: The overload point the savings are claimed at (trimmed in CI's
#: REPRO_FAST lanes; the gates are identical at both scales).
CLIENTS = 120 if FAST else 300
SEEDS = (0,) if FAST else (0, 1, 2)
#: The acceptance floor: cached runs must shed >= 40% of border bytes.
MIN_REDUCTION = 0.40

#: Same knee knobs as benchmarks/test_overload.py, so the comparison
#: is at a calibrated operating point; the cached cell adds admission
#: bypass so hits skip the waiting room entirely.
_KNEE = dict(max_sessions=120, max_waiting=16, queue_delay_threshold=2.0)
OFF_CONFIG = OverloadConfig(**_KNEE)
ON_CONFIG = OverloadConfig(cache_bypass=True, **_KNEE)


@pytest.fixture(scope="module")
def savings():
    """(cache off, cache on) repeated-query points per seed."""
    results = {}
    for seed in SEEDS:
        off = run_repeated_query_point(clients=CLIENTS, cycles=1, seed=seed,
                                       overload=OFF_CONFIG)
        on = run_repeated_query_point(clients=CLIENTS, cycles=1, seed=seed,
                                      overload=ON_CONFIG, cache=CacheConfig())
        results[seed] = (off, on)
    return results


def test_cache_headline_savings(benchmark, emit, results_dir, savings):
    benchmark.pedantic(run_repeated_query_point,
                       kwargs={"clients": 20, "cycles": 1, "seed": 9,
                               "cache": CacheConfig()},
                       rounds=1, iterations=1)
    rows = []
    for seed in SEEDS:
        off, on = savings[seed]
        reduction = 1.0 - on.transpacific_bytes / off.transpacific_bytes
        rows.append((
            seed,
            f"{off.transpacific_bytes:,}",
            f"{on.transpacific_bytes:,}",
            f"{reduction:.1%}",
            f"{on.cache.hit_rate:.1%}",
            f"{off.plt.p50:.3f}",
            f"{on.plt.p50:.3f}",
        ))
    emit("cache_savings", format_table(
        ("seed", "border B (off)", "border B (on)", "reduction",
         "hit rate", "plt p50 off", "plt p50 on"),
        rows,
        title=f"Edge cache at the {CLIENTS}-client overload point "
              f"(repeated-query workload)"))

    for seed in SEEDS:
        off, on = savings[seed]
        reduction = 1.0 - on.transpacific_bytes / off.transpacific_bytes
        assert reduction >= MIN_REDUCTION, (
            f"seed {seed}: border-byte reduction {reduction:.1%} is below "
            f"the {MIN_REDUCTION:.0%} gate")
        assert on.plt.p50 < off.plt.p50, (
            f"seed {seed}: cached median PLT {on.plt.p50:.3f}s is not "
            f"below uncached {off.plt.p50:.3f}s")
        assert on.cache.hits > 0
        # Hits answered at the edge beat misses that crossed the border.
        if on.cache.plt_hit is not None and on.cache.plt_miss is not None:
            assert on.cache.plt_hit.p50 < on.cache.plt_miss.p50

    # The CI artifact: seed-0 CacheReport plus the headline comparison.
    off, on = savings[SEEDS[0]]
    report = on.cache
    payload = {
        "clients": CLIENTS,
        "seed": SEEDS[0],
        "hits": report.hits,
        "misses": report.misses,
        "hit_rate": round(report.hit_rate, 4),
        "evictions": report.evictions,
        "expirations": report.expirations,
        "invalidations": report.invalidations,
        "bytes_served": report.bytes_served,
        "transpacific_bytes_avoided": report.transpacific_bytes_avoided,
        "transpacific_bytes_off": off.transpacific_bytes,
        "transpacific_bytes_on": on.transpacific_bytes,
        "reduction": round(1.0 - on.transpacific_bytes
                           / off.transpacific_bytes, 4),
        "plt_p50_off": round(off.plt.p50, 6),
        "plt_p50_on": round(on.plt.p50, 6),
        "plt_p50_hit": (round(report.plt_hit.p50, 6)
                        if report.plt_hit is not None else None),
        "plt_p50_miss": (round(report.plt_miss.p50, 6)
                         if report.plt_miss is not None else None),
        "event_digest": report.event_digest,
    }
    (results_dir / "cache_report.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_cached_sweep_is_seed_deterministic(savings):
    """Re-running any seed replays the identical event stream."""
    for seed in SEEDS:
        again = run_repeated_query_point(clients=CLIENTS, cycles=1,
                                         seed=seed, overload=ON_CONFIG,
                                         cache=CacheConfig())
        _off, on = savings[seed]
        assert again.cache.event_digest == on.cache.event_digest, seed
        assert again.transpacific_bytes == on.transpacific_bytes, seed
        assert again.plt.p50 == on.plt.p50, seed


def test_rotation_mid_sweep_never_serves_stale(emit):
    """Rotate the blinding codec while scraper clients are mid-sweep.

    The store raises (killing the run) if a stale-epoch entry is ever
    addressed, so the sweep *completing* with post-rotation hits is
    the proof: rotation purged eagerly, the epoch moved in every key,
    and the cache refilled under the new codec.
    """
    world = prepare("scholarcloud", seed=0, cache=CacheConfig(),
                    extra_clients=8)
    testbed = world.testbed
    corpus = query_corpus(4)
    for page in corpus:
        testbed.scholar_server.add_page(page)
    cache = world.method.cache
    at_rotation = {}

    def client(sim, host, offset):
        connector = yield from world.method.attach_client(host)
        browser = Browser(sim, connector, name=f"browser-{host.name}")
        yield sim.timeout(offset)
        for page in (corpus[0], corpus[1], corpus[0], corpus[1],
                     corpus[0], corpus[0]):
            yield sim.process(browser.load(page))
            yield sim.timeout(1.0)

    def rotator(sim):
        yield sim.timeout(12.0)  # mid-sweep: caches are warm and busy
        at_rotation["hits"] = cache.hits
        epoch = world.method.rotate_blinding()
        at_rotation["epoch"] = epoch

    processes = [
        testbed.sim.process(client(testbed.sim, host, 2.0 * index),
                            name=f"scraper-{index}")
        for index, host in enumerate(testbed.extra_clients[:8])]
    testbed.sim.process(rotator(testbed.sim), name="rotator")
    testbed.sim.run(until=testbed.sim.all_of(processes))

    assert at_rotation["epoch"] == 1
    assert at_rotation["hits"] > 0        # the cache was warm going in
    assert cache.invalidations >= 1       # rotation purged eagerly
    assert cache.hits > at_rotation["hits"]  # fresh-epoch hits after
    emit("cache_rotation",
         f"mid-sweep blinding rotation: {at_rotation['hits']} hits "
         f"before, {cache.hits - at_rotation['hits']} fresh-epoch hits "
         f"after, {cache.invalidations} entries purged, 0 stale serves "
         f"(store hard-asserts)")


def test_fleet_hybrid_sweep_reports_per_region_hit_rates(emit):
    regions = ("beijing", "shanghai") if FAST else (
        "beijing", "shanghai", "guangzhou", "chengdu")
    report, _results = fleet_sweep(regions, pops=2,
                                   clients=40 if FAST else 80,
                                   cycles=1, seed=0, mode="hybrid",
                                   workload="queries",
                                   cache=CacheConfig(remote_tier=True))
    emit("cache_fleet", report.render())
    assert report.total_cache_lookups > 0
    assert report.cache_hit_rate > 0.10
    assert report.total_transpacific_avoided > 0
    for region in report.regions:
        assert region.cache_lookups > 0, region.region
        assert region.cache_hit_rate > 0.0, region.region
