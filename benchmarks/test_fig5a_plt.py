"""Figure 5a: first-time and subsequent page load times per method."""

import pytest

from repro.measure import format_table
from repro.measure.scenarios import METHOD_NAMES, run_plt_experiment

#: The paper's reported values (seconds).
PAPER = {
    "native-vpn": (None, 1.35),     # "between 1.2 and 1.5"
    "openvpn": (None, 1.35),
    "tor": (15.0, 2.8),
    "shadowsocks": (None, 3.7),
    "scholarcloud": (2.1, 1.3),
}


@pytest.fixture(scope="module")
def plt_results():
    return {name: run_plt_experiment(name, samples=12)
            for name in METHOD_NAMES}


def test_fig5a_plt(benchmark, emit, plt_results):
    benchmark.pedantic(run_plt_experiment, args=("scholarcloud",),
                       kwargs={"samples": 3, "seed": 1},
                       rounds=1, iterations=1)
    rows = []
    for name, result in plt_results.items():
        paper_first, paper_sub = PAPER[name]
        rows.append((
            name,
            f"{paper_first:.1f}" if paper_first else "-",
            f"{result.first_time:.1f}",
            f"{paper_sub:.1f}",
            f"{result.subsequent.mean:.2f}",
            f"[{result.subsequent.minimum:.2f}, {result.subsequent.maximum:.2f}]",
        ))
    emit("fig5a_plt", format_table(
        ("method", "paper first", "measured first",
         "paper subseq", "measured subseq", "range"),
        rows, title="Figure 5a — page load time (s)"))

    r = plt_results
    # First-time PLT always exceeds subsequent (DNS, cache, TCP 4).
    for result in r.values():
        assert result.first_time > result.subsequent.mean
    # Tor's first-time PLT is by far the largest (13-20 s in the paper).
    assert r["tor"].first_time == max(x.first_time for x in r.values())
    assert r["tor"].first_time > 8.0
    # Subsequent ordering: VPNs ~ ScholarCloud < Tor < Shadowsocks.
    assert r["shadowsocks"].subsequent.mean == max(
        x.subsequent.mean for x in r.values())
    assert r["shadowsocks"].subsequent.mean > 2 * r["native-vpn"].subsequent.mean
    assert r["scholarcloud"].subsequent.mean < 1.6 * r["native-vpn"].subsequent.mean
    assert r["tor"].subsequent.mean > r["openvpn"].subsequent.mean
