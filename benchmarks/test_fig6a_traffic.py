"""Figure 6a: client-side network traffic per access."""

import pytest

from repro.measure import format_table
from repro.measure.scenarios import (
    METHOD_NAMES,
    run_direct_us_traffic,
    run_traffic_experiment,
)

#: Paper: direct ≈ 19 KB; OpenVPN adds least (+8 KB), native VPN
#: most (+14 KB).
PAPER_BASELINE_KB = 19.0
PAPER_OVERHEAD_KB = {"openvpn": 8.0, "native-vpn": 14.0}


@pytest.fixture(scope="module")
def traffic_results():
    baseline = run_direct_us_traffic()
    return baseline, {name: run_traffic_experiment(name)
                      for name in METHOD_NAMES}


def test_fig6a_traffic(benchmark, emit, traffic_results):
    benchmark.pedantic(run_traffic_experiment, args=("openvpn",),
                       kwargs={"seed": 1}, rounds=1, iterations=1)
    baseline, results = traffic_results
    rows = [("direct (dotted line)", f"{PAPER_BASELINE_KB:.0f} KB",
             f"{baseline.cycle_bytes / 1000:.1f} KB", "-")]
    for name, result in results.items():
        overhead = (result.cycle_bytes - baseline.cycle_bytes) / 1000
        paper = PAPER_OVERHEAD_KB.get(name)
        rows.append((
            name,
            f"+{paper:.0f} KB" if paper is not None else "between",
            f"{result.cycle_bytes / 1000:.1f} KB",
            f"{overhead:+.1f} KB",
        ))
    emit("fig6a_traffic", format_table(
        ("method", "paper overhead", "measured cycle", "measured overhead"),
        rows, title="Figure 6a — network traffic per access cycle"))

    overheads = {name: result.cycle_bytes - baseline.cycle_bytes
                 for name, result in results.items()}
    # Every method costs more than going direct.
    assert all(value > 0 for value in overheads.values())
    # The paper's ordering among the deployable methods: native VPN
    # (full tunnel + keepalives) adds the most, OpenVPN adds little.
    deployable = {k: v for k, v in overheads.items() if k != "tor"}
    assert overheads["native-vpn"] == max(deployable.values())
    assert overheads["native-vpn"] > 1.5 * overheads["openvpn"]
    # ScholarCloud's blinding padding is cheap.
    assert overheads["scholarcloud"] < overheads["native-vpn"]
