"""Survival gates: the escalation-to-blackout longitudinal campaign.

The acceptance bar for session survivability, machine-checked by the
:class:`~repro.fleet.verifier.SurvivalVerifier` rather than hand-read
off a plot:

* **Every affected session migrates and finishes.**  A session holding
  a mid-file checkpoint in the victim region when it degrades must
  migrate to a healthy region, resume from that checkpoint, and
  complete — zero sessions lost while at least one region is healthy.
* **The fleet availability dip is bounded and recovering** — at most
  15 points below the campaign's best bucket, ending recovered.
* **Byte-identical per seed.**  Re-running any of the 3 campaign seeds
  reproduces the exact event log (blake2b digest and all), which is
  what makes the verifier's verdicts reproducible evidence rather
  than a lucky trace.

Artifacts land in ``benchmarks/results/survival_*.txt`` (the CI
``survival`` job uploads them): the per-seed verifier reports and the
fleet availability series.
"""

import time

from repro.fleet import SurvivalVerifier, run_survival_campaign
from repro.measure import availability_over_time

CAMPAIGN_SEEDS = (0, 1, 2)
#: The blackout must not cost more than 15 availability points.
DIP_CEILING = 0.15
BUCKET = 60.0


def _affected_sessions(result):
    """Sessions holding a victim-region checkpoint when it degraded.

    "Affected" means the hard case: at least one chunk already
    delivered through the victim's front door and no terminal event yet
    when the coordinator drained the region — checkpointed state exists
    and must survive the move.
    """
    degraded_at = next(
        event.time for event in result.events
        if event.kind == "region-degraded" and event.region == result.victim)
    chunked, finished = set(), set()
    for event in result.events:
        if event.time >= degraded_at:
            break
        if event.kind == "chunk" and event.region == result.victim:
            chunked.add(event.session)
        elif event.kind in ("session-complete", "session-lost"):
            finished.add(event.session)
    return chunked - finished


def test_escalation_to_blackout_survival(emit):
    verifier = SurvivalVerifier(dip_ceiling=DIP_CEILING, bucket=BUCKET)
    reports, series_lines, digests = [], [], {}
    for seed in CAMPAIGN_SEEDS:
        start = time.perf_counter()
        result = run_survival_campaign(seed=seed)
        wall = time.perf_counter() - start
        digests[seed] = result.event_digest
        report = verifier.verify_campaign(result)

        affected = _affected_sessions(result)
        migrated = {event.session for event in result.events
                    if event.kind == "migrate"}
        completed = {event.session for event in result.events
                     if event.kind == "session-complete"}
        resumes = [event for event in result.events
                   if event.kind == "resume"]
        sessions = (len(result.regions) * result.clients_per_region
                    * result.cycles)

        assert report.passed, f"seed {seed}:\n{report.render()}"
        assert result.lost == 0
        assert result.completed == sessions
        assert affected, f"seed {seed}: blackout caught nobody in flight"
        assert affected <= migrated, (
            f"seed {seed}: {sorted(affected - migrated)} were caught by "
            f"the blackout but never migrated")
        assert affected <= completed
        assert resumes and all(event.detail[0] > 0 for event in resumes), (
            f"seed {seed}: a resume restarted from byte zero")
        assert report.dip <= DIP_CEILING

        series = availability_over_time(sorted(result.samples()), BUCKET,
                                        horizon=result.duration)
        series_lines.append(f"seed {seed}: {series}")
        reports.append(
            f"seed {seed}: {result.completed}/{sessions} sessions, "
            f"{result.migrations} migrations "
            f"({len(affected)} affected, all resumed mid-file), "
            f"hedges={result.hedges} wins={result.hedge_wins} "
            f"losers_closed={result.losers_closed}, "
            f"digest={result.event_digest}, {wall:.1f} s wall\n"
            + report.render())

    emit("survival_verifier", "\n\n".join(reports))
    emit("survival_availability",
         "fleet availability during escalation-to-blackout "
         f"(bucket {BUCKET:.0f}s)\n" + "\n".join(series_lines))

    # Byte-identity: the same seed reproduces the same event log,
    # event for event — across all 3 campaign seeds.
    for seed in CAMPAIGN_SEEDS:
        again = run_survival_campaign(seed=seed)
        assert again.event_digest == digests[seed], (
            f"seed {seed}: event log not reproducible")
