"""Fluid-mode gates: the scale the flow-level fast path claims, asserted.

Two hard floors:

* the fig7-style bulk (PDF) overload cell runs at least **20x** faster
  in hybrid mode than packet mode (measured ~45-50x), with every
  pooled aggregate inside its declared tolerance band;
* a **2,000-client** hybrid sweep completes outright — the scale that
  motivated the fast path — and beats a conservatively *linear*
  extrapolation of measured packet-mode cost by at least 20x (packet
  cost grows superlinearly with clients, so the real win is larger).
"""

import time

from repro.measure.scenarios import run_overload_point
from repro.perf.bench import bench_fluid_fig7

SPEEDUP_FLOOR = 20.0
SWEEP_CLIENTS = 2000
PACKET_PROBE_CLIENTS = 100


def test_fluid_fig7_speedup_and_bands(emit):
    entry = bench_fluid_fig7(clients=6, cycles=1, seeds=(0, 1, 2),
                             mode="hybrid")
    emit("fluid_gate_fig7",
         f"fluid fig7 cell (6 clients x 3 seeds, pdf): packet "
         f"{entry['reference_s']:.2f} s, hybrid {entry['optimized_s']:.2f} s, "
         f"speedup {entry['speedup']:.1f}x, band failures: "
         f"{entry['band_failures'] or 'none'}")
    assert entry["band_failures"] == [], entry["band_failures"]
    assert entry["speedup"] >= SPEEDUP_FLOOR, (
        f"hybrid speedup {entry['speedup']:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x gate")


def test_hybrid_unlocks_2000_client_sweep(emit):
    """The acceptance scale: 2,000 clients, bulk workload, one seed.

    Packet mode is timed at a 100-client probe and extrapolated
    *linearly* to 2,000 clients — a deliberate underestimate (packet
    event count grows superlinearly: more concurrent flows, longer
    queues, more retransmissions) — and hybrid must still clear the
    20x floor against it.
    """
    start = time.perf_counter()
    packet_probe = run_overload_point(clients=PACKET_PROBE_CLIENTS, cycles=1,
                                      seed=0, mode="packet", workload="pdf")
    packet_probe_s = time.perf_counter() - start

    start = time.perf_counter()
    hybrid = run_overload_point(clients=SWEEP_CLIENTS, cycles=1,
                                seed=0, mode="hybrid", workload="pdf")
    hybrid_s = time.perf_counter() - start

    total = hybrid.completed + hybrid.failed
    availability = hybrid.completed / total if total else 0.0
    packet_estimate_s = packet_probe_s * (SWEEP_CLIENTS / PACKET_PROBE_CLIENTS)
    implied = packet_estimate_s / hybrid_s
    emit("fluid_gate_2000",
         f"hybrid {SWEEP_CLIENTS}-client pdf sweep: {hybrid_s:.1f} s wall, "
         f"{hybrid.completed}/{total} loads completed "
         f"(availability {availability:.3f}); packet probe "
         f"({PACKET_PROBE_CLIENTS} clients) {packet_probe_s:.1f} s -> "
         f"linear estimate {packet_estimate_s:.0f} s, implied speedup "
         f">={implied:.1f}x")
    assert total == SWEEP_CLIENTS
    # 2,000 un-throttled bulk clients sit far past the saturation knee
    # (the remote CPU alone is oversubscribed), so partial failure is
    # the system's honest answer — measured ~0.59.  The floor catches a
    # *model* collapse; availability parity with packet mode is checked
    # at feasible scales by the tolerance-band gates.
    assert availability >= 0.5, (
        f"availability {availability:.3f} collapsed at {SWEEP_CLIENTS} clients")
    assert implied >= SPEEDUP_FLOOR, (
        f"implied speedup {implied:.1f}x below the {SPEEDUP_FLOOR:.0f}x gate "
        f"(and the true packet cost is superlinear)")
    # The probe itself stayed healthy — this compares like against like.
    assert packet_probe.completed + packet_probe.failed == PACKET_PROBE_CLIENTS
