"""§1/§3 deployment economics: two VMs, 2.2 USD/day, 700 daily users."""

from repro.core import UserPopulation, evaluate_deployment
from repro.measure import format_table


def test_deployment_cost(benchmark, emit):
    report = benchmark(evaluate_deployment)
    rows = [
        ("daily operational cost", "2.2 USD", f"{report.daily_cost_usd:.1f} USD"),
        ("daily active users", "700", "700"),
        ("cost per daily user", "-",
         f"{report.cost_per_daily_user_usd * 100:.2f} cents"),
        ("peak load", "-", f"{report.peak_rps:.2f} req/s"),
        ("capacity headroom", "sustainable", f"{report.headroom:.1f}x"),
    ]
    emit("deployment_cost", format_table(
        ("quantity", "paper", "measured"), rows,
        title="Deployment — two regular VMs (§1)"))

    assert report.daily_cost_usd == 2.2
    assert report.sustainable
    # Growth check: the deployment still holds at 2x the user base.
    double = evaluate_deployment(population=UserPopulation(
        registered=4000, daily_active=1400))
    assert double.sustainable
