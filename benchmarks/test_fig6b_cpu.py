"""Figure 6b: client-side CPU utilization (model-based, see DESIGN.md)."""

import pytest

from repro.measure import (
    ClientLoadSample,
    browser_cpu_percent,
    extra_client_cpu_percent,
    format_table,
)
from repro.measure.scenarios import METHOD_NAMES, run_traffic_experiment

#: Paper: browser CPU from 3.07% (native VPN) to 3.62% (Tor).
PAPER = {"native-vpn": 3.07, "tor": 3.62}


@pytest.fixture(scope="module")
def cpu_results():
    out = {}
    for name in METHOD_NAMES:
        traffic = run_traffic_experiment(name)
        sample = ClientLoadSample(name, traffic.cycle_bytes, 60.0,
                                  traffic.connections)
        out[name] = (browser_cpu_percent(sample),
                     extra_client_cpu_percent(name))
    return out


def test_fig6b_cpu(benchmark, emit, cpu_results):
    def model_run():
        sample = ClientLoadSample("tor", 60_000, 60.0, 6)
        return browser_cpu_percent(sample)
    benchmark(model_run)

    rows = [
        (name,
         f"{PAPER[name]:.2f}%" if name in PAPER else "-",
         f"{browser:.2f}%",
         f"{extra:.2f}%")
        for name, (browser, extra) in cpu_results.items()
    ]
    emit("fig6b_cpu", format_table(
        ("method", "paper browser", "measured browser", "extra client"),
        rows, title="Figure 6b — client CPU utilization (cost model)"))

    browsers = {name: values[0] for name, values in cpu_results.items()}
    # Tor's stacked onion layers make it the heaviest.
    assert browsers["tor"] == max(browsers.values())
    # Native VPN (kernel MPPE) and ScholarCloud (no client crypto)
    # are the lightest.
    lightest = min(browsers, key=browsers.get)
    assert lightest in ("native-vpn", "scholarcloud")
    # The spread is modest — the paper calls +18% "not remarkable".
    assert browsers["tor"] / min(browsers.values()) < 1.6
    # Extra client software cost is trivial everywhere.
    assert all(extra < 0.5 for _b, extra in cpu_results.values())
