"""Shared helpers for the figure-reproduction benches.

Every bench prints its table (visible with ``pytest -s``) and writes it
under ``benchmarks/results/`` so the numbers survive the run; the
pytest-benchmark timing table records how long each reproduction takes.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir):
    """emit(name, text): print and persist a figure's output."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")
    return _emit
