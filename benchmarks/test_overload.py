"""Overload: the Figure 7 sweep extended past its knee.

The paper stops at 180 concurrent clients — about where the single
remote VM's CPU saturates.  This bench keeps going: with the overload
knobs on (admission cap + small waiting room + CoDel-style delay
bound), ScholarCloud's *goodput* — completed page loads per second of
simulated time — must plateau at the cap rather than collapse, with
the excess absorbed by explicit sheds and every admitted request's
queueing delay held under the configured bound.

With the knobs off the harness is event-for-event the Figure 7 one —
asserted here against :func:`run_scalability_point` — so the paper's
calibrated traces never see the overload layer.
"""

import os

import pytest

from repro.measure import format_table, queue_delay_percentiles
from repro.measure.scenarios import run_overload_point, run_scalability_point
from repro.overload import OverloadConfig

#: Past-the-knee sweep (the paper's axis ends at 180), trimmed when
#: REPRO_FAST is set.
LEVELS = ((60, 120, 240, 300)
          if not os.environ.get("REPRO_FAST") else (60, 240))

#: The bench's reference knobs: a 120-session cap (the knee the sweep
#: crosses), a small waiting room, and a 2 s queue-delay bound.
CONFIG = OverloadConfig(max_sessions=120, max_waiting=16,
                        queue_delay_threshold=2.0)


@pytest.fixture(scope="module")
def overload_results():
    return {level: run_overload_point("scholarcloud", clients=level,
                                      cycles=1, seed=0, overload=CONFIG)
            for level in LEVELS}


def test_overload_degradation(benchmark, emit, overload_results):
    benchmark.pedantic(run_overload_point,
                       kwargs={"clients": 60, "cycles": 1, "seed": 1,
                               "overload": CONFIG},
                       rounds=1, iterations=1)
    rows = []
    for level in LEVELS:
        result = overload_results[level]
        percentiles = queue_delay_percentiles(result.report.queue_delays)
        p50, p95 = percentiles[0.50], percentiles[0.95]
        rows.append((
            level,
            str(result.completed),
            str(result.client_sheds),
            f"{result.goodput:.3f}",
            f"{result.shed_rate:.1%}",
            f"{p50:.3f}/{p95:.3f}",
        ))
    emit("overload_degradation", format_table(
        ("clients", "completed", "shed", "goodput/s", "shed rate",
         "queue p50/p95 (s)"),
        rows, title="Figure 7 extended — graceful degradation past the knee"))

    results = overload_results
    peak = max(results[level].goodput for level in LEVELS)
    top = results[max(LEVELS)]
    # Graceful degradation: past the knee, goodput holds >= 90% of the
    # sweep's peak instead of collapsing (Fig. 7's Shadowsocks shape).
    assert top.goodput >= 0.9 * peak
    # The excess load was absorbed by explicit sheds, not queueing.
    assert top.shed_rate > 0.0
    assert top.client_sheds > 0
    # Every *admitted* request's queueing delay stayed within the
    # configured bound (<= because a waiter shed exactly at the
    # threshold and one granted exactly there are the same instant).
    for level in LEVELS:
        delays = overload_results[level].report.queue_delays
        assert all(d <= CONFIG.queue_delay_threshold for d in delays), level
    # Below the knee nothing is shed: the knobs are invisible to a
    # healthy load.
    assert results[min(LEVELS)].client_sheds == 0
    assert results[min(LEVELS)].shed_rate == 0.0


def test_overload_off_matches_figure7_harness():
    """overload=None is event-for-event the Figure 7 experiment."""
    plain = run_scalability_point("scholarcloud", clients=30, cycles=1,
                                  seed=0)
    off = run_overload_point("scholarcloud", clients=30, cycles=1, seed=0,
                             overload=None)
    assert off.plt == plain
    assert off.decisions == []
    assert off.report.offered == 0 and off.report.shed == 0


def test_overload_sweep_is_seed_deterministic(overload_results):
    level = max(LEVELS)
    again = run_overload_point("scholarcloud", clients=level, cycles=1,
                               seed=0, overload=CONFIG)
    baseline = overload_results[level]
    assert again.decisions == baseline.decisions
    assert again.report == baseline.report
    assert again.plt == baseline.plt

    other = run_overload_point("scholarcloud", clients=level, cycles=1,
                               seed=7, overload=CONFIG)
    assert other.decisions != baseline.decisions
