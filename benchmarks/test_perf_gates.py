"""Performance gates: the speedups this PR claims, asserted.

Two hard floors (with generous slack under their measured values):

* the byte-map codec fast path is at least **5x** the reference
  per-byte loop (measured ~30-65x);
* the end-to-end Figure 7 mini-sweep runs at least **2x** faster on
  the optimized paths + parallel runner than reference-serial
  (measured ~4x; on one CPU the win is carried entirely by the
  hot-path rewrites, which is the point of gating the combination).

The parallel-beats-serial assertion only runs on multicore hosts —
on a single CPU a process pool cannot win wall-clock.
"""

import os
import time

import pytest

from repro.core.blinding import ByteMapCodec
from repro.perf.bench import _corpus
from repro.perf.reference import (
    byte_map_decode_reference,
    byte_map_encode_reference,
    patched_reference_paths,
)
from repro.perf.runner import run_points, scalability_points, serial_map


def best_time(function, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_codec_fast_path_at_least_5x(benchmark, emit):
    codec = ByteMapCodec(b"gate-secret")
    data = _corpus(64 * 1024)
    benchmark.pedantic(lambda: codec.decode(codec.encode(data)),
                       rounds=3, iterations=1)
    optimized = best_time(lambda: codec.decode(codec.encode(data)))
    reference = best_time(lambda: byte_map_decode_reference(
        codec._inverse, byte_map_encode_reference(codec._forward, data)))
    speedup = reference / optimized
    emit("perf_gate_codec",
         f"byte-map codec 64 KiB round-trip: reference {reference * 1e3:.2f} ms, "
         f"optimized {optimized * 1e3:.2f} ms, speedup {speedup:.1f}x")
    assert speedup >= 5.0, f"codec speedup {speedup:.1f}x below the 5x gate"


@pytest.fixture(scope="module")
def fig7_points():
    return scalability_points(("scholarcloud", "shadowsocks"), (5,),
                              cycles=1, seed=0)


def test_fig7_combined_speedup_at_least_2x(benchmark, emit, fig7_points):
    benchmark.pedantic(lambda: serial_map(fig7_points[:1]),
                       rounds=1, iterations=1)
    optimized = best_time(lambda: run_points(fig7_points), repeat=1)
    with patched_reference_paths():
        reference = best_time(lambda: serial_map(fig7_points), repeat=1)
    speedup = reference / optimized
    emit("perf_gate_fig7",
         f"fig7 mini-sweep ({len(fig7_points)} points): reference-serial "
         f"{reference:.2f} s, optimized-parallel {optimized:.2f} s, "
         f"combined speedup {speedup:.1f}x")
    assert speedup >= 2.0, f"combined speedup {speedup:.1f}x below the 2x gate"


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel wall-clock win needs >1 CPU")
def test_parallel_beats_serial_on_multicore(emit):
    points = scalability_points(("native-vpn", "openvpn",
                                 "scholarcloud", "shadowsocks"), (5,),
                                cycles=1, seed=0)
    serial_s = best_time(lambda: serial_map(points), repeat=1)
    parallel_s = best_time(lambda: run_points(points, workers=2), repeat=1)
    speedup = serial_s / parallel_s
    emit("perf_gate_parallel",
         f"fig7 4-point sweep: serial {serial_s:.2f} s, parallel(2) "
         f"{parallel_s:.2f} s, speedup {speedup:.2f}x")
    assert speedup > 1.15, (
        f"parallel runner no faster than serial on {os.cpu_count()} CPUs")
