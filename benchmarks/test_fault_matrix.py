"""Fault matrix: session availability under the standard fault script.

Every access method rides out the same scripted timeline — a degraded
border link, a crashed-and-restarted remote VM, a mid-session GFW
escalation, a transpacific IP-block burst, and a DNS-poison burst —
and reports its session success rate and worst time-to-recovery.

The paper's availability claim (§4/Fig. 5c) reduces to: ScholarCloud's
server-side resilience (retry/backoff + failover pool + circuit
breakers) absorbs faults the client-side methods surface to the user.
"""

import math

import pytest

from repro.measure import format_table
from repro.measure.scenarios import METHOD_NAMES, run_fault_experiment


@pytest.fixture(scope="module")
def fault_results():
    return {name: run_fault_experiment(name, seed=0)
            for name in METHOD_NAMES}


def _ttr(value: float) -> str:
    if value == 0.0:
        return "-"
    return f"{value:.1f}s" if math.isfinite(value) else "never"


def test_fault_matrix(benchmark, emit, fault_results):
    benchmark.pedantic(run_fault_experiment, args=("scholarcloud",),
                       kwargs={"attempts": 6, "seed": 1},
                       rounds=1, iterations=1)
    rows = []
    for name, result in fault_results.items():
        avail = result.availability
        rows.append((
            name,
            str(avail.attempts),
            str(avail.successes),
            f"{avail.success_rate:.0%}",
            _ttr(avail.worst_time_to_recovery),
            str(result.failovers),
        ))
    emit("fault_matrix", format_table(
        ("method", "attempts", "ok", "rate", "worst TTR", "failovers"),
        rows, title="Fault matrix — availability under the standard script"))

    r = fault_results
    sc = r["scholarcloud"]
    # The headline: ScholarCloud's availability beats every other method.
    for name, result in r.items():
        assert sc.availability.success_rate >= result.availability.success_rate, name
    # The killed remote proxy was absorbed by failover, not surfaced:
    # replicas were picked while the primary was down, no dial ever
    # exhausted its retries, and no session returned an error.
    assert sc.failovers > 0
    assert sc.dials_failed == 0
    assert all(ok for _, ok in sc.samples)
    # The same faults genuinely hurt the client-side methods.
    assert any(result.availability.successes < result.availability.attempts
               for result in r.values())


def test_fault_matrix_is_seed_deterministic(fault_results):
    again = run_fault_experiment("scholarcloud", seed=0)
    assert again.samples == fault_results["scholarcloud"].samples
    assert again.timeline == fault_results["scholarcloud"].timeline

    other_seed = run_fault_experiment("scholarcloud", seed=7)
    assert other_seed.samples != fault_results["scholarcloud"].samples
