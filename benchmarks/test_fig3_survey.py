"""Figure 3: distribution of access methods among surveyed scholars."""

import pytest

from repro.measure import (
    expected_counts,
    figure3_distribution,
    format_table,
    sample_population,
)


def test_fig3_survey(benchmark, emit):
    population = benchmark(sample_population, 371, 2015)
    distribution = figure3_distribution(sample_population(50_000, seed=9))
    counts = expected_counts()

    rows = [
        ("bypass the GFW", "26%", f"{distribution['bypass-share']:.0%}"),
        ("VPN (of bypassers)", "43%", f"{distribution['vpn']:.0%}"),
        ("  native VPN (of VPN)", "93%",
         f"{distribution['native-vpn-within-vpn']:.0%}"),
        ("  OpenVPN (of VPN)", "7%",
         f"{distribution['openvpn-within-vpn']:.0%}"),
        ("Shadowsocks", "21%", f"{distribution['shadowsocks']:.0%}"),
        ("Tor", "2%", f"{distribution['tor']:.0%}"),
        ("other methods", "34%", f"{distribution['other']:.0%}"),
    ]
    emit("fig3_survey", format_table(
        ("category", "paper", "measured"), rows,
        title="Figure 3 — survey of 371 Tsinghua scholars (resampled)"))

    assert len(population) == 371
    assert abs(distribution["bypass-share"] - 0.26) < 0.01
    assert abs(distribution["vpn"] - 0.43) < 0.02
    assert abs(distribution["shadowsocks"] - 0.21) < 0.02
    assert sum(counts.values()) == pytest.approx(371)
