"""Figure 5b: round-trip time through each access method."""

import pytest

from repro.measure import format_table
from repro.measure.scenarios import METHOD_NAMES, run_rtt_experiment

#: Paper: Tor bears the longest RTT (~330 ms average).
PAPER_TOR_RTT = 0.330


@pytest.fixture(scope="module")
def rtt_results():
    return {name: run_rtt_experiment(name, probes=15)
            for name in METHOD_NAMES}


def test_fig5b_rtt(benchmark, emit, rtt_results):
    benchmark.pedantic(run_rtt_experiment, args=("native-vpn",),
                       kwargs={"probes": 3, "seed": 1},
                       rounds=1, iterations=1)
    rows = [
        (name,
         f"{summary.mean * 1000:.0f}",
         f"[{summary.minimum * 1000:.0f}, {summary.maximum * 1000:.0f}]")
        for name, summary in rtt_results.items()
    ]
    emit("fig5b_rtt", format_table(
        ("method", "mean RTT (ms)", "range (ms)"), rows,
        title="Figure 5b — round trip time"))

    r = rtt_results
    # Tor's circuit has the longest RTT (paper: 330 ms mean with
    # error bars reaching ~700 ms; meek's head-of-line polling lands
    # our probe mean toward the upper half of that band).
    assert r["tor"].mean == max(s.mean for s in r.values())
    assert 0.25 < r["tor"].mean < 0.80
    # Everything else sits in the direct-path ballpark (~200 ms).
    for name in ("native-vpn", "openvpn", "shadowsocks", "scholarcloud"):
        assert 0.15 < r[name].mean < 0.30, name
    # ScholarCloud is competitive with the best.
    assert r["scholarcloud"].mean <= min(r["native-vpn"].mean,
                                         r["shadowsocks"].mean) * 1.2


def test_fig5b_rtt_correlates_with_plt(benchmark, emit):
    """§4.3: RTT correlates more strongly with first-time PLT."""
    from repro.measure.scenarios import run_plt_experiment
    methods = ("native-vpn", "tor", "scholarcloud")
    rtts = benchmark.pedantic(
        lambda: [run_rtt_experiment(m, probes=8).mean for m in methods],
        rounds=1, iterations=1)
    firsts = [run_plt_experiment(m, samples=3).first_time for m in methods]
    # Higher RTT -> higher first-time PLT across the board.
    paired = sorted(zip(rtts, firsts))
    assert paired[0][1] < paired[-1][1]
