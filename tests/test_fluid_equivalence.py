"""Fluid-mode equivalence: the contract of ``repro.perf.fluid``.

Three families of guarantees, mirroring ``tests/test_perf_equivalence.py``
for the earlier hot-path optimizations:

* **Packet mode is bit-unchanged.**  With no registry installed — or a
  registry whose thresholds never fire — every observable (PLTs,
  admission decisions, GFW logs) is byte-identical to the plain packet
  simulation.
* **Hybrid aggregates stay inside the declared tolerance bands**
  (``TOLERANCE_BANDS``), pooled across seeds.
* **Every de-fluidization trigger works mid-flow** — GFW policy
  escalation, link fault, deadline expiry, overload shed, reset — and
  the scripted event hooks (``policy_log``, admission decision
  verdicts) stay byte-identical between modes, across ≥3 seeds.
"""

from __future__ import annotations

import pytest

from repro.http import scholar_pdf
from repro.http.browser import Browser
from repro.measure.scenarios import prepare, run_overload_point
from repro.overload import OverloadConfig
from repro.perf.fluid import (
    MODES,
    TOLERANCE_BANDS,
    FluidConfig,
    aggregate_overload,
    band_failures,
    fluid_config_for_mode,
)

SEEDS = (0, 1, 2)


def _pdf_world(mode, seed, **testbed_kwargs):
    """A ScholarCloud world with the bulk PDF page installed."""
    world = prepare("scholarcloud", seed=seed, fluid=mode, **testbed_kwargs)
    page = scholar_pdf()
    world.testbed.scholar_server.add_page(page)
    return world, page


def _load_pdfs(world, page, loads=2, total_deadline=None, gap=1.0):
    """Drive ``loads`` sequential PDF fetches; return PageLoadResults."""
    testbed = world.testbed
    browser = Browser(testbed.sim, world.method.connector(),
                      name="fluid-test", total_deadline=total_deadline)
    results = []

    def driver(sim):
        for _ in range(loads):
            result = yield sim.process(browser.load(page))
            results.append(result)
            yield sim.timeout(gap)

    testbed.run_process(driver(testbed.sim), name="fluid-test-driver")
    return results


def _signature(results):
    """The byte-comparable observable of a load sequence."""
    return [(r.succeeded, r.error, round(r.plt, 9)) for r in results]


# -- mode plumbing -----------------------------------------------------------------


def test_mode_axis():
    assert MODES == ("packet", "hybrid", "fluid")
    assert fluid_config_for_mode("packet") is None
    assert isinstance(fluid_config_for_mode("hybrid"), FluidConfig)
    aggressive = fluid_config_for_mode("fluid")
    assert aggressive.min_message_bytes < FluidConfig().min_message_bytes
    with pytest.raises(ValueError):
        fluid_config_for_mode("warp")


def test_packet_mode_installs_no_registry():
    world, _ = _pdf_world("packet", seed=0)
    assert world.testbed.fluid is None
    assert world.testbed.sim.fluid is None


# -- packet mode bit-unchanged -----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_dormant_registry_is_byte_identical_to_packet(seed):
    """A registry that never fluidizes must not perturb the trace.

    This exercises every hook on the packet path (send_message, close,
    pump_between, reject, link/policy notifications) with a live
    registry whose threshold no message can meet — the strongest
    packet-safety test available without a second interpreter.
    """
    world, page = _pdf_world("packet", seed=seed)
    baseline = _signature(_load_pdfs(world, page))

    never = FluidConfig(min_message_bytes=10**9)
    world2, page2 = _pdf_world(never, seed=seed)
    results = _load_pdfs(world2, page2)
    assert _signature(results) == baseline
    registry = world2.testbed.fluid
    assert registry is not None
    assert registry.stats.transfers == 0
    assert registry.stats.fallbacks.get("small-message", 0) > 0


def test_same_seed_hybrid_is_deterministic():
    first = run_overload_point(clients=3, cycles=1, seed=0,
                               mode="hybrid", workload="pdf")
    second = run_overload_point(clients=3, cycles=1, seed=0,
                                mode="hybrid", workload="pdf")
    assert first.plt.mean == second.plt.mean
    assert first.completed == second.completed
    assert first.decisions == second.decisions


# -- hybrid tolerance bands --------------------------------------------------------


def test_hybrid_aggregates_within_declared_bands():
    """Pooled across seeds, hybrid lands inside every tolerance band."""
    bytes_per_load = scholar_pdf().total_bytes()
    packet, hybrid = [], []
    for seed in SEEDS:
        packet.append(run_overload_point(clients=4, cycles=1, seed=seed,
                                         mode="packet", workload="pdf"))
        hybrid.append(run_overload_point(clients=4, cycles=1, seed=seed,
                                         mode="hybrid", workload="pdf"))
    packet_agg = aggregate_overload(packet, bytes_per_load)
    hybrid_agg = aggregate_overload(hybrid, bytes_per_load)
    failures = band_failures(packet_agg, hybrid_agg)
    assert failures == [], failures
    # And the fast path actually engaged — this was not a trivial pass.
    assert hybrid_agg["availability"] == packet_agg["availability"] == 1.0


def test_band_failures_flags_out_of_band_metrics():
    reference = {"goodput": 100.0, "plt": 2.0,
                 "shed_rate": 0.0, "availability": 1.0}
    candidate = dict(reference, plt=2.0 * (1 + TOLERANCE_BANDS["plt"]) + 0.1,
                     shed_rate=TOLERANCE_BANDS["shed_rate"] + 0.05)
    failures = band_failures(reference, candidate)
    assert len(failures) == 2
    assert any(f.startswith("plt:") for f in failures)
    assert any(f.startswith("shed_rate:") for f in failures)


# -- de-fluidization transitions ---------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_policy_escalation_defluidizes_mid_flow(seed):
    """``apply_policy`` mid-transfer bumps the epoch; the flow drops to
    packets, re-qualifies, and the scripted policy log is byte-identical
    between modes."""
    logs = {}
    signatures = {}
    for mode in ("packet", "hybrid"):
        world, page = _pdf_world(mode, seed=seed)
        gfw = world.testbed.gfw
        # Fires while the first PDF response is in flight.
        gfw.schedule_policy(2.0, lambda g: None, label="escalation-drill")
        signatures[mode] = [r.succeeded for r in _load_pdfs(world, page)]
        logs[mode] = list(gfw.policy_log)
        if mode == "hybrid":
            stats = world.testbed.fluid.stats
            assert stats.defluidized.get("policy:escalation-drill", 0) >= 1
            assert stats.transfers >= 1  # it re-qualified and re-fluidized
    assert logs["hybrid"] == logs["packet"] == [(2.0, "escalation-drill")]
    assert signatures["hybrid"] == signatures["packet"]


@pytest.mark.parametrize("seed", SEEDS)
def test_link_fault_defluidizes_mid_flow(seed):
    """Fault injection on a path link forces re-qualification; both
    modes survive the same scripted degradation with the same outcomes."""
    signatures = {}
    for mode in ("packet", "hybrid"):
        world, page = _pdf_world(mode, seed=seed)
        link = world.testbed.border_link

        def fault(sim):
            yield sim.timeout(2.0)
            link.set_conditions(loss=0.02)
            yield sim.timeout(1.0)
            link.set_conditions(loss=0.004)

        world.testbed.run_process(fault(world.testbed.sim), name="fault")
        signatures[mode] = [r.succeeded for r in _load_pdfs(world, page)]
        if mode == "hybrid":
            stats = world.testbed.fluid.stats
            assert stats.defluidized.get("link:border", 0) >= 2
    assert signatures["hybrid"] == signatures["packet"]


@pytest.mark.parametrize("seed", SEEDS)
def test_deadline_expiry_defluidizes_mid_flow(seed):
    """A session whose deadline expires while queued behind an admitted
    bulk (fluidized) transfer is rejected through the de-fluidization
    hook; both modes report the same success/failure shape."""
    config = OverloadConfig(max_sessions=1, max_waiting=4,
                            queue_delay_threshold=30.0)
    signatures = {}
    for mode in ("packet", "hybrid"):
        world, page = _pdf_world(mode, seed=seed, overload=config,
                                 extra_clients=1)
        testbed = world.testbed
        outcomes = []

        def one_a(sim):
            browser = Browser(sim, world.method.connector(), name="a")
            result = yield sim.process(browser.load(page))
            outcomes.append(("a", result.succeeded))

        def one_b(sim):
            # A second *source host*: admission stickiness is per
            # source, so "b" genuinely queues behind "a"'s slot and its
            # deadline expires in line.
            connector = yield from world.method.attach_client(
                testbed.extra_clients[0])
            browser = Browser(sim, connector, name="b", total_deadline=2.0)
            yield sim.timeout(0.5)
            result = yield sim.process(browser.load(page))
            outcomes.append(("b", result.succeeded))

        def driver(sim):
            yield sim.all_of([sim.process(one_a(sim)),
                              sim.process(one_b(sim))])

        testbed.run_process(driver(testbed.sim), name="deadline-drill")
        verdicts = [d[2] for d in world.method.domestic.admission.decisions]
        signatures[mode] = (sorted(outcomes), verdicts)
        if mode == "hybrid":
            stats = testbed.fluid.stats
            assert stats.transfers >= 1  # "a" genuinely fluidized
            # The expiring session left through the reject hook — the
            # deadline-aware limiter sheds a waiter whose deadline
            # cannot be met, so the reason is "shed" or (when it slips
            # past the limiter) "expired"; both de-fluidize.
            assert (stats.defluidized.get("expired", 0)
                    + stats.defluidized.get("shed", 0)) >= 1
    assert signatures["hybrid"] == signatures["packet"]
    outcomes_packet, _ = signatures["packet"]
    assert dict(outcomes_packet)["b"] is False  # the deadline bit


@pytest.mark.parametrize("seed", SEEDS)
def test_overload_shed_defluidizes_and_matches_verdicts(seed):
    """A tiny admission cap sheds sessions under the PDF load; the
    admission verdict sequence is identical between modes and the shed
    path runs the de-fluidization hook."""
    config = OverloadConfig(max_sessions=2, max_waiting=0)
    rows = {}
    for mode in ("packet", "hybrid"):
        rows[mode] = run_overload_point(clients=6, cycles=1, seed=seed,
                                        mode=mode, workload="pdf",
                                        overload=config)
    packet, hybrid = rows["packet"], rows["hybrid"]
    assert [d[2] for d in packet.decisions] == [d[2] for d in hybrid.decisions]
    assert packet.client_sheds == hybrid.client_sheds
    assert packet.client_sheds > 0  # the cap genuinely shed someone
