"""Golden-equivalence suite for the repro.perf hot-path rewrites.

Every optimized path must be byte-identical to the frozen reference
implementation it replaced (``repro.perf.reference``), on seeded
corpora that cover block boundaries, chunked streaming, and both sides
of internal fast-path thresholds.  The parallel sweep runner must
return exactly what the serial runner returns, in the same order.
"""

import hashlib
import random

import pytest

from repro.core.blinding import AffineCodec, ByteMapCodec
from repro.crypto.aes import AES
from repro.crypto.modes import CfbCipher, CtrCipher
from repro.gfw.blocklist import BlockPolicy
from repro.gfw.dpi import default_classifiers
from repro.measure.scenarios import run_scalability_point
from repro.net import IPv4Address, Packet, WireFeatures
from repro.perf.reference import (
    ReferenceCfbCipher,
    ReferenceCtrCipher,
    affine_decode_reference,
    affine_encode_reference,
    byte_map_decode_reference,
    byte_map_encode_reference,
    byte_map_inverse_reference,
    domain_blocked_reference,
    keyword_hit_reference,
    patched_reference_paths,
    reference_decrypt_block,
    reference_encrypt_block,
)
from repro.perf.runner import (
    merge_by_label,
    run_points,
    scalability_points,
    serial_map,
)

#: Lengths that straddle block sizes, the affine stride threshold, and
#: the empty/one-byte edges.
LENGTHS = (0, 1, 15, 16, 17, 255, 256, 257, 1023, 1024, 1025, 4096, 5000)


def corpus(length: int, seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(length))


# -- codecs --------------------------------------------------------------------


def test_byte_map_inverse_matches_reference():
    codec = ByteMapCodec(b"equivalence")
    assert codec._inverse == byte_map_inverse_reference(codec._forward)


@pytest.mark.parametrize("length", LENGTHS)
def test_byte_map_codec_matches_reference(length):
    codec = ByteMapCodec(b"equivalence")
    data = corpus(length, seed=length)
    encoded = codec.encode(data)
    assert encoded == byte_map_encode_reference(codec._forward, data)
    assert codec.decode(encoded) == data
    assert codec.decode(encoded) == byte_map_decode_reference(
        codec._inverse, encoded)


@pytest.mark.parametrize("length", LENGTHS)
def test_affine_codec_matches_reference(length):
    codec = AffineCodec(167, 89)
    data = corpus(length, seed=1000 + length)
    encoded = codec.encode(data)
    assert encoded == affine_encode_reference(
        codec.multiplier, codec.offset, data)
    assert codec.decode(encoded) == data
    assert codec.decode(encoded) == affine_decode_reference(
        codec._inverse_multiplier, codec.offset, encoded)


# -- AES and stream modes -------------------------------------------------------


@pytest.mark.parametrize("key_len", (16, 24, 32))
def test_aes_block_matches_reference(key_len):
    rng = random.Random(key_len)
    for trial in range(25):
        key = bytes(rng.randrange(256) for _ in range(key_len))
        block = bytes(rng.randrange(256) for _ in range(16))
        aes = AES(key)
        encrypted = aes.encrypt_block(block)
        assert encrypted == reference_encrypt_block(aes, block)
        assert aes.decrypt_block(encrypted) == block
        assert reference_decrypt_block(aes, encrypted) == block


def chunked(data: bytes, seed: int):
    """Split into adversarial chunk sizes (1..37 bytes)."""
    rng = random.Random(seed)
    position = 0
    while position < len(data):
        size = rng.randrange(1, 38)
        yield data[position:position + size]
        position += size


@pytest.mark.parametrize("mode", ("cfb", "ctr"))
def test_stream_modes_match_reference_across_chunks(mode):
    rng = random.Random(hash(mode) & 0xFFFF)
    key = bytes(rng.randrange(256) for _ in range(32))
    iv = bytes(rng.randrange(256) for _ in range(16))
    data = corpus(2000, seed=77)
    if mode == "cfb":
        fast, slow = CfbCipher(key, iv), ReferenceCfbCipher(key, iv)
        fast_out = b"".join(fast.encrypt(c) for c in chunked(data, 5))
        slow_out = b"".join(slow.encrypt(c) for c in chunked(data, 5))
        assert fast_out == slow_out
        assert CfbCipher(key, iv).decrypt(fast_out) == data
    else:
        fast, slow = CtrCipher(key, iv), ReferenceCtrCipher(key, iv)
        fast_out = b"".join(fast.process(c) for c in chunked(data, 5))
        slow_out = b"".join(slow.process(c) for c in chunked(data, 5))
        assert fast_out == slow_out
        assert CtrCipher(key, iv).process(fast_out) == data


def test_ctr_counter_wrap_matches_reference():
    key = bytes(range(32))
    nonce = b"\xff" * 16  # next block wraps the 128-bit counter
    data = corpus(64, seed=3)
    assert CtrCipher(key, nonce).process(data) == \
        ReferenceCtrCipher(key, nonce).process(data)


# -- block-policy lookups -------------------------------------------------------


def test_domain_blocked_matches_reference():
    policy = BlockPolicy()
    for suffix in ("google.com", "gstatic.com", "scholar.google.com",
                   "example.org"):
        policy.block_domain(suffix)
    names = [None, "", "google.com", "scholar.google.com", "GOOGLE.COM.",
             "notgoogle.com", "google.com.cn", "a.b.c.example.org",
             "org", "com", "deep.scholar.google.com", "xgoogle.com"]
    for name in names:
        assert policy.domain_blocked(name) == domain_blocked_reference(
            policy._domain_suffixes, name), name
    policy.unblock_domain("google.com")
    assert not policy.domain_blocked("google.com")
    assert policy.domain_blocked("scholar.google.com")  # still blocked


def test_keyword_hit_matches_reference_semantics():
    policy = BlockPolicy()
    for keyword in ("falun", "tiananmen-incident", "tiananmen"):
        policy.block_keyword(keyword)
    texts = ["", "nothing here", "FALUN gong", "the tiananmen-incident files",
             "tiananmen", "xfalunx and tiananmen"]
    for text in texts:
        fast = policy.keyword_hit(text)
        slow = keyword_hit_reference(policy._keywords, text)
        # The reference returned an arbitrary set-order keyword; the
        # optimized path fixes leftmost-longest.  Hit/no-hit must agree
        # and any hit must be a real keyword present in the text.
        assert (fast is None) == (slow is None), text
        if fast is not None:
            assert fast in policy._keywords
            assert fast in text.lower()
    # Leftmost-longest is deterministic: overlapping keywords resolve
    # to the longer one.
    assert policy.keyword_hit("the tiananmen-incident") == "tiananmen-incident"
    # Mutation invalidates the compiled pattern.
    policy.block_keyword("incident-files")
    assert policy.keyword_hit("about incident-files") == "incident-files"


# -- DPI dispatch ---------------------------------------------------------------


def make_packet(tag: str, **features) -> Packet:
    return Packet(src=IPv4Address("10.0.0.1"), dst=IPv4Address("172.16.0.9"),
                  protocol="tcp", payload=None, size=800,
                  features=WireFeatures(protocol_tag=tag, **features),
                  flow=("tcp", "10.0.0.1", 40000, "172.16.0.9", 443))


def test_classifiers_ignore_foreign_tags():
    """The match_tags contract: None, no side effects, for other tags."""
    from repro.gfw.flow_table import FlowState

    tags = ("tls", "plain-http", "pptp-gre", "l2tp-udp", "openvpn",
            "tor-tls", "unknown-stream", "unclassified", "dns")
    policy = BlockPolicy()
    policy.block_domain("google.com")
    for classifier in default_classifiers():
        assert classifier.match_tags is not None  # all six declare tags
        for tag in tags:
            if tag in classifier.match_tags:
                continue
            state = FlowState(key=("k",), first_seen=0.0)
            before = (state.label, state.confidence, list(state.recent_times))
            result = classifier.classify(make_packet(tag), state, policy)
            assert result is None, (classifier.name, tag)
            after = (state.label, state.confidence, list(state.recent_times))
            assert before == after, (classifier.name, tag)


def test_firewall_dispatch_matches_full_chain():
    """Same labels with tag dispatch as with the full classifier chain."""
    from repro.gfw.blocklist import default_china_policy
    from repro.gfw.firewall import GfwConfig, GreatFirewall
    from repro.sim import Simulator

    probes = [
        make_packet("tls", sni="www.google.com", handshake=True),
        make_packet("tls", sni="cdn.example", handshake=True),
        make_packet("unknown-stream", entropy=8.0, length_signature=50),
        make_packet("unclassified", entropy=7.9),
        make_packet("openvpn", handshake=True),
        make_packet("tor-tls", handshake=True),
    ]

    def labels_for(packet):
        gfw = GreatFirewall(Simulator(seed=0), default_china_policy(),
                            config=GfwConfig(dns_poisoning=False))
        matched = gfw._classifiers_for(packet.features.protocol_tag)
        from repro.gfw.flow_table import FlowState
        outcomes = []
        for classifier in matched:
            state = FlowState(key=("k",), first_seen=0.0)
            outcomes.append((classifier.name,
                             classifier.classify(packet, state, gfw.policy)))
        full = []
        for classifier in gfw.classifiers:
            state = FlowState(key=("k",), first_seen=0.0)
            full.append((classifier.name,
                         classifier.classify(packet, state, gfw.policy)))
        return outcomes, full

    for packet in probes:
        dispatched, full = labels_for(packet)
        # Dispatch drops only classifiers that returned None in the
        # full chain; every firing classifier survives, in chain order.
        fired_dispatched = [o for o in dispatched if o[1] is not None]
        fired_full = [o for o in full if o[1] is not None]
        assert fired_dispatched == fired_full, packet.features.protocol_tag


def test_firewall_dispatch_sees_appended_classifiers():
    """The arms-race idiom — appending to gfw.classifiers — still works."""
    from repro.gfw.blocklist import default_china_policy
    from repro.gfw.dpi import Classifier
    from repro.gfw.firewall import GfwConfig, GreatFirewall
    from repro.sim import Simulator

    class Sting(Classifier):
        name = "sting"
        match_tags = None  # inspects every packet

        def classify(self, packet, state, policy):
            return ("stung", 1.0)

    gfw = GreatFirewall(Simulator(seed=0), default_china_policy(),
                        config=GfwConfig(dns_poisoning=False))
    assert gfw._classifiers_for("unclassified") == []
    gfw.classifiers.append(Sting())  # direct mutation, no apply_policy
    matched = gfw._classifiers_for("unclassified")
    assert [c.name for c in matched] == ["sting"]


# -- parallel runner ------------------------------------------------------------


def small_points():
    return scalability_points(("native-vpn", "scholarcloud"), (4,),
                              cycles=1, seed=0)


def test_parallel_runner_identical_to_serial():
    points = small_points()
    serial = serial_map(points)
    parallel = run_points(points, workers=2)  # forces the pool even on 1 CPU
    assert parallel == serial
    merged = merge_by_label(points, parallel)
    assert set(merged) == {("native-vpn", 4, 0), ("scholarcloud", 4, 0)}


def test_runner_rejects_duplicate_labels():
    from repro.errors import MeasurementError

    points = small_points()
    with pytest.raises(MeasurementError):
        run_points([points[0], points[0]])


# -- whole-simulation equivalence ----------------------------------------------


def summary_fingerprint(summary) -> str:
    return hashlib.sha256(repr(summary).encode()).hexdigest()


def test_fig7_point_identical_on_reference_paths():
    """Optimized and reference paths produce the same simulation."""
    optimized = run_scalability_point("shadowsocks", clients=4, cycles=1,
                                      seed=2)
    with patched_reference_paths():
        reference = run_scalability_point("shadowsocks", clients=4, cycles=1,
                                          seed=2)
    assert optimized == reference
    assert summary_fingerprint(optimized) == summary_fingerprint(reference)


def test_fig7_point_deterministic_across_runs():
    first = run_scalability_point("scholarcloud", clients=4, cycles=1, seed=5)
    second = run_scalability_point("scholarcloud", clients=4, cycles=1, seed=5)
    assert first == second


# -- bench regression gate ------------------------------------------------------


def test_bench_gate_flags_speedup_regressions():
    from repro.perf.bench import compare_to_baseline

    baseline = {"micro": {"aes-block": {"speedup": 20.0},
                          "gone": {"speedup": 4.0}},
                "e2e": {"fig7-sweep": {"speedup": 3.0}}}
    report = {"micro": {"aes-block": {"speedup": 12.0}},
              "e2e": {"fig7-sweep": {"speedup": 2.9}}}
    failures = compare_to_baseline(report, baseline, tolerance=0.25)
    assert len(failures) == 2  # aes regressed, "gone" disappeared
    assert any("aes-block" in f for f in failures)
    assert any("gone" in f for f in failures)
    # Within tolerance / improved: no failures.
    ok = {"micro": {"aes-block": {"speedup": 19.0},
                    "gone": {"speedup": 9.0}},
          "e2e": {"fig7-sweep": {"speedup": 2.5}}}
    assert compare_to_baseline(ok, baseline, tolerance=0.25) == []


def test_bench_gate_tracks_parallel_speedup_against_baseline():
    """Once a multi-core baseline is recorded, the parallel-scaling
    number is held to the same tolerance as every other speedup — but
    a single-core record on either side keeps the comparison dormant."""
    from repro.perf.bench import compare_to_baseline

    baseline = {"cpu_count": 4,
                "e2e": {"fig7-sweep": {"speedup": 3.0,
                                       "parallel_speedup": 1.8}}}
    regressed = {"cpu_count": 4,
                 "e2e": {"fig7-sweep": {"speedup": 3.0,
                                        "parallel_speedup": 1.1}}}
    failures = compare_to_baseline(regressed, baseline, tolerance=0.25)
    assert any("parallel_speedup" in f for f in failures)
    held = {"cpu_count": 4,
            "e2e": {"fig7-sweep": {"speedup": 3.0,
                                   "parallel_speedup": 1.7}}}
    assert compare_to_baseline(held, baseline, tolerance=0.25) == []
    missing = {"cpu_count": 4, "e2e": {"fig7-sweep": {"speedup": 3.0}}}
    assert any("disappeared" in f for f in
               compare_to_baseline(missing, baseline, tolerance=0.25))
    # Either side recorded on one core: dormant, not a failure.
    for single_side in (dict(regressed, cpu_count=1),):
        assert compare_to_baseline(single_side, baseline,
                                   tolerance=0.25) == []
    single_baseline = dict(baseline, cpu_count=1)
    assert compare_to_baseline(regressed, single_baseline,
                               tolerance=0.25) == []


def test_bench_parallel_gate_arms_only_on_multicore():
    from repro.perf.bench import parallel_gate_failures

    slow = {"cpu_count": 4, "workers": 4,
            "e2e": {"fig7-sweep": {"parallel_speedup": 0.9}}}
    assert parallel_gate_failures(slow, min_speedup=1.2)
    fast = {"cpu_count": 4, "workers": 4,
            "e2e": {"fig7-sweep": {"parallel_speedup": 2.6}}}
    assert parallel_gate_failures(fast, min_speedup=1.2) == []
    # A single-core machine (or a single-worker run) cannot exhibit
    # parallel speedup; the gate must not fire there.
    single = {"cpu_count": 1, "workers": 1,
              "e2e": {"fig7-sweep": {"parallel_speedup": 0.7}}}
    assert parallel_gate_failures(single, min_speedup=1.2) == []
    one_worker = {"cpu_count": 8, "workers": 1,
                  "e2e": {"fig7-sweep": {"parallel_speedup": 0.9}}}
    assert parallel_gate_failures(one_worker, min_speedup=1.2) == []
    # Missing measurement on a multi-core machine is itself a failure.
    missing = {"cpu_count": 4, "workers": 4, "e2e": {"fig7-sweep": {}}}
    assert parallel_gate_failures(missing, min_speedup=1.2)
    assert parallel_gate_failures(slow, min_speedup=0) == []
