"""Tests for the VPN middleware (native PPTP/L2TP and OpenVPN)."""

import pytest

from repro.errors import TunnelError
from repro.measure import Testbed
from repro.middleware.vpn import NativeVpn, OpenVpn
from repro.middleware.vpn.nat import NatTable
from repro.net import IPv4Address, Packet
from repro.transport.tcp import Segment


def vpn_world(cls=NativeVpn, **kwargs):
    testbed = Testbed()
    method = cls(testbed, **kwargs)
    testbed.run_process(method.setup())
    return testbed, method


# -- NAT ------------------------------------------------------------------------

def test_nat_tcp_roundtrip():
    nat = NatTable(IPv4Address("47.88.1.100"))
    inner = Packet(
        src=IPv4Address("59.66.1.10"), dst=IPv4Address("172.217.194.80"),
        protocol="tcp",
        payload=Segment(50000, 443, seq=0, ack=0, flags=frozenset({"SYN"})),
        size=52)
    out = nat.outbound(inner)
    assert str(out.src) == "47.88.1.100"
    nat_port = out.payload.sport
    assert nat_port != 50000

    reply = Packet(
        src=IPv4Address("172.217.194.80"), dst=IPv4Address("47.88.1.100"),
        protocol="tcp",
        payload=Segment(443, nat_port, seq=0, ack=1,
                        flags=frozenset({"SYN", "ACK"})),
        size=52)
    restored = nat.inbound(reply)
    assert str(restored.dst) == "59.66.1.10"
    assert restored.payload.dport == 50000


def test_nat_reuses_mapping_per_flow():
    nat = NatTable(IPv4Address("47.88.1.100"))
    inner = Packet(
        src=IPv4Address("59.66.1.10"), dst=IPv4Address("172.217.194.80"),
        protocol="tcp",
        payload=Segment(50000, 443, seq=0, ack=0, flags=frozenset()),
        size=52)
    first = nat.outbound(inner)
    second = nat.outbound(inner)
    assert first.payload.sport == second.payload.sport
    assert nat.translations() == 1


def test_nat_unmapped_reply_returns_none():
    nat = NatTable(IPv4Address("47.88.1.100"))
    stray = Packet(
        src=IPv4Address("1.2.3.4"), dst=IPv4Address("47.88.1.100"),
        protocol="tcp",
        payload=Segment(80, 44444, seq=0, ack=0, flags=frozenset()),
        size=52)
    assert nat.inbound(stray) is None


# -- native VPN -------------------------------------------------------------------

def test_native_vpn_reaches_blocked_scholar():
    testbed, method = vpn_world()
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_native_vpn_connector_requires_setup():
    testbed = Testbed()
    with pytest.raises(TunnelError):
        NativeVpn(testbed).connector()


def test_native_vpn_tunnel_hides_sni_from_gfw():
    testbed, method = vpn_world()
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    # No SNI resets: the GFW only ever saw GRE framing.
    assert testbed.gfw.stats.sni_resets == 0
    assert testbed.gfw.stats.flows_labeled.get("vpn-pptp", 0) >= 1


def test_native_vpn_full_tunnel_carries_domestic_traffic():
    """Domestic accesses detour through San Mateo — the paper's usability
    complaint about native VPN."""
    testbed, method = vpn_world()
    direct_rtt_world = Testbed()

    def measure(tb, connector):
        b = tb.browser(connector=connector)
        return tb.run_process(b.load(tb.domestic_page))

    detoured = measure(testbed, method.connector())
    direct = measure(direct_rtt_world, direct_rtt_world.direct_connector())
    assert detoured.succeeded and direct.succeeded
    assert detoured.plt > direct.plt * 3


def test_native_vpn_teardown_restores_direct_behaviour():
    testbed, method = vpn_world()
    method.teardown()
    assert testbed.client.outbound_hooks == []


def test_l2tp_flavor():
    testbed, method = vpn_world(flavor="l2tp")
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded
    assert testbed.gfw.stats.flows_labeled.get("vpn-l2tp", 0) >= 1


def test_unknown_flavor_rejected():
    with pytest.raises(TunnelError):
        NativeVpn(Testbed(), flavor="wireguard")


def test_vpn_blocked_when_policy_targets_vpn_class():
    """Footnote 2: during 2012-2015 the GFW blocked VPNs extensively."""
    testbed = Testbed()
    testbed.policy.set_interference("vpn-pptp", 0.5)
    method = NativeVpn(testbed)
    testbed.run_process(method.setup())
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    # Severe interference: the load crawls or dies outright.
    assert (not result.succeeded) or result.plt > 5.0


# -- OpenVPN -------------------------------------------------------------------------

def test_openvpn_reaches_blocked_scholar():
    testbed, method = vpn_world(OpenVpn)
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_openvpn_handshake_costs_time():
    _testbed, method = vpn_world(OpenVpn)
    assert method.handshake_time > 0.5  # TLS over a ~190 ms RTT


def test_openvpn_split_tunnel_leaves_domestic_traffic_alone():
    testbed, method = vpn_world(OpenVpn)
    assert method.client is not None
    browser = testbed.browser(connector=testbed.direct_connector())
    before = method.client.packets_tunneled
    result = testbed.run_process(browser.load(testbed.domestic_page))
    assert result.succeeded
    assert method.client.packets_tunneled == before


def test_openvpn_connector_requires_setup():
    with pytest.raises(TunnelError):
        OpenVpn(Testbed()).connector()


def test_vpn_multi_client_attachment():
    testbed = Testbed(extra_clients=2)
    method = NativeVpn(testbed)
    testbed.run_process(method.setup())

    def attach_and_load(sim, host):
        connector = yield from method.attach_client(host)
        from repro.http import Browser
        browser = Browser(sim, connector)
        result = yield sim.process(browser.load(testbed.scholar_page))
        return result

    for host in testbed.extra_clients:
        result = testbed.run_process(attach_and_load(testbed.sim, host))
        assert result.succeeded, result.error
