"""repro.faults: retry/backoff, circuit breaker, failover, fault scripts.

Seed-robustness is the point of this suite: identical seeds must yield
byte-identical backoff sequences, breaker transition traces, and fault
timelines — and the failover machinery must absorb a killed remote
proxy without the client ever seeing an error.
"""

import math

import pytest

from repro.errors import (
    FaultError,
    MeasurementError,
    MiddlewareError,
    SimulationError,
)
from repro.faults import (
    CircuitBreaker,
    Endpoint,
    FailoverPool,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    standard_fault_script,
)
from repro.measure import Testbed, availability
from repro.measure.scenarios import prepare
from repro.net import IPv4Address
from repro.sim import RngRegistry, Simulator
from repro.transport import TcpConnection


# -- retry policy ------------------------------------------------------------------


class TestRetryPolicy:
    def test_first_attempt_has_no_delay(self):
        delays = list(RetryPolicy(attempts=4, jitter=0.0).delays())
        assert delays[0] == 0.0

    def test_unjittered_schedule_is_capped_exponential(self):
        policy = RetryPolicy(attempts=6, base=1.0, multiplier=4.0,
                             cap=8.0, jitter=0.0)
        assert list(policy.delays()) == [0.0, 1.0, 4.0, 8.0, 8.0, 8.0]

    def test_same_seed_same_backoff_sequence(self):
        def sequence(seed):
            rng = RngRegistry(seed).stream("resilience.sc-domestic")
            return list(RetryPolicy(attempts=6, rng=rng).delays())

        assert sequence(11) == sequence(11)
        assert sequence(11) != sequence(12)

    def test_jitter_stays_within_band(self):
        rng = RngRegistry(0).stream("resilience.sc-domestic")
        policy = RetryPolicy(attempts=8, base=0.5, cap=8.0,
                             jitter=0.25, rng=rng)
        nominal = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 8.0, 8.0]
        for delay, expected in zip(policy.delays(), nominal):
            assert expected * 0.75 <= delay <= expected * 1.25

    def test_success_path_consumes_no_randomness(self):
        rng = RngRegistry(5).stream("resilience.sc-client")
        untouched = RngRegistry(5).stream("resilience.sc-client")
        delays = RetryPolicy(attempts=4, rng=rng).delays()
        assert next(delays) == 0.0  # a first-try success stops here
        assert rng.random() == untouched.random()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


# -- circuit breaker ---------------------------------------------------------------


def _canonical_breaker_trace():
    sim = Simulator(seed=0)
    breaker = CircuitBreaker(sim, failure_threshold=2, reset_timeout=10.0)
    breaker.record_failure()
    breaker.record_failure()          # threshold reached -> OPEN at t=0
    assert not breaker.allow()        # inside the reset window
    sim.run(until=10.0)
    assert breaker.allow()            # window elapsed -> HALF_OPEN trial
    breaker.record_success()          # trial passed -> CLOSED
    return list(breaker.transitions)


class TestCircuitBreaker:
    def test_canonical_closed_open_halfopen_closed_trace(self):
        assert _canonical_breaker_trace() == [
            (0.0, CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
            (10.0, CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
            (10.0, CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
        ]

    def test_trace_is_deterministic_across_runs(self):
        assert _canonical_breaker_trace() == _canonical_breaker_trace()

    def test_failed_half_open_trial_reopens(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        sim.run(until=5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_at == 5.0

    def test_success_resets_the_consecutive_count(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


class TestHalfOpenSingleTrial:
    def test_only_one_caller_wins_the_half_open_trial(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        sim.run(until=5.0)
        assert breaker.allow()          # the single trial
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # The rest of the herd is refused while the trial is in flight.
        assert not breaker.allow()
        assert not breaker.allow()

    def test_failed_trial_frees_the_slot_for_the_next_window(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        sim.run(until=5.0)
        assert breaker.allow()
        breaker.record_failure()        # trial lost -> back to OPEN
        assert breaker.state == CircuitBreaker.OPEN
        sim.run(until=10.0)
        assert breaker.allow()          # next window gets its own trial

    def test_successful_trial_admits_everyone_again(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        sim.run(until=5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() and breaker.allow()


# -- failover pool -----------------------------------------------------------------


def _pool(sim, count=2):
    endpoints = [Endpoint(IPv4Address(f"10.0.0.{i + 1}"), 9000, f"remote-{i + 1}")
                 for i in range(count)]
    return FailoverPool(sim, endpoints, failure_threshold=2, reset_timeout=20.0)


class TestFailoverPool:
    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(ValueError):
            FailoverPool(Simulator(seed=0), [])

    def test_prefers_the_healthy_primary(self):
        pool = _pool(Simulator(seed=0))
        assert pool.pick() is pool.primary
        assert pool.failovers == 0

    def test_open_primary_fails_over_and_counts(self):
        pool = _pool(Simulator(seed=0))
        pool.record_failure(pool.primary)
        pool.record_failure(pool.primary)
        picked = pool.pick()
        assert picked is pool.endpoints[1]
        assert pool.failovers == 1

    def test_primary_is_retried_after_the_reset_window(self):
        sim = Simulator(seed=0)
        pool = _pool(sim)
        pool.record_failure(pool.primary)
        pool.record_failure(pool.primary)
        assert pool.pick() is pool.endpoints[1]
        sim.run(until=20.0)
        assert pool.pick() is pool.primary  # HALF_OPEN trial
        state = pool.breakers[pool.primary].state
        assert state == CircuitBreaker.HALF_OPEN

    def test_all_open_yields_none(self):
        pool = _pool(Simulator(seed=0))
        for endpoint in pool.endpoints:
            pool.record_failure(endpoint)
            pool.record_failure(endpoint)
        assert pool.pick() is None

    def test_repeated_picks_of_the_same_endpoint_are_not_failovers(self):
        pool = _pool(Simulator(seed=0))
        for _ in range(5):
            assert pool.pick() is pool.primary
        assert pool.failovers == 0

    def test_failovers_count_endpoint_changes_not_picks(self):
        sim = Simulator(seed=0)
        pool = _pool(sim)
        pool.record_failure(pool.primary)
        pool.record_failure(pool.primary)
        # Several dials ride on the replica; that is ONE failover.
        for _ in range(4):
            assert pool.pick() is pool.endpoints[1]
        assert pool.failovers == 1
        # Fail-back to the recovered primary is the second change.
        sim.run(until=20.0)
        assert pool.pick() is pool.primary
        assert pool.failovers == 2

    def test_endpoint_label_is_not_identity(self):
        bare = Endpoint(IPv4Address("10.0.0.1"), 9000)
        labelled = Endpoint(IPv4Address("10.0.0.1"), 9000, "remote-1")
        assert bare == labelled
        assert hash(bare) == hash(labelled)
        pool = _pool(Simulator(seed=0))
        # A router handing back its own labelled copy must hit the
        # pool's breaker for the same (address, port).
        pool.record_success(bare)
        assert pool.breakers[labelled].state == CircuitBreaker.CLOSED


# -- staggered health checks -------------------------------------------------------


class TestStaggeredHealthChecks:
    @staticmethod
    def _world(seed):
        testbed = Testbed(seed=seed)
        transport = testbed.transport_of(testbed.client)
        # Dead endpoints: nothing listens there, so every probe fails
        # and each breaker opens on its own staggered schedule.
        endpoints = [Endpoint(IPv4Address(f"203.0.113.{i + 1}"), 9999,
                              f"dead-{i + 1}") for i in range(2)]
        pool = FailoverPool(testbed.sim, endpoints, failure_threshold=2,
                            reset_timeout=500.0)
        pool.start_health_checks(transport, interval=15.0, timeout=2.0)
        return testbed, pool

    def _open_times(self, seed):
        testbed, pool = self._world(seed)
        testbed.sim.run(until=80.0)
        times = {}
        for endpoint, breaker in pool.breakers.items():
            opened = [at for at, _old, new in breaker.transitions
                      if new == CircuitBreaker.OPEN]
            assert opened, f"{endpoint} never opened"
            times[str(endpoint)] = opened[0]
        return times

    def test_probe_phases_are_staggered(self):
        times = self._open_times(seed=0)
        assert len(set(times.values())) == len(times)

    def test_stagger_is_seed_deterministic(self):
        assert self._open_times(seed=7) == self._open_times(seed=7)

    def test_offsets_come_from_the_registered_stream(self):
        # Passing the registered stream explicitly must reproduce the
        # default behaviour exactly — proof the default draws from
        # ``failover.health`` and nowhere else.
        default_times = self._open_times(seed=9)

        testbed = Testbed(seed=9)
        transport = testbed.transport_of(testbed.client)
        endpoints = [Endpoint(IPv4Address(f"203.0.113.{i + 1}"), 9999,
                              f"dead-{i + 1}") for i in range(2)]
        pool = FailoverPool(testbed.sim, endpoints, failure_threshold=2,
                            reset_timeout=500.0)
        pool.start_health_checks(
            transport, interval=15.0, timeout=2.0,
            rng=testbed.sim.rng.stream("failover.health"))
        testbed.sim.run(until=80.0)
        explicit_times = {
            str(endpoint): [at for at, _old, new in breaker.transitions
                            if new == CircuitBreaker.OPEN][0]
            for endpoint, breaker in pool.breakers.items()}
        assert explicit_times == default_times


# -- fault schedule validation -----------------------------------------------------


class TestFaultSchedule:
    def test_rejects_events_in_the_past(self):
        with pytest.raises(FaultError):
            FaultSchedule().link_down("border", at=-1.0, duration=5.0)

    def test_link_degrade_needs_a_parameter(self):
        with pytest.raises(FaultError):
            FaultSchedule().link_degrade("border", at=1.0, duration=5.0)

    def test_gfw_policy_duration_requires_a_revert(self):
        with pytest.raises(FaultError):
            FaultSchedule().gfw_policy(1.0, "burst", lambda gfw: None,
                                       duration=30.0)

    def test_unknown_kind_is_rejected_at_apply_time(self):
        testbed = Testbed(seed=0)
        injector = FaultInjector(testbed, FaultSchedule())
        with pytest.raises(FaultError):
            injector._apply(FaultEvent(0.0, "meteor-strike", "border"))


# -- seed robustness of the fault timeline -----------------------------------------


def _timeline(seed):
    testbed = Testbed(seed=seed, remote_replicas=1)
    script = standard_fault_script(testbed.rng.stream("faults.schedule"))
    injector = script.install(testbed)
    testbed.sim.run(until=650.0)
    return injector.timeline


class TestTimelineDeterminism:
    def test_same_seed_byte_identical_timeline(self):
        first, second = _timeline(0), _timeline(0)
        assert first == second
        assert first  # the standard script is not empty

    def test_different_seed_different_timeline(self):
        assert _timeline(0) != _timeline(7)

    def test_faults_apply_and_revert_in_time_order(self):
        timeline = _timeline(0)
        times = [entry[0] for entry in timeline]
        assert times == sorted(times)
        phases = {entry[3] for entry in timeline}
        assert phases == {"apply", "revert"}

    def test_gfw_escalation_lands_in_the_policy_log(self):
        testbed = Testbed(seed=0)
        script = standard_fault_script(testbed.rng.stream("faults.schedule"))
        script.install(testbed)
        testbed.sim.run(until=650.0)
        labels = [label for _, label in testbed.gfw.policy_log]
        assert "escalation" in labels
        assert "ip-block-burst" in labels
        assert "ip-block-burst:revert" in labels


# -- failover absorption (the acceptance scenario) ---------------------------------


def _resilient_browser(world):
    """The fault-experiment browser: one transport retry per object."""
    from repro.http import Browser
    return Browser(world.testbed.sim, world.method.connector(),
                   name="resilient", retries=1)


class TestFailoverAbsorption:
    def test_killed_primary_remote_is_absorbed_by_the_replica(self):
        world = prepare("scholarcloud", seed=0, remote_replicas=1)
        testbed = world.testbed
        browser = _resilient_browser(world)
        before = testbed.run_process(browser.load(testbed.scholar_page))
        assert before.succeeded
        # Kill the primary remote VM, permanently (no restore).
        testbed.transport_of(testbed.remote_vm).crash()
        after = testbed.run_process(browser.load(testbed.scholar_page))
        assert after.succeeded
        assert after.error is None
        domestic = world.method.domestic
        assert domestic.pool.failovers > 0
        assert domestic.dials_failed == 0

    def test_crash_via_fault_schedule_matches_direct_crash(self):
        world = prepare("scholarcloud", seed=0, remote_replicas=1)
        testbed = world.testbed
        browser = _resilient_browser(world)
        schedule = FaultSchedule()
        schedule.proxy_crash("remote-vm", at=testbed.sim.now + 1.0,
                             downtime=120.0)
        injector = schedule.install(testbed)
        testbed.sim.run(until=testbed.sim.now + 5.0)
        result = testbed.run_process(browser.load(testbed.scholar_page))
        assert result.succeeded and result.error is None
        assert world.method.domestic.pool.failovers > 0
        assert injector.timeline[0][1:] == ("proxy-crash", "remote-vm", "apply")


# -- close-on-error ----------------------------------------------------------------


class TestCloseOnError:
    def test_refused_open_leaves_no_established_connections(self):
        world = prepare("scholarcloud", seed=0)
        testbed = world.testbed
        connector = world.method.connector()
        with pytest.raises(MiddlewareError):
            testbed.run_process(
                connector.open("evil.example", 443, use_tls=True))
        testbed.sim.run(until=testbed.sim.now + 5.0)
        client_transport = testbed.transport_of(testbed.client)
        states = [conn.state
                  for conn in client_transport._connections.values()]
        assert TcpConnection.ESTABLISHED not in states


# -- scheduled policy changes ------------------------------------------------------


class TestSchedulePolicy:
    def test_fires_at_the_scheduled_time_and_is_audited(self):
        testbed = Testbed(seed=0)
        testbed.gfw.schedule_policy(
            12.5, lambda gfw: gfw.policy.block_domain("late.example"),
            label="late-block")
        testbed.sim.run(until=20.0)
        assert (12.5, "late-block") in testbed.gfw.policy_log
        assert testbed.policy.domain_blocked("late.example")

    def test_scheduling_in_the_past_raises(self):
        testbed = Testbed(seed=0)
        testbed.sim.run(until=30.0)
        with pytest.raises(SimulationError):
            testbed.gfw.schedule_policy(5.0, lambda gfw: None)


# -- the availability metric -------------------------------------------------------


class TestAvailabilityMetric:
    def test_empty_series(self):
        result = availability([])
        assert result.attempts == 0
        assert result.success_rate == 0.0
        assert result.worst_time_to_recovery == 0.0

    def test_all_successes(self):
        result = availability([(0.0, True), (30.0, True), (60.0, True)])
        assert result.success_rate == 1.0
        assert result.recoveries == 0
        assert "worst TTR -" in str(result)

    def test_recovery_time_spans_the_whole_outage(self):
        result = availability(
            [(0.0, True), (30.0, False), (60.0, False), (90.0, True)])
        assert result.successes == 2
        assert result.recoveries == 1
        assert result.worst_time_to_recovery == 60.0

    def test_series_ending_down_never_recovers(self):
        result = availability([(0.0, True), (30.0, False)])
        assert math.isinf(result.worst_time_to_recovery)
        assert "never" in str(result)

    def test_out_of_order_samples_raise(self):
        with pytest.raises(MeasurementError):
            availability([(10.0, True), (5.0, False)])
