"""repro.fleet: rendezvous routing, membership, chaos, and reports.

The properties that make a fleet a fleet: the session->PoP assignment
is a pure function of (key, membership) — identical across runs, seeds,
and worker processes; evicting one of M pops remaps only the sessions
that lived on it; draining a pop completes with zero mid-session drops;
and the failure detector's evict/reinstate trace is seed-deterministic.
"""

import pytest

from repro.errors import FaultError, MeasurementError
from repro.faults import Endpoint, FailoverPool
from repro.fleet import (
    ACTIVE,
    DOWN,
    DRAINED,
    DRAINING,
    FailureDetector,
    FleetSchedule,
    FleetTestbed,
    ProxyFleet,
    SessionRouter,
    aggregate_fleet,
    default_fleet_regions,
    region_by_name,
    region_gfw_config,
    region_policy,
    run_fleet_region_point,
)
from repro.http import Browser
from repro.measure import availability_over_time, merge_series
from repro.net import IPv4Address
from repro.overload import Deadline
from repro.sim import Simulator


def _endpoints(count=3):
    return [Endpoint(IPv4Address(f"47.88.1.{100 + j}"), 443,
                     name=f"pop-{j + 1}")
            for j in range(count)]


def _router(count=3, seed=0):
    return SessionRouter(Simulator(seed=seed), _endpoints(count))


def _keys(count):
    return [f"59.66.10.{11 + k}" for k in range(count)]


# -- rendezvous weights ------------------------------------------------------------


class TestRendezvousWeights:
    def test_weight_is_a_pure_function(self):
        endpoint = _endpoints(1)[0]
        assert (SessionRouter.weight("59.66.10.11", endpoint)
                == SessionRouter.weight("59.66.10.11", endpoint))

    def test_weight_is_stable_across_processes(self):
        # blake2b is unsalted, unlike builtin hash(): this exact value
        # must come out of every interpreter on every machine, which is
        # what lets parallel sweep workers agree on the assignment.
        endpoint = Endpoint(IPv4Address("47.88.1.100"), 443, name="pop-1")
        assert SessionRouter.weight("59.66.10.11",
                                    endpoint) == 12929590679812331767

    def test_rank_orders_all_endpoints(self):
        router = _router(4)
        ranked = router.rank("59.66.10.11")
        assert sorted(str(e) for e in ranked) == sorted(
            str(e) for e in router.endpoints)
        weights = [SessionRouter.weight("59.66.10.11", e) for e in ranked]
        assert weights == sorted(weights, reverse=True)

    def test_label_does_not_affect_identity_or_weight(self):
        bare = Endpoint(IPv4Address("47.88.1.100"), 443)
        labelled = Endpoint(IPv4Address("47.88.1.100"), 443, name="pop-1")
        assert bare == labelled
        assert hash(bare) == hash(labelled)
        assert (SessionRouter.weight("key", bare)
                == SessionRouter.weight("key", labelled))


# -- sticky routing ----------------------------------------------------------------


class TestStickyRouting:
    def test_route_picks_the_top_ranked_active_endpoint(self):
        router = _router()
        key = "59.66.10.11"
        assert router.route(key) == router.rank(key)[0]

    def test_binding_is_sticky(self):
        router = _router()
        key = "59.66.10.11"
        first = router.route(key)
        router.bind(key, first)
        for _ in range(3):
            assert router.route(key) == first

    def test_allow_veto_falls_to_second_choice(self):
        router = _router()
        key = "59.66.10.11"
        first, second = router.rank(key)[:2]
        assert router.route(key, allow=lambda e: e != first) == second

    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(FaultError):
            SessionRouter(Simulator(seed=0), [])


# -- eviction remaps only its own sessions -----------------------------------------


class TestEviction:
    def test_evict_remaps_only_the_lost_pops_sessions(self):
        router = _router(3)
        keys = _keys(120)
        for key in keys:
            router.bind(key, router.route(key))
        victim = router.endpoints[1]
        on_victim = set(router.sessions_on(victim))
        before = {key: router.route(key) for key in keys
                  if key not in on_victim}

        displaced = router.evict(victim)

        assert set(displaced) == on_victim
        # With 3 pops, rendezvous spreads ~1/3 per pop; the displaced
        # share must be that fraction, not "most of the fleet".
        assert 0.15 < len(displaced) / len(keys) < 0.55
        # Nobody else moves: every surviving session's route is
        # exactly what it was before the eviction.
        for key, endpoint in before.items():
            assert router.route(key) == endpoint

    def test_displaced_rebind_counts_as_remap(self):
        router = _router(3)
        keys = _keys(30)
        for key in keys:
            router.bind(key, router.route(key))
        victim = router.endpoints[0]
        displaced = router.evict(victim)
        assert displaced
        for key in displaced:
            router.bind(key, router.route(key))
        assert router.remaps == len(displaced)
        assert len(router.churn) == len(displaced)
        # Survivors rebinding to their sticky pop is not churn.
        survivor = next(k for k in keys if k not in displaced)
        router.bind(survivor, router.route(survivor))
        assert router.remaps == len(displaced)

    def test_reinstate_causes_no_flap_back(self):
        router = _router(3)
        keys = _keys(30)
        for key in keys:
            router.bind(key, router.route(key))
        victim = router.endpoints[0]
        displaced = router.evict(victim)
        for key in displaced:
            router.bind(key, router.route(key))
        remaps_after_failover = router.remaps
        router.reinstate(victim)
        # Every session that failed over stays put; no second migration.
        for key in displaced:
            assert router.route(key) != victim
        assert router.remaps == remaps_after_failover
        assert router.status[victim] == ACTIVE
        assert router.reinstatements == 1

    def test_evict_unknown_endpoint_raises(self):
        router = _router(2)
        with pytest.raises(FaultError):
            router.evict(Endpoint(IPv4Address("10.9.9.9"), 1, name="ghost"))


# -- drain / deploy (control plane) ------------------------------------------------


class TestDrainDeploy:
    def test_drain_keeps_established_sessions_and_refuses_new_ones(self):
        router = _router(2)
        keys = _keys(40)
        for key in keys:
            router.bind(key, router.route(key))
        target = router.endpoints[0]
        held = router.sessions_on(target)
        assert held

        router.drain(target)

        assert router.status[target] == DRAINING
        # Established sessions keep routing to the draining pop...
        for key in held:
            assert router.route(key) == target
        # ...but a brand-new key never lands there.
        for k in range(50):
            fresh = f"10.1.2.{k}"
            assert router.route(fresh) != target

    def test_drain_completes_with_zero_mid_session_drops(self):
        router = _router(2)
        keys = _keys(40)
        for key in keys:
            router.bind(key, router.route(key))
        target = router.endpoints[0]
        held = router.sessions_on(target)
        router.drain(target)
        for key in keys:
            router.release(key)
        assert router.status[target] == DRAINED
        # Zero drops: nothing was remapped, nothing churned — the
        # sessions simply finished where they were.
        assert router.remaps == 0
        assert router.churn == []
        verbs = [verb for _, verb, name in router.events
                 if name == str(target)]
        assert verbs == ["drain", "drained"]
        assert held  # the property is vacuous without held sessions

    def test_drain_requires_an_active_pop(self):
        router = _router(2)
        target = router.endpoints[0]
        router.drain(target)
        with pytest.raises(FaultError):
            router.drain(target)

    def test_deploy_adds_a_new_pop_to_membership(self):
        router = _router(2)
        newcomer = Endpoint(IPv4Address("47.88.1.200"), 443, name="pop-new")
        router.deploy(newcomer)
        assert router.status[newcomer] == ACTIVE
        assert newcomer in router.endpoints
        # Some fresh keys now rank the newcomer first.
        assert any(router.route(f"172.16.0.{k}") == newcomer
                   for k in range(64))

    def test_deploy_reactivates_a_drained_pop(self):
        router = _router(2)
        target = router.endpoints[0]
        router.drain(target)
        assert router.status[target] == DRAINED
        router.deploy(target)
        assert router.status[target] == ACTIVE


# -- failure detector (end to end) -------------------------------------------------


def _detector_world(seed=0, pops=2):
    testbed = FleetTestbed(seed=seed, regions=default_fleet_regions(1),
                           pops=pops)
    fleet = ProxyFleet(testbed, detector_interval=5.0, detector_timeout=2.0)
    testbed.run_process(fleet.launch(), name="launch")
    return testbed, fleet


class TestFailureDetector:
    def test_dead_pop_is_evicted_then_reinstated(self):
        testbed, fleet = _detector_world()
        victim = testbed.pops[0]
        transport = testbed.transport_of(victim)
        snapshot = transport.crash()
        testbed.sim.run(until=60.0)
        endpoint = fleet.endpoint(victim.name)
        assert fleet.router.status[endpoint] == DOWN
        assert fleet.router.evictions == 1
        transport.restore(snapshot)
        testbed.sim.run(until=120.0)
        assert fleet.router.status[endpoint] == ACTIVE
        assert fleet.router.reinstatements == 1

    def test_detector_trace_is_seed_deterministic(self):
        def trace(seed):
            testbed, fleet = _detector_world(seed=seed)
            victim = testbed.pops[0]
            testbed.transport_of(victim).crash()
            testbed.sim.run(until=60.0)
            assert fleet.detector is not None
            return list(fleet.detector.log), list(fleet.router.events)

        assert trace(4) == trace(4)

    def test_healthy_fleet_stays_fully_active(self):
        testbed, fleet = _detector_world()
        testbed.sim.run(until=45.0)
        assert all(status == ACTIVE
                   for status in fleet.router.status.values())
        assert fleet.detector is not None
        assert fleet.detector.probes_sent > 0
        assert all(verdict == "ok"
                   for _, _, verdict in fleet.detector.log)


# -- least-loaded routing policy ---------------------------------------------------


def _least_loaded(count=3, seed=0):
    return SessionRouter(Simulator(seed=seed), _endpoints(count),
                         policy="least_loaded")


class TestLeastLoadedPolicy:
    def test_unknown_policy_raises(self):
        with pytest.raises(FaultError):
            SessionRouter(Simulator(seed=0), _endpoints(2), policy="roulette")

    def test_zero_load_ties_break_to_rendezvous(self):
        # With no live sessions anywhere, every load is equal and the
        # HRW weight decides — least_loaded degrades to exactly the
        # rendezvous assignment, not to dict order.
        balanced, hrw = _least_loaded(), _router()
        for key in _keys(10):
            assert balanced.route(key) == hrw.route(key)

    def test_new_sessions_balance_the_load(self):
        router = _least_loaded()
        for key in _keys(12):
            router.bind(key, router.route(key))
        loads = [router.live_sessions_on(endpoint)
                 for endpoint in router.endpoints]
        assert loads == [4, 4, 4]

    def test_bound_sessions_stay_sticky_under_load_shifts(self):
        router = _least_loaded()
        keys = _keys(6)
        for key in keys:
            router.bind(key, router.route(key))
        bound = router.binding(keys[0])
        # Freeing everyone else makes other pops emptier, but an
        # established session never migrates for balance alone.
        for key in keys[1:]:
            router.release(key)
        assert router.route(keys[0]) == bound

    def test_assignment_is_pinned(self):
        # The exact map is part of the contract: a pure function of
        # (key, membership, load), identical on every machine and run.
        router = _least_loaded()
        for key in _keys(6):
            router.bind(key, router.route(key))
        assert router.assignment() == {
            "59.66.10.11": "pop-1",
            "59.66.10.12": "pop-2",
            "59.66.10.13": "pop-3",
            "59.66.10.14": "pop-1",
            "59.66.10.15": "pop-2",
            "59.66.10.16": "pop-3",
        }


# -- reinstatement hysteresis ------------------------------------------------------


class TestReinstatementHysteresis:
    def test_flapping_probes_never_reinstate(self):
        # One healthy probe between failures must not re-admit a pop a
        # route flap is about to kill again: reinstatement requires
        # reinstate_threshold *consecutive* ok verdicts.
        sim = Simulator(seed=0)
        router = SessionRouter(sim, _endpoints(1))
        detector = FailureDetector(sim, router, transport=object(),
                                   suspicion_threshold=2,
                                   reinstate_threshold=2)
        endpoint = router.endpoints[0]
        detector._on_failure(endpoint)
        detector._on_failure(endpoint)
        assert router.status[endpoint] == DOWN
        for _ in range(3):  # flap: ok, fail, ok, fail, ...
            detector._on_success(endpoint)
            assert router.status[endpoint] == DOWN
            detector._on_failure(endpoint)
        assert router.reinstatements == 0
        detector._on_success(endpoint)
        detector._on_success(endpoint)
        assert router.status[endpoint] == ACTIVE
        assert router.reinstatements == 1

    def test_thresholds_must_be_positive(self):
        sim = Simulator(seed=0)
        router = SessionRouter(sim, _endpoints(1))
        with pytest.raises(FaultError):
            FailureDetector(sim, router, transport=object(),
                            reinstate_threshold=0)
        with pytest.raises(FaultError):
            FailureDetector(sim, router, transport=object(),
                            suspicion_threshold=0)


# -- health probes respect session deadlines ---------------------------------------


class TestFailoverProbeDeadline:
    def test_expired_deadline_fails_without_dialing(self):
        sim = Simulator(seed=0)
        pool = FailoverPool(sim, _endpoints(2))
        gen = pool.probe(object(), pool.endpoints[0], deadline=Deadline(0.0))
        with pytest.raises(StopIteration) as stop:
            next(gen)
        assert stop.value.value is False
        assert pool.probes_sent == 0

    def test_live_probe_succeeds_within_a_deadline(self):
        testbed, fleet = _detector_world()
        sim = testbed.sim
        pool = FailoverPool(sim, fleet.endpoints)
        transport = testbed.transport_of(testbed.control)
        outcome = {}

        def prober():
            outcome["up"] = yield from pool.probe(
                transport, fleet.endpoints[0],
                deadline=Deadline(sim.now + 60.0))

        sim.run(until=sim.process(prober(), name="probe"))
        assert outcome["up"] is True
        assert pool.probes_sent == 1

    def test_probe_timeout_is_clamped_to_the_deadline(self):
        # probe_timeout says 3s, but the session it gates has only 0.5s
        # left: the dial must give up by the deadline, not after it.
        testbed, fleet = _detector_world()
        sim = testbed.sim
        pool = FailoverPool(sim, fleet.endpoints, probe_timeout=3.0)
        transport = testbed.transport_of(testbed.control)
        testbed.transport_of(testbed.pops[0]).crash()
        outcome = {}

        def prober():
            outcome["up"] = yield from pool.probe(
                transport, fleet.endpoints[0],
                deadline=Deadline(sim.now + 0.5))

        start = sim.now
        sim.run(until=sim.process(prober(), name="probe"))
        assert outcome["up"] is False
        assert sim.now - start <= 0.6


# -- end-to-end: same-seed assignment and drain without drops ----------------------


def _small_point(**overrides):
    kwargs = dict(region="beijing", pops=3, clients=4, cycles=1, seed=3,
                  mode="packet")
    kwargs.update(overrides)
    return run_fleet_region_point(**kwargs)


class TestFleetPoints:
    def test_same_seed_same_assignment_and_samples(self):
        first = _small_point()
        second = _small_point()
        assert first.assignment_digest == second.assignment_digest
        assert first.samples == second.samples
        assert first.completed == second.completed

    def test_assignment_is_independent_of_seed(self):
        # The rendezvous map is a function of (key, membership) only:
        # reseeding reshuffles timing, never placement.
        assert (_small_point(seed=3).assignment_digest
                == _small_point(seed=4).assignment_digest)

    def test_all_loads_succeed_on_a_healthy_fleet(self):
        result = _small_point(clients=4, cycles=2)
        assert result.failed == 0
        assert result.completed == 4 * 2  # sampled loads: clients x cycles
        assert result.failovers == 0
        assert result.remaps == 0

    def test_mid_run_drain_drops_nothing(self):
        testbed = FleetTestbed(seed=2, regions=default_fleet_regions(1),
                               pops=2, clients_per_region=6)
        fleet = ProxyFleet(testbed)
        testbed.run_process(fleet.launch(), name="launch")
        region = testbed.region("beijing")
        results = []

        def client_loop(host):
            browser = Browser(testbed.sim, fleet.connector("beijing",
                                                           host=host))
            for _ in range(3):
                results.append((yield from browser.load(
                    testbed.scholar_page)))
                yield testbed.sim.timeout(20.0)

        processes = [testbed.sim.process(client_loop(host),
                                         name=f"client:{host.name}")
                     for host in region.extra_clients]

        def drainer():
            yield testbed.sim.timeout(25.0)
            fleet.drain("pop-1")

        testbed.sim.process(drainer(), name="drainer")
        testbed.sim.run(until=testbed.sim.all_of(processes))

        assert len(results) == 6 * 3
        assert all(result.succeeded for result in results)
        # Draining must not remap anyone mid-flight.
        assert fleet.router is not None
        assert fleet.router.churn == []
        drained = fleet.endpoint("pop-1")
        assert fleet.router.status[drained] in (DRAINING, DRAINED)


# -- regional divergence -----------------------------------------------------------


class TestRegionalDivergence:
    def test_catalogue_has_divergent_policies(self):
        beijing = region_policy(region_by_name("beijing"))
        chengdu = region_policy(region_by_name("chengdu"))
        assert chengdu.keyword_hit("bridge-distribution notes")
        assert not beijing.keyword_hit("bridge-distribution notes")

    def test_interference_scale_raises_regional_rates(self):
        beijing = region_policy(region_by_name("beijing"))
        shanghai = region_policy(region_by_name("shanghai"))
        for label, rate in beijing.class_interference.items():
            assert shanghai.interference_for(label) >= rate

    def test_gfw_config_tracks_the_region(self):
        spec = region_by_name("guangzhou")
        config = region_gfw_config(spec)
        assert config.inside_name == "border-cn-guangzhou"
        assert config.active_probing is spec.active_probing
        assert config.reset_penalty_seconds == spec.reset_penalty_seconds

    def test_unknown_region_raises(self):
        with pytest.raises(MeasurementError):
            region_by_name("atlantis")

    def test_testbed_builds_one_distinct_gfw_per_region(self):
        testbed = FleetTestbed(seed=0, regions=default_fleet_regions(2))
        gfws = [region.gfw for region in testbed.regions]
        assert all(gfw is not None for gfw in gfws)
        assert len({id(gfw) for gfw in gfws}) == len(gfws)
        assert sorted(gfw.name for gfw in gfws) == [
            "gfw-beijing", "gfw-shanghai"]


# -- chaos schedule ----------------------------------------------------------------


class TestFleetSchedule:
    def test_pop_blackout_requires_positive_downtime(self):
        with pytest.raises(FaultError):
            FleetSchedule().pop_blackout("pop-1", at=10.0, downtime=0.0)

    def test_regional_escalation_requires_a_knob(self):
        with pytest.raises(FaultError):
            FleetSchedule().regional_escalation("beijing", at=10.0,
                                                duration=30.0)

    def test_route_flap_emits_one_event_per_flap(self):
        schedule = FleetSchedule()
        events = schedule.route_flap("beijing", at=100.0, flaps=3,
                                     period=20.0)
        assert [event.at for event in events] == [100.0, 120.0, 140.0]
        assert all(event.kind == "route-flap" for event in events)
        assert all(event.duration == 10.0 for event in events)

    def test_escalation_applies_and_reverts_on_the_regions_gfw(self):
        testbed = FleetTestbed(seed=0, regions=default_fleet_regions(2))
        schedule = FleetSchedule()
        schedule.regional_escalation("shanghai", at=10.0, duration=20.0,
                                     keywords=("ephemeral-kw",),
                                     interference_scale=2.0)
        schedule.install(testbed)
        shanghai = testbed.region("shanghai")
        assert shanghai.gfw is not None
        baseline = dict(shanghai.policy.class_interference)
        testbed.sim.run(until=15.0)
        assert shanghai.policy.keyword_hit("ephemeral-kw probe")
        # The *other* region's firewall is untouched — divergence is
        # per-instance, not global state.
        beijing = testbed.region("beijing")
        assert not beijing.policy.keyword_hit("ephemeral-kw probe")
        testbed.sim.run(until=40.0)
        assert not shanghai.policy.keyword_hit("ephemeral-kw probe")
        assert dict(shanghai.policy.class_interference) == baseline
        labels = [label for _, label in shanghai.gfw.policy_log]
        assert "escalation:shanghai" in labels
        assert "escalation:shanghai:revert" in labels


# -- availability series and fleet report ------------------------------------------


class TestAvailabilitySeries:
    def test_bucketing_folds_samples_into_windows(self):
        series = availability_over_time(
            [(5.0, True), (25.0, False), (35.0, True)], bucket=30.0)
        assert series.attempts == (2, 1)
        assert series.successes == (1, 1)
        assert series.rates == (0.5, 1.0)

    def test_empty_buckets_render_as_gaps(self):
        series = availability_over_time([(65.0, True)], bucket=30.0)
        assert series.rates == (None, None, 1.0)
        assert "-" in str(series)

    def test_horizon_pads_for_alignment(self):
        series = availability_over_time([(5.0, True)], bucket=30.0,
                                        horizon=89.0)
        assert len(series.attempts) == 3

    def test_merge_sums_aligned_regions(self):
        first = availability_over_time([(5.0, True), (35.0, False)],
                                       bucket=30.0)
        second = availability_over_time([(6.0, True), (36.0, True)],
                                        bucket=30.0)
        merged = merge_series([first, second])
        assert merged.attempts == (2, 2)
        assert merged.successes == (2, 1)

    def test_bad_bucket_raises(self):
        with pytest.raises(MeasurementError):
            availability_over_time([(0.0, True)], bucket=0.0)


class TestFleetReport:
    def test_blackout_campaign_dips_and_recovers(self):
        result = run_fleet_region_point(
            "beijing", pops=3, clients=12, cycles=3, seed=1,
            mode="packet", blackout_pop="pop-2", blackout_at=90.0,
            blackout_downtime=60.0)
        report = aggregate_fleet([result], bucket=60.0)
        assert result.evictions == 1
        assert result.reinstatements == 1
        assert result.remaps > 0
        assert report.recovered()
        # Bounded disruption: the router absorbs the blackout, so the
        # fleet-wide dip stays within 10 availability points.
        assert report.availability_dip() <= 0.10
        rendered = report.render()
        assert "fleet availability report" in rendered
        assert "beijing" in rendered
        assert "evict" in rendered

    def test_campaign_timeline_is_recorded(self):
        result = run_fleet_region_point(
            "beijing", pops=2, clients=2, cycles=1, seed=0,
            mode="packet", blackout_pop="pop-1", blackout_at=30.0,
            blackout_downtime=30.0)
        assert (30.0, "pop-blackout", "pop-1", "apply") in result.timeline
        assert (60.0, "pop-blackout", "pop-1", "revert") in result.timeline
