"""Tests for the regulation model: registry, agencies, investigations."""

import pytest

from repro.errors import RegistrationError
from repro.policy import (
    APPROVED,
    IcpRegistry,
    RegulatoryEnvironment,
    REVOKED,
    ServiceListing,
    SUBMITTED,
    UNDER_REVIEW,
)
from repro.sim import Simulator
from repro.units import DAY


def full_documents():
    from repro.policy import REQUIRED_DOCUMENTS
    return REQUIRED_DOCUMENTS


def submit(registry, domain="scholar.thucloud.com", **overrides):
    kwargs = dict(
        company="ScholarCloud Co.",
        service_name="ScholarCloud",
        service_type="whitelisted web proxy",
        domains=(domain,),
        whitelist=("scholar.google.com",),
    )
    kwargs.update(overrides)
    return registry.submit(**kwargs)


def test_registration_lifecycle():
    sim = Simulator()
    registry = IcpRegistry(sim, review_days=30)
    registration = submit(registry)
    assert registration.status == UNDER_REVIEW
    assert not registry.is_registered("scholar.thucloud.com")
    sim.run(until=31 * DAY)
    assert registration.status == APPROVED
    assert registry.is_registered("scholar.thucloud.com")
    assert registration.number.startswith("ICP-")


def test_incomplete_documents_rejected():
    registry = IcpRegistry(Simulator())
    with pytest.raises(RegistrationError):
        submit(registry, documents={"user-guide"})


def test_duplicate_domain_rejected():
    sim = Simulator()
    registry = IcpRegistry(sim)
    submit(registry)
    with pytest.raises(RegistrationError):
        submit(registry)


def test_no_domains_rejected():
    registry = IcpRegistry(Simulator())
    with pytest.raises(RegistrationError):
        submit(registry, domains=())


def test_revocation():
    sim = Simulator()
    registry = IcpRegistry(sim, review_days=1)
    registration = submit(registry)
    sim.run(until=2 * DAY)
    registry.revoke(registration.number, "illegal content")
    assert registration.status == REVOKED
    assert not registry.is_registered("scholar.thucloud.com")
    assert any("revoked" in event for _t, event in registration.history)


def test_lookup_unknown_number():
    registry = IcpRegistry(Simulator())
    with pytest.raises(RegistrationError):
        registry.lookup("ICP-0")


# -- investigations -----------------------------------------------------------------

def test_registered_service_survives_investigation():
    sim = Simulator()
    environment = RegulatoryEnvironment(sim, review_days=10,
                                        investigation_days=30)
    environment.legalize(
        company="ScholarCloud Co.", service_name="ScholarCloud",
        service_type="whitelisted proxy", domains=("scholar.thucloud.com",),
        whitelist=("scholar.google.com",))
    shutdown_calls = []
    listing = ServiceListing("ScholarCloud", "scholar.thucloud.com", "proxy",
                             shutdown=lambda: shutdown_calls.append(1))
    environment.security.observe_service(listing)
    cases = environment.security.sweep()
    sim.run(until=120 * DAY)
    assert cases[0].outcome == "no-action"
    assert shutdown_calls == []


def test_unregistered_proxy_gets_shut_down():
    sim = Simulator()
    environment = RegulatoryEnvironment(sim, investigation_days=30)
    shutdown_calls = []
    listing = ServiceListing("GreyProxy", "grey-proxy.example", "proxy",
                             shutdown=lambda: shutdown_calls.append(1))
    environment.security.observe_service(listing)
    environment.security.sweep()
    sim.run(until=120 * DAY)
    assert environment.security.shutdowns == ["grey-proxy.example"]
    assert shutdown_calls == [1]


def test_plain_websites_are_not_swept():
    sim = Simulator()
    environment = RegulatoryEnvironment(sim)
    environment.security.observe_service(
        ServiceListing("Blog", "blog.example", "web"))
    assert environment.security.sweep() == []


def test_investigations_take_time():
    """Regulation is slower than packet filtering — the paper's point."""
    sim = Simulator()
    environment = RegulatoryEnvironment(sim, investigation_days=45)
    listing = ServiceListing("GreyProxy", "grey.example", "proxy")
    case = environment.security.open_investigation(listing)
    sim.run(until=10 * DAY)
    assert case.outcome is None  # still collecting evidence
    sim.run(until=200 * DAY)
    assert case.outcome == "shutdown"
    assert case.closed_at - case.opened_at > 20 * DAY
