"""Tests for the live loopback proxies (real sockets on 127.0.0.1)."""

import asyncio

import pytest

from repro.core import AffineCodec, default_codec, scholar_whitelist
from repro.crypto import shannon_entropy
from repro.errors import BlindingError
from repro.realnet import (
    DomesticProxyServer,
    FramedStream,
    RemoteProxyServer,
    ScholarOrigin,
    SsLiveLocal,
    SsLiveServer,
    fetch_via_proxy,
    socks5_fetch,
)


def run(coro):
    return asyncio.run(coro)


# -- framing ---------------------------------------------------------------------

def test_framed_roundtrip_plain_and_blinded():
    async def scenario():
        for codec in (None, default_codec(), AffineCodec(7, 13)):
            server_got = []

            async def handle(reader, writer):
                stream = FramedStream(reader, writer, codec=codec)
                frame = await stream.recv()
                server_got.append(frame)
                await stream.send(b"pong:" + frame)
                stream.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            stream = FramedStream(reader, writer, codec=codec)
            await stream.send(b"ping-payload")
            reply = await stream.recv()
            assert server_got == [b"ping-payload"]
            assert reply == b"pong:ping-payload"
            stream.close()
            server.close()
            await server.wait_closed()

    run(scenario())


def test_wrong_codec_detected_not_garbage():
    async def scenario():
        async def handle(reader, writer):
            stream = FramedStream(reader, writer, codec=default_codec(b"A"))
            await stream.send(b"hello")
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        stream = FramedStream(reader, writer, codec=default_codec(b"B"))
        with pytest.raises(BlindingError):
            await stream.recv()
        stream.close()
        server.close()
        await server.wait_closed()

    run(scenario())


# -- full split-proxy chain -----------------------------------------------------------

class LiveWorld:
    async def __aenter__(self):
        self.origin = await ScholarOrigin().start()
        self.remote = await RemoteProxyServer().start()
        self.domestic = await DomesticProxyServer(
            scholar_whitelist(), "127.0.0.1", self.remote.port,
            resolve=lambda name: ("127.0.0.1", self.origin.port)).start()
        return self

    async def __aexit__(self, *exc):
        for server in (self.origin, self.remote, self.domestic):
            await server.stop()


def test_live_scholarcloud_chain_serves_whitelisted_page():
    async def scenario():
        async with LiveWorld() as world:
            response = await fetch_via_proxy(
                "127.0.0.1", world.domestic.port, "http://scholar.google.com/")
            assert response.startswith(b"HTTP/1.1 200")
            assert b"shoulders of giants" in response
            assert world.remote.requests_relayed == 1

    run(scenario())


def test_live_chain_refuses_non_whitelisted():
    async def scenario():
        async with LiveWorld() as world:
            response = await fetch_via_proxy(
                "127.0.0.1", world.domestic.port, "http://www.youtube.com/")
            assert response.startswith(b"HTTP/1.1 403")
            assert world.domestic.refused == 1
            assert world.remote.requests_relayed == 0

    run(scenario())


def test_live_chain_search_endpoint():
    async def scenario():
        async with LiveWorld() as world:
            response = await fetch_via_proxy(
                "127.0.0.1", world.domestic.port,
                "http://scholar.google.com/scholar?q=censorship")
            assert b"Results for censorship" in response

    run(scenario())


def test_inter_proxy_bytes_are_actually_blinded():
    """Sniff the domestic->remote leg: no plaintext, high entropy."""
    async def scenario():
        captured = []

        async def sniffing_remote(reader, writer):
            data = await reader.read(4096)
            captured.append(data)
            writer.close()

        sniffer = await asyncio.start_server(sniffing_remote, "127.0.0.1", 0)
        port = sniffer.sockets[0].getsockname()[1]
        domestic = await DomesticProxyServer(
            scholar_whitelist(), "127.0.0.1", port).start()
        response = await fetch_via_proxy(
            "127.0.0.1", domestic.port, "http://scholar.google.com/")
        assert response.startswith(b"HTTP/1.1 502")  # sniffer never answers
        blob = captured[0]
        assert b"scholar" not in blob
        assert b"GET" not in blob
        # Short samples can't reach 8 bits/byte; judge against a
        # same-length uniform-random baseline instead.
        import os
        baseline = shannon_entropy(os.urandom(len(blob)))
        assert shannon_entropy(blob) > baseline - 0.5
        await domestic.stop()
        sniffer.close()
        await sniffer.wait_closed()

    run(scenario())


# -- live shadowsocks -------------------------------------------------------------------

def test_live_shadowsocks_roundtrip():
    async def scenario():
        origin = await ScholarOrigin().start()
        server = await SsLiveServer("correct horse").start()
        local = await SsLiveLocal("correct horse", "127.0.0.1",
                                  server.port).start()
        request = (b"GET / HTTP/1.1\r\nHost: scholar\r\n"
                   b"Connection: close\r\n\r\n")
        response = await socks5_fetch("127.0.0.1", local.port,
                                      "127.0.0.1", origin.port, request)
        assert response.startswith(b"HTTP/1.1 200")
        assert server.relays == 1
        for s in (origin, server, local):
            await s.stop()

    run(scenario())


def test_live_shadowsocks_hangs_on_garbage():
    """The probe-resistance tell the GFW fingerprints."""
    async def scenario():
        server = await SsLiveServer("pw").start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"\xde\xad\xbe\xef" * 16)  # not a valid IV+header
        await writer.drain()
        writer.close()
        await asyncio.sleep(0.05)
        assert server.hung_connections == 1
        assert server.relays == 0
        await server.stop()

    run(scenario())


def test_live_shadowsocks_wrong_password_never_relays():
    async def scenario():
        origin = await ScholarOrigin().start()
        server = await SsLiveServer("right").start()
        local = await SsLiveLocal("wrong", "127.0.0.1", server.port).start()
        request = b"GET / HTTP/1.1\r\n\r\n"
        try:
            response = await asyncio.wait_for(
                socks5_fetch("127.0.0.1", local.port, "127.0.0.1",
                             origin.port, request),
                timeout=0.5)
        except asyncio.TimeoutError:
            response = b""
        assert b"200" not in response
        assert server.relays == 0
        for s in (origin, server, local):
            await s.stop()

    run(scenario())
