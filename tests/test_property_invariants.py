"""Hypothesis property tests on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.crypto import AES, CfbCipher, CtrCipher, RC4, shannon_entropy
from repro.gfw.flow_table import canonical_flow
from repro.measure import percentile, summarize
from repro.net import IPv4Address, Prefix
from repro.sim import ProcessorSharingServer, Simulator, Store


# -- crypto round trips ----------------------------------------------------------

@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
@settings(max_examples=30)
def test_aes_block_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(st.binary(max_size=512), st.binary(min_size=32, max_size=32),
       st.binary(min_size=16, max_size=16))
@settings(max_examples=30)
def test_cfb_roundtrip_any_length(data, key, iv):
    assert CfbCipher(key, iv).decrypt(CfbCipher(key, iv).encrypt(data)) == data


@given(st.binary(max_size=512), st.binary(min_size=16, max_size=16),
       st.binary(min_size=16, max_size=16))
@settings(max_examples=30)
def test_ctr_is_an_involution(data, key, nonce):
    once = CtrCipher(key, nonce).process(data)
    assert CtrCipher(key, nonce).process(once) == data


@given(st.binary(max_size=512), st.binary(min_size=1, max_size=64))
@settings(max_examples=30)
def test_rc4_roundtrip(data, key):
    assert RC4(key).process(RC4(key).process(data)) == data


@given(st.binary(min_size=1, max_size=4096))
@settings(max_examples=50)
def test_entropy_bounds_hold(data):
    entropy = shannon_entropy(data)
    assert 0.0 <= entropy <= 8.0


# -- addresses --------------------------------------------------------------------

@given(st.integers(0, 2**32 - 1))
def test_address_int_str_roundtrip(value):
    address = IPv4Address(value)
    assert int(IPv4Address(str(address))) == value


@given(st.integers(0, 2**32 - 1), st.integers(0, 32))
def test_prefix_contains_its_network(value, length):
    prefix = Prefix(f"{IPv4Address(value)}/{length}")
    assert prefix.network in prefix


@given(st.integers(0, 2**32 - 1), st.integers(1, 31))
def test_prefix_membership_is_mask_consistent(value, length):
    prefix = Prefix(f"{IPv4Address(value)}/{length}")
    inside = IPv4Address(int(prefix.network) | (1 << (31 - length) >> 5))
    # Any address sharing the top `length` bits is inside.
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    assert (int(inside) & mask) == int(prefix.network)
    assert inside in prefix


# -- flow table ----------------------------------------------------------------------

@given(st.tuples(st.just("tcp"),
                 st.ip_addresses(v=4).map(str), st.integers(1, 65535),
                 st.ip_addresses(v=4).map(str), st.integers(1, 65535)))
def test_canonical_flow_symmetric(flow):
    proto, src, sport, dst, dport = flow
    reverse = (proto, dst, dport, src, sport)
    assert canonical_flow(flow) == canonical_flow(reverse)


# -- statistics -------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_summary_invariants(values):
    summary = summarize(values)
    assert summary.minimum <= summary.p50 <= summary.maximum
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.count == len(values)
    assert summary.stdev >= 0


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100),
       st.floats(min_value=0, max_value=1))
def test_percentile_is_bounded(values, fraction):
    ordered = sorted(values)
    result = percentile(ordered, fraction)
    assert ordered[0] <= result <= ordered[-1]


# -- processor sharing ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1,
                max_size=10))
@settings(max_examples=30, deadline=None)
def test_ps_conservation(demands):
    """Total busy time equals total demand / capacity (work conservation),
    and every job finishes."""
    sim = Simulator()
    cpu = ProcessorSharingServer(sim, capacity=2.0)
    finished = []

    def job(sim, demand):
        yield cpu.submit(demand)
        finished.append(sim.now)

    for demand in demands:
        sim.process(job(sim, demand))
    sim.run()
    assert len(finished) == len(demands)
    expected_busy = sum(demands) / 2.0
    assert abs(cpu.utilization(horizon=max(finished)) * max(finished)
               - expected_busy) < 1e-6
    # No job can finish before its solo service time.
    assert min(finished) >= min(demands) / 2.0 - 1e-9


@given(st.lists(st.integers(0, 1000), max_size=50))
@settings(max_examples=30, deadline=None)
def test_store_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim):
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)

    process = sim.process(consumer(sim))
    for item in items:
        store.put(item)
    sim.run()
    assert received == list(items)
