"""Tests for Shadowsocks: protocol framing, sessions, GFW interaction."""

import pytest

from repro.crypto import shannon_entropy
from repro.errors import MiddlewareError
from repro.gfw.dpi import SS_FIRST_FRAME_RANGE
from repro.measure import Testbed
from repro.middleware.shadowsocks import (
    ShadowsocksMethod,
    address_block,
    derive_key,
    first_frame,
    first_frame_features,
)


def ss_world(**kwargs):
    testbed = Testbed()
    method = ShadowsocksMethod(testbed, **kwargs)
    testbed.run_process(method.setup())
    return testbed, method


# -- protocol framing ------------------------------------------------------------

def test_key_derivation_matches_openssl_convention():
    key = derive_key("scholar-tunnel")
    assert len(key) == 32
    assert key == derive_key("scholar-tunnel")
    assert key != derive_key("other-password")


def test_address_block_layout():
    block = address_block("scholar.google.com", 443)
    assert block[0] == 3  # ATYP domain
    assert block[1] == len("scholar.google.com")
    assert block[-2:] == (443).to_bytes(2, "big")


def test_first_frame_is_real_ciphertext():
    frame = first_frame("pw", "scholar.google.com", 443, iv=b"\x00" * 16)
    assert frame[:16] == b"\x00" * 16
    # The encrypted part must not contain the plaintext hostname.
    assert b"scholar" not in frame


def test_first_frame_features_match_dpi_expectations():
    features = first_frame_features("pw", "scholar.google.com", 443)
    low, high = SS_FIRST_FRAME_RANGE
    assert low <= features.length_signature <= high
    assert features.entropy > 7.5
    assert features.protocol_tag == "unknown-stream"


def test_longer_hostname_longer_signature():
    short = first_frame_features("pw", "a.io", 443)
    long = first_frame_features("pw", "very-long-hostname.google.com", 443)
    assert long.length_signature > short.length_signature


# -- end-to-end behaviour -----------------------------------------------------------

def test_shadowsocks_reaches_blocked_scholar():
    testbed, method = ss_world()
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_connector_requires_setup():
    with pytest.raises(MiddlewareError):
        ShadowsocksMethod(Testbed()).connector()


def test_keepalive_forces_reauthentication():
    testbed, method = ss_world()
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    auths_before = method.local.auth_rounds
    # Within the keep-alive window: no session re-auth needed.
    testbed.sim.run(until=testbed.sim.now + 5)
    testbed.run_process(browser.load(testbed.scholar_page))
    within = method.local.auth_rounds
    # Past the 10 s keep-alive: the session must re-authenticate.
    testbed.sim.run(until=testbed.sim.now + 60)
    testbed.run_process(browser.load(testbed.scholar_page))
    assert within == auths_before
    assert method.local.auth_rounds == within + 1


def test_wrong_password_hangs_silently():
    testbed, _method = ss_world()
    from repro.middleware.shadowsocks import SsLocal

    bad = SsLocal(testbed, testbed.remote_vm.address, password="wrong")

    def body(sim):
        task = sim.process(bad.ensure_session(), name="bad-auth")
        yield sim.any_of([task, sim.timeout(20.0)])
        return task.triggered

    finished = testbed.run_process(body(testbed.sim))
    assert not finished  # the server never answers a bad credential


def test_gfw_labels_shadowsocks_flows():
    testbed, method = ss_world()
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    assert testbed.gfw.stats.flows_labeled.get("shadowsocks", 0) >= 1


def test_server_auth_consumes_vm_cpu():
    testbed, method = ss_world()
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    horizon = max(testbed.sim.now, 1.0)
    assert testbed.remote_cpu.utilization(horizon) > 0.0


def test_multi_client_attachment():
    testbed = Testbed(extra_clients=2)
    method = ShadowsocksMethod(testbed)
    testbed.run_process(method.setup())

    def attach_and_load(sim, host):
        connector = yield from method.attach_client(host)
        from repro.http import Browser
        browser = Browser(sim, connector)
        result = yield sim.process(browser.load(testbed.scholar_page))
        return result

    for host in testbed.extra_clients:
        result = testbed.run_process(attach_and_load(testbed.sim, host))
        assert result.succeeded, result.error


def test_active_probing_kills_shadowsocks_but_not_web():
    """The ablation the paper's related work warns about: probing."""
    from repro.gfw import GfwConfig
    testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                           active_probing=True))
    method = ShadowsocksMethod(testbed)
    testbed.run_process(method.setup())
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    testbed.sim.run(until=testbed.sim.now + 120)  # probe delay + verdict
    from repro.net import IPv4Address
    assert testbed.policy.ip_blocked(IPv4Address(str(testbed.remote_vm.address)))
    # Subsequent loads through the blocked server fail.
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert not result.succeeded
