"""Tests for kernel support modules: RNG streams, trace log, units."""

import pytest

from repro import units
from repro.sim import Counter, Gauge, RngRegistry, Simulator, TraceLog


# -- RNG registry ---------------------------------------------------------------

def test_streams_are_deterministic_per_seed():
    a = RngRegistry(1).stream("gfw")
    b = RngRegistry(1).stream("gfw")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_by_name():
    registry = RngRegistry(1)
    gfw = [registry.stream("gfw").random() for _ in range(5)]
    registry2 = RngRegistry(1)
    registry2.stream("other").random()  # interleave another stream
    gfw2 = [registry2.stream("gfw").random() for _ in range(5)]
    assert gfw == gfw2


def test_stream_identity_is_cached():
    registry = RngRegistry(0)
    assert registry.stream("x") is registry.stream("x")


def test_fork_derives_different_streams():
    parent = RngRegistry(3)
    child = parent.fork("client-1")
    assert parent.stream("a").random() != child.stream("a").random()


def test_reset_reseeds():
    registry = RngRegistry(5)
    first = registry.stream("s").random()
    registry.reset()
    assert registry.stream("s").random() == first


# -- trace log ---------------------------------------------------------------------

def test_trace_records_and_selects():
    sim = Simulator()
    trace = TraceLog(sim)
    trace.emit("link.drop", link="border", reason="gfw")
    sim.timeout(5.0)
    sim.run()
    trace.emit("link.drop", link="campus", reason="noise")
    drops = trace.select("link.drop", link="border")
    assert len(drops) == 1
    assert drops[0]["reason"] == "gfw"
    assert drops[0].time == 0.0


def test_trace_subscribers_fire():
    sim = Simulator()
    trace = TraceLog(sim)
    seen = []
    trace.subscribe(lambda record: seen.append(record.category))
    trace.emit("a")
    trace.emit("b")
    assert seen == ["a", "b"]


def test_trace_clear_keeps_subscribers():
    sim = Simulator()
    trace = TraceLog(sim)
    seen = []
    trace.subscribe(lambda record: seen.append(1))
    trace.emit("x")
    trace.clear()
    assert trace.records == []
    trace.emit("y")
    assert len(seen) == 2


def test_counter_and_gauge():
    counter = Counter("packets")
    counter.add()
    counter.add(2)
    assert counter.value == 3
    gauge = Gauge("queue")
    for value in (3.0, 1.0, 7.0):
        gauge.set(value)
    assert gauge.value == 7.0
    assert gauge.minimum == 1.0 and gauge.maximum == 7.0
    assert gauge.samples == 3


# -- units ------------------------------------------------------------------------------

def test_time_units():
    assert units.ms(330) == pytest.approx(0.330)
    assert units.us(250) == pytest.approx(0.00025)
    assert units.minutes(2) == 120
    assert units.hours(1) == 3600
    assert units.to_ms(0.33) == pytest.approx(330)


def test_size_units():
    assert units.KB(19) == 19_000
    assert units.MB(1.5) == 1_500_000
    assert units.MiB(2) == 2 * 1024 * 1024
    assert units.to_KB(52_024) == pytest.approx(52.024)


def test_bandwidth_units():
    assert units.Mbps(100) == pytest.approx(12_500_000)  # bytes/second
    assert units.Kbps(8) == pytest.approx(1000)
