"""Seeded bug fixture: the close-on-error bug PR 2 fixed, reverted.

``open_stream`` dials a fresh connection, then drives the auth
exchange and sends the connect frame with no ``try``/``close`` around
them — if auth fails (or the transport resets), the dialed connection
is stranded.  ``leak-on-error-path`` must flag it.

This file is analysis input only; nothing imports or executes it.
"""

from repro.errors import TransportError


class SeededSsClient:
    def __init__(self, sim, transport):
        self.sim = sim
        self.transport = transport

    def open_stream(self, host, port):
        conn = yield self.transport.connect_tcp(host, port, timeout=30.0)
        yield from self._auth_on(conn)
        conn.send_message(12, meta=("ss-connect", host, port))
        return conn

    def _auth_on(self, conn):
        conn.send_message(36, meta=("ss-auth", "tunnel-password"))
        reply = yield conn.recv_message()
        if reply is None:
            raise TransportError("auth channel closed before reply")
