"""Seeded bug fixture: the admission-slot leak PR 3 fixed, reverted.

The domestic proxy acquires an admission slot, then dials upstream and
acks the client — but only releases the slot at the end of the happy
path.  Any exception between ``try_acquire`` and ``release`` bleeds
one slot of capacity forever.  ``leak-on-error-path`` must flag it.

This file is analysis input only; nothing imports or executes it.
"""


class SeededDomesticProxy:
    def __init__(self, sim, transport, admission):
        self.sim = sim
        self.transport = transport
        self.admission = admission

    def _serve(self, conn):
        if not self.admission.try_acquire():
            conn.close()
            return
        remote = yield self.transport.connect_tcp(
            "upstream.scholarcloud.internal", 443, timeout=10.0)
        conn.send_message(64, meta=("sc-connect", "scholar.google.com", 443))
        self.sim.process(self._pump(conn, remote), name="seeded-pump")
        self.admission.release()

    def _pump(self, conn, remote):
        while True:
            message = yield conn.recv_message()
            if message is None:
                remote.close()
                return
            remote.send_message(64, meta=message)
