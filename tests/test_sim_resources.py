"""Unit tests for Resource, Store, and ProcessorSharingServer."""

import pytest

from repro.errors import SimulationError
from repro.sim import ProcessorSharingServer, Resource, Simulator, Store


# -- Resource ---------------------------------------------------------------

def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, tag, hold):
        yield res.acquire()
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(worker(sim, "a", 2.0))
    sim.process(worker(sim, "b", 1.0))
    sim.run()
    assert order == [("a", 0.0), ("b", 2.0)]


def test_resource_parallel_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def worker(sim, tag):
        yield res.acquire()
        starts.append((tag, sim.now))
        yield sim.timeout(1.0)
        res.release()

    for tag in "abc":
        sim.process(worker(sim, tag))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_without_acquire():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim):
        yield res.acquire()
        yield sim.timeout(5.0)
        res.release()

    def waiter(sim):
        yield res.acquire()
        res.release()

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run(until=1.0)
    assert res.in_use == 1
    assert res.queue_length == 1
    sim.run()
    assert res.in_use == 0


# -- Store --------------------------------------------------------------------

def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim):
        item = yield store.get()
        return (item, sim.now)

    proc = sim.process(consumer(sim))
    sim.schedule(3.0, lambda: store.put("pkt"))
    assert sim.run(until=proc) == ("pkt", 3.0)


def test_store_preserves_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    got = []

    def consumer(sim):
        for _ in range(2):
            item = yield store.get()
            got.append(item)

    sim.run(until=sim.process(consumer(sim)))
    assert got == [1, 2]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put("x")
    assert len(store) == 1


# -- ProcessorSharingServer ----------------------------------------------------

def test_ps_single_job_runs_at_full_rate():
    sim = Simulator()
    cpu = ProcessorSharingServer(sim, capacity=2.0)

    def body(sim):
        yield cpu.submit(4.0)
        return sim.now

    assert sim.run(until=sim.process(body(sim))) == pytest.approx(2.0)


def test_ps_two_jobs_share_equally():
    sim = Simulator()
    cpu = ProcessorSharingServer(sim, capacity=1.0)
    finish = {}

    def body(sim, tag, demand):
        yield cpu.submit(demand)
        finish[tag] = sim.now

    sim.process(body(sim, "a", 1.0))
    sim.process(body(sim, "b", 1.0))
    sim.run()
    # Two equal jobs at capacity 1 each see rate 1/2 -> both finish at 2.
    assert finish["a"] == pytest.approx(2.0)
    assert finish["b"] == pytest.approx(2.0)


def test_ps_late_arrival_slows_first_job():
    sim = Simulator()
    cpu = ProcessorSharingServer(sim, capacity=1.0)
    finish = {}

    def first(sim):
        yield cpu.submit(2.0)
        finish["first"] = sim.now

    def second(sim):
        yield sim.timeout(1.0)
        yield cpu.submit(0.5)
        finish["second"] = sim.now

    sim.process(first(sim))
    sim.process(second(sim))
    sim.run()
    # First runs alone for 1s (1 unit done). Then sharing at rate 1/2:
    # second (0.5 demand) finishes after 1s more at t=2; first's remaining
    # 1.0 - 0.5 = 0.5 then runs alone, finishing at 2.5.
    assert finish["second"] == pytest.approx(2.0)
    assert finish["first"] == pytest.approx(2.5)


def test_ps_zero_demand_completes_immediately():
    sim = Simulator()
    cpu = ProcessorSharingServer(sim)

    def body(sim):
        yield cpu.submit(0.0)
        return sim.now

    assert sim.run(until=sim.process(body(sim))) == 0.0


def test_ps_negative_demand_rejected():
    sim = Simulator()
    cpu = ProcessorSharingServer(sim)
    with pytest.raises(SimulationError):
        cpu.submit(-1.0)


def test_ps_utilization_accounting():
    sim = Simulator()
    cpu = ProcessorSharingServer(sim, capacity=1.0)

    def body(sim):
        yield cpu.submit(2.0)
        yield sim.timeout(2.0)  # idle period

    sim.run(until=sim.process(body(sim)))
    assert cpu.utilization(horizon=4.0) == pytest.approx(0.5)


def test_ps_response_time_grows_with_load():
    """Mean response time must increase monotonically with concurrency —
    the mechanism behind the paper's Figure 7."""
    def mean_response(n_jobs):
        sim = Simulator()
        cpu = ProcessorSharingServer(sim, capacity=10.0)
        finish = []

        def body(sim):
            yield cpu.submit(1.0)
            finish.append(sim.now)

        for _ in range(n_jobs):
            sim.process(body(sim))
        sim.run()
        return sum(finish) / len(finish)

    r1, r4, r16 = mean_response(1), mean_response(4), mean_response(16)
    assert r1 < r4 < r16
