"""Unit tests for IPv4 addresses, prefixes, and allocation."""

import pytest

from repro.errors import AddressError
from repro.net import AddressAllocator, IPv4Address, Prefix


def test_parse_and_str_roundtrip():
    assert str(IPv4Address("203.0.113.7")) == "203.0.113.7"


def test_int_roundtrip():
    addr = IPv4Address("10.0.0.1")
    assert IPv4Address(int(addr)) == addr


def test_equality_with_string():
    assert IPv4Address("1.2.3.4") == "1.2.3.4"
    assert IPv4Address("1.2.3.4") != "1.2.3.5"


def test_hashable_and_ordered():
    a, b = IPv4Address("1.0.0.1"), IPv4Address("1.0.0.2")
    assert a < b
    assert len({a, b, IPv4Address("1.0.0.1")}) == 2


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
def test_malformed_addresses_rejected(bad):
    with pytest.raises(AddressError):
        IPv4Address(bad)


def test_address_out_of_range_int():
    with pytest.raises(AddressError):
        IPv4Address(2**32)


def test_prefix_membership():
    pfx = Prefix("203.0.113.0/24")
    assert "203.0.113.200" in pfx
    assert "203.0.114.1" not in pfx


def test_prefix_normalizes_network():
    assert str(Prefix("203.0.113.99/24")) == "203.0.113.0/24"


def test_prefix_zero_length_matches_everything():
    assert "8.8.8.8" in Prefix("0.0.0.0/0")


@pytest.mark.parametrize("bad", ["1.2.3.4", "1.2.3.4/33", "1.2.3.4/x"])
def test_malformed_prefixes_rejected(bad):
    with pytest.raises(AddressError):
        Prefix(bad)


def test_allocator_sequential_and_in_prefix():
    alloc = AddressAllocator("10.1.0.0/16")
    first = alloc.allocate()
    second = alloc.allocate()
    assert first != second
    assert first in alloc.prefix and second in alloc.prefix


def test_allocator_exhaustion():
    alloc = AddressAllocator("10.0.0.0/30")  # 4 addresses, 2 usable
    alloc.allocate()
    alloc.allocate()
    with pytest.raises(AddressError):
        alloc.allocate()
