"""The headline orderings must hold across random seeds, not just seed 0."""

import pytest

from repro.measure.scenarios import run_plt_experiment


@pytest.mark.parametrize("seed", [11, 23, 37])
def test_plt_ordering_is_seed_robust(seed):
    vpn = run_plt_experiment("native-vpn", samples=4, seed=seed)
    sc = run_plt_experiment("scholarcloud", samples=4, seed=seed)
    ss = run_plt_experiment("shadowsocks", samples=4, seed=seed)
    # Shadowsocks is always the slowest steady state; ScholarCloud
    # always within striking distance of native VPN.
    assert ss.subsequent.mean > vpn.subsequent.mean * 1.7
    assert sc.subsequent.mean < vpn.subsequent.mean * 1.3


def test_determinism_same_seed_same_trace():
    a = run_plt_experiment("scholarcloud", samples=3, seed=99)
    b = run_plt_experiment("scholarcloud", samples=3, seed=99)
    assert a.first_time == b.first_time
    assert a.subsequent.mean == b.subsequent.mean
