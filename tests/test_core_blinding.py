"""Tests for blinding codecs, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AffineCodec,
    BlindingAgility,
    ByteMapCodec,
    ChainedCodec,
    PaddedCodec,
    default_codec,
)
from repro.crypto import shannon_entropy
from repro.errors import BlindingError

BYTES = st.binary(min_size=0, max_size=2048)


# -- byte map -------------------------------------------------------------------

def test_byte_map_is_a_permutation():
    codec = ByteMapCodec(b"secret")
    mapped = codec.encode(bytes(range(256)))
    assert sorted(mapped) == list(range(256))


def test_byte_map_requires_secret():
    with pytest.raises(BlindingError):
        ByteMapCodec(b"")


def test_byte_map_different_secrets_differ():
    a = ByteMapCodec(b"one").encode(b"hello world")
    b = ByteMapCodec(b"two").encode(b"hello world")
    assert a != b


@given(BYTES)
def test_byte_map_roundtrip(data):
    codec = ByteMapCodec(b"roundtrip")
    assert codec.decode(codec.encode(data)) == data


# -- affine ----------------------------------------------------------------------

@given(BYTES, st.integers(1, 255).filter(lambda n: n % 2 == 1),
       st.integers(0, 255))
@settings(max_examples=50)
def test_affine_roundtrip(data, multiplier, offset):
    codec = AffineCodec(multiplier, offset)
    assert codec.decode(codec.encode(data)) == data


def test_affine_rejects_even_multiplier():
    with pytest.raises(BlindingError):
        AffineCodec(2, 5)


def test_affine_positional_term_breaks_repetition():
    """Equal input bytes encode differently at different offsets."""
    codec = AffineCodec(7, 3)
    encoded = codec.encode(b"\x41" * 64)
    assert len(set(encoded)) > 16


# -- chained & padded ------------------------------------------------------------------

@given(BYTES)
@settings(max_examples=50)
def test_chained_roundtrip(data):
    codec = ChainedCodec([ByteMapCodec(b"a"), AffineCodec(5, 9),
                          ByteMapCodec(b"b")])
    assert codec.decode(codec.encode(data)) == data


def test_chained_requires_stages():
    with pytest.raises(BlindingError):
        ChainedCodec([])


@given(BYTES)
@settings(max_examples=50)
def test_padded_roundtrip(data):
    codec = PaddedCodec(ByteMapCodec(b"pad"), jitter=16)
    assert codec.decode(codec.encode(data)) == data


def test_padded_destroys_length_signature():
    """Two inputs of equal length may encode to different lengths, and
    encoded length never equals input length."""
    codec = PaddedCodec(ByteMapCodec(b"pad"), jitter=32)
    lengths = {len(codec.encode(bytes([i]) * 38)) for i in range(8)}
    assert all(length > 38 for length in lengths)


def test_padded_rejects_bad_jitter():
    with pytest.raises(BlindingError):
        PaddedCodec(ByteMapCodec(b"x"), jitter=0)


def test_padded_truncated_frame_rejected():
    codec = PaddedCodec(ByteMapCodec(b"x"))
    with pytest.raises(BlindingError):
        codec.decode(codec.encode(b"payload")[:3])


def test_header_codec_is_length_preserving():
    codec = default_codec()
    header = b"\x00\x00\x01\x00"
    encoded = codec.header_codec().encode(header)
    assert len(encoded) == len(header)
    assert codec.header_codec().decode(encoded) == header


# -- observable properties --------------------------------------------------------------

def test_blinded_tls_looks_unclassified():
    codec = default_codec()
    features = codec.features()
    assert features.protocol_tag == "unclassified"
    assert features.sni is None
    assert features.length_signature is None


def test_blinding_ciphertext_stays_high_entropy():
    """Blinding must not *reduce* entropy below ciphertext levels."""
    import os
    codec = default_codec()
    ciphertext = os.urandom(4096)
    assert shannon_entropy(codec.encode(ciphertext)) > 7.5


def test_blinded_text_hides_plaintext():
    codec = default_codec()
    encoded = codec.encode(b"GET / HTTP/1.1\r\nHost: scholar.google.com")
    assert b"scholar" not in encoded
    assert b"HTTP" not in encoded


# -- agility -----------------------------------------------------------------------------

def test_agility_rotation_changes_codec():
    agility = BlindingAgility(b"base")
    before = agility.codec.encode(b"sample-message")
    agility.rotate()
    after = agility.codec.encode(b"sample-message")
    assert agility.epoch == 1
    assert before != after


def test_agility_epochs_are_deterministic():
    a = BlindingAgility(b"base")
    b = BlindingAgility(b"base")
    a.rotate()
    b.rotate()
    assert a.codec.encode(b"x" * 32) == b.codec.encode(b"x" * 32)


def test_stale_epoch_cannot_decode():
    agility = BlindingAgility(b"base")
    old_codec = agility.codec
    message = old_codec.encode(b"hello across epochs")
    agility.rotate()
    with pytest.raises(BlindingError):
        # Either framing fails outright or the payload is garbage.
        decoded = agility.codec.decode(message)
        if decoded != b"hello across epochs":
            raise BlindingError("garbage")
