"""Component-level GFW tests: poisoner details, stats, config switches."""

import pytest

from repro.gfw import (
    BOGUS_ADDRESSES,
    GfwConfig,
    default_china_policy,
)
from repro.measure import Testbed


def test_poisoner_rotates_bogus_addresses():
    testbed = Testbed()
    seen = set()

    def resolve_once(sim, name):
        try:
            address = yield testbed.resolver.resolve(name)
            return str(address)
        except Exception:
            return None

    # Each blocked name gets one forged answer; the bogus pool rotates.
    names = ("a.google.com", "b.google.com", "c.google.com", "d.google.com")
    for name in names:
        testbed.run_process(resolve_once(testbed.sim, name))
    assert testbed.gfw.poisoner.injections >= 4
    # Recover the answers from the stub's cache.
    for name in names:
        entry = testbed.resolver.cached(name)
        if entry and entry.records:
            seen.add(entry.records[0].value)
    assert seen.issubset(set(BOGUS_ADDRESSES))
    assert len(seen) >= 2  # rotation happened


def test_forged_answers_are_marked_for_audit():
    testbed = Testbed()

    def body(sim):
        try:
            yield testbed.resolver.resolve("scholar.google.com")
        except Exception:
            pass

    testbed.run_process(body(testbed.sim))
    entry = testbed.resolver.cached("scholar.google.com")
    assert entry is not None
    # The injected record came from the poisoner's pool.
    assert entry.records[0].value in BOGUS_ADDRESSES


def test_unblocked_names_resolve_truthfully():
    testbed = Testbed()

    def body(sim):
        address = yield testbed.resolver.resolve("www.uscontrol.example")
        return str(address)

    assert testbed.run_process(body(testbed.sim)) == "93.184.216.34"
    assert testbed.gfw.poisoner.injections == 0


def test_dns_poisoning_can_be_disabled():
    config = GfwConfig(inside_name="border-cn", dns_poisoning=False)
    testbed = Testbed(gfw_config=config)

    def body(sim):
        address = yield testbed.resolver.resolve("scholar.google.com")
        return str(address)

    # Without poisoning the genuine answer arrives (though TCP access
    # would still die on the SNI filter).
    assert testbed.run_process(body(testbed.sim)) == "172.217.194.80"


def test_gfw_stats_accumulate():
    testbed = Testbed()
    browser = testbed.browser()
    testbed.run_process(browser.load(testbed.scholar_page))
    stats = testbed.gfw.stats
    assert stats.packets_seen > 0
    assert stats.dns_injections >= 1


def test_policy_interference_knob_is_live():
    """The policy object can be mutated mid-run (GFW evolution)."""
    policy = default_china_policy()
    assert policy.interference_for("tor-meek") == pytest.approx(0.042)
    policy.set_interference("tor-meek", 0.2)
    assert policy.interference_for("tor-meek") == 0.2
    assert policy.interference_for("unknown-label") == 0.0


def test_ip_blocking_switch():
    config = GfwConfig(inside_name="border-cn", ip_blocking=False)
    testbed = Testbed(gfw_config=config)
    testbed.policy.block_ip("172.217.194.80")
    testbed.policy.unblock_domain("google.com")
    browser = testbed.browser()
    result = testbed.run_process(browser.load(testbed.scholar_page))
    # IP blocking disabled: the blocklist entry has no effect.
    assert result.succeeded, result.error
