"""End-to-end tests of the ScholarCloud system against the GFW."""

import pytest

from repro.core import ScholarCloud, evaluate_deployment, UserPopulation
from repro.errors import ConfigurationError, MiddlewareError
from repro.measure import Testbed


def sc_world(**kwargs):
    testbed = Testbed(**kwargs)
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    return testbed, system


def test_scholarcloud_reaches_blocked_scholar():
    testbed, system = sc_world()
    browser = testbed.browser(connector=system.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_connector_requires_deploy():
    with pytest.raises(MiddlewareError):
        ScholarCloud(Testbed()).connector()


def test_blinded_flows_stay_unclassified():
    testbed, system = sc_world()
    browser = testbed.browser(connector=system.connector())
    for _ in range(3):
        testbed.run_process(browser.load(testbed.scholar_page))
        testbed.sim.run(until=testbed.sim.now + 60)
    labeled = testbed.gfw.stats.flows_labeled
    assert "shadowsocks" not in labeled
    assert "tor-meek" not in labeled
    assert testbed.gfw.stats.sni_resets == 0


def test_non_whitelisted_host_refused_by_domestic_proxy():
    testbed, system = sc_world()

    def body(sim):
        connector = system.connector()
        stream = yield from connector.open("www.blocked.example", 443, True)
        return stream

    with pytest.raises(MiddlewareError):
        testbed.run_process(body(testbed.sim))
    assert system.domestic.refused == 1


def test_pac_routing_sends_only_whitelist_through_proxy():
    testbed, system = sc_world()
    browser = testbed.browser()  # direct by default
    system.apply_pac(browser)
    scholar = testbed.run_process(browser.load(testbed.scholar_page))
    control = testbed.run_process(browser.load(testbed.control_page))
    assert scholar.succeeded and control.succeeded
    # The domestic proxy only ever saw whitelisted streams.
    assert system.domestic.streams_served > 0
    assert system.domestic.refused == 0


def test_remote_proxy_survives_active_probing():
    """Blinding's probe resistance: garbage gets an HTTP decoy."""
    from repro.gfw import GfwConfig
    testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                           active_probing=True))
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    browser = testbed.browser(connector=system.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    testbed.sim.run(until=testbed.sim.now + 120)
    from repro.net import IPv4Address
    assert not testbed.policy.ip_blocked(
        IPv4Address(str(testbed.remote_vm.address)))


def test_blinding_rotation_mid_flight_keeps_working():
    """§3: 'we can change our blinding mechanism at any time'."""
    testbed, system = sc_world()
    browser = testbed.browser(connector=system.connector())
    first = testbed.run_process(browser.load(testbed.scholar_page))
    epoch = system.rotate_blinding()
    assert epoch == 1
    testbed.sim.run(until=testbed.sim.now + 60)
    second = testbed.run_process(browser.load(testbed.scholar_page))
    assert first.succeeded and second.succeeded


def test_arms_race_new_classifier_defeated_by_rotation():
    """If the GFW learns the current blinded signature, rotating the
    codec (new padding profile) stales the classifier."""
    from repro.gfw import Classifier

    testbed, system = sc_world()

    class LearnedBlindClassifier(Classifier):
        """A GFW update keying on the epoch-0 padding profile."""
        name = "learned-blinded"

        def __init__(self, learned_jitter):
            self.learned_jitter = learned_jitter

        def classify(self, packet, state, policy):
            features = packet.features
            if (features.protocol_tag == "unclassified"
                    and getattr(packet.payload, "dport", None) == 443):
                # Matches only the learned padding generation.
                if system.agility.codec.jitter == self.learned_jitter:
                    return ("learned-blinded", 0.8)
            return None

    learned = LearnedBlindClassifier(system.agility.codec.jitter)
    testbed.gfw.classifiers.append(learned)
    testbed.policy.set_interference("learned-blinded", 0.30)

    browser = testbed.browser(connector=system.connector())
    slow = testbed.run_process(browser.load(testbed.scholar_page))
    system.rotate_blinding()  # operator response: new epoch
    testbed.sim.run(until=testbed.sim.now + 60)
    fast = testbed.run_process(browser.load(testbed.scholar_page))
    assert fast.succeeded
    # After rotation the classifier no longer matches, so no (new)
    # interference applies.
    assert fast.plt < max(slow.plt, 5.0)


def test_icp_registration_through_policy_stack():
    from repro.policy import RegulatoryEnvironment
    testbed, system = sc_world()
    environment = RegulatoryEnvironment(testbed.sim)
    number = system.register_icp(environment.registry)
    assert number.startswith("ICP-")
    registration = environment.registry.lookup(number)
    assert "scholar.google.com" in registration.whitelist
    # Approval lands after the review period.
    testbed.sim.run(until=testbed.sim.now + 40 * 86400)
    assert environment.registry.is_registered("scholar.thucloud.com")


# -- deployment economics ---------------------------------------------------------------

def test_deployment_matches_paper_cost():
    report = evaluate_deployment()
    assert report.daily_cost_usd == pytest.approx(2.2)
    assert report.sustainable
    assert report.cost_per_daily_user_usd < 0.01  # ~0.3 cents/user/day


def test_deployment_detects_overload():
    heavy = UserPopulation(registered=100_000, daily_active=50_000,
                           loads_per_user=40)
    report = evaluate_deployment(population=heavy)
    assert not report.sustainable


def test_deployment_validation():
    with pytest.raises(ConfigurationError):
        evaluate_deployment(vms=())
    with pytest.raises(ConfigurationError):
        evaluate_deployment(population=UserPopulation(daily_active=0))
