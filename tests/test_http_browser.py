"""Integration tests: browser + origin server over the simulated stack."""

import pytest

from repro.dns import AuthoritativeServer, RecursiveResolver, StubResolver, Zone
from repro.http import (
    Browser,
    DirectConnector,
    WebServer,
    google_scholar_home,
    plain_site_page,
)
from repro.net import Network, PacketCapture
from repro.sim import Simulator
from repro.transport import install_transport
from repro.units import Mbps, ms


class World:
    """Client in Beijing, origin in the US, campus DNS in between."""

    def __init__(self, rtt_one_way=ms(95)):
        self.sim = Simulator()
        self.net = Network(self.sim)
        self.client = self.net.add_host("client", address="59.66.1.10")
        self.campus = self.net.add_router("campus", address="59.66.1.1")
        self.dns_host = self.net.add_host("campus-dns", address="59.66.1.53")
        self.origin = self.net.add_host("origin", address="172.217.194.80")
        self.origin_dns = self.net.add_host("google-dns", address="172.217.194.53")
        self.net.connect(self.client, self.campus, latency=ms(1), bandwidth=Mbps(100))
        self.net.connect(self.dns_host, self.campus, latency=ms(1), bandwidth=Mbps(100))
        self.border_link = self.net.connect(
            self.campus, self.origin, latency=rtt_one_way, bandwidth=Mbps(100))
        self.net.connect(self.campus, self.origin_dns,
                         latency=rtt_one_way, bandwidth=Mbps(100))
        self.net.build_routes()
        for host in (self.client, self.dns_host, self.origin, self.origin_dns):
            install_transport(self.sim, host)

        zone = Zone("google.com")
        zone.add_a("scholar.google.com", "172.217.194.80")
        AuthoritativeServer(self.sim, self.origin_dns, [zone])
        recursive = RecursiveResolver(self.sim, self.dns_host)
        recursive.add_authority("google.com", "172.217.194.53")
        self.resolver = StubResolver(self.sim, self.client, upstream="59.66.1.53")

        self.server = WebServer(self.sim, self.origin)
        self.page = google_scholar_home()
        self.server.add_page(self.page)

        self.connector = DirectConnector(
            self.sim, self.client.transport, self.resolver)
        self.browser = Browser(self.sim, self.connector)

    def load_once(self):
        return self.sim.run(until=self.sim.process(self.browser.load(self.page)))


def test_first_load_succeeds_and_counts_objects():
    world = World()
    result = world.load_once()
    assert result.succeeded, result.error
    assert result.first_visit
    # redirect + document + 3 subresources + 2 beacons (account
    # recording is a dedicated side connection, counted separately).
    assert result.objects_fetched == 7
    assert result.plt > 0


def test_account_recorded_only_on_first_visit():
    world = World()
    world.load_once()
    assert len(world.server.accounts_recorded) == 1
    world.load_once()
    assert len(world.server.accounts_recorded) == 1


def test_subsequent_load_is_faster_and_lighter():
    world = World()
    first = world.load_once()
    world.sim.run(until=world.sim.now + 60.0)
    second = world.load_once()
    assert not second.first_visit
    assert second.plt < first.plt
    assert second.app_bytes < first.app_bytes
    # Cached subresources are skipped: the document plus the two
    # per-view logging beacons are re-fetched.
    assert second.objects_fetched == 3


def test_http_to_https_redirect_on_first_visit():
    world = World()
    capture = PacketCapture(world.sim).attach(
        world.net.link_between("client", "campus"))
    world.load_once()
    # Port 80 connection (TCP 2) plus TLS connections.
    ports = set()
    for flow in capture.tcp_connections():
        if flow[0] == "tcp":
            ports.add(flow[2])
            ports.add(flow[4])
    assert 80 in ports and 443 in ports


def test_connection_pool_is_bounded():
    world = World()
    result = world.load_once()
    # 1 plain + at most 6 TLS pooled + 1 account recording.
    assert result.connections_opened <= 8


def test_clear_caches_restores_first_visit_behaviour():
    world = World()
    world.load_once()
    world.browser.clear_caches()
    result = world.load_once()
    assert result.first_visit
    assert len(world.server.accounts_recorded) == 2


def test_first_load_wire_bytes_near_paper_baseline():
    """The paper's Figure 6a: a direct Scholar visit moves ~19 KB."""
    world = World()
    capture = PacketCapture(world.sim).attach(
        world.net.link_between("client", "campus"))
    result = world.load_once()
    assert result.succeeded
    wire_kb = capture.bytes_total() / 1000
    assert 15.0 <= wire_kb <= 31.0, f"wire bytes {wire_kb:.1f} KB off baseline"


def test_plt_scales_with_rtt():
    slow = World(rtt_one_way=ms(180))
    fast = World(rtt_one_way=ms(40))
    assert fast.load_once().plt < slow.load_once().plt


def test_missing_page_is_a_404_not_a_crash():
    world = World()
    page = plain_site_page("scholar.google.com")
    page.path = "/definitely-missing"

    result = world.sim.run(until=world.sim.process(world.browser.load(page)))
    # 404 still completes the load; the document simply isn't cacheable.
    assert result.succeeded
