"""Tests for zones, authoritative servers, and resolvers."""

import pytest

from repro.dns import (
    AuthoritativeServer,
    DnsQuery,
    DnsResponse,
    RecursiveResolver,
    StubResolver,
    Zone,
)
from repro.errors import NameResolutionError
from repro.net import Network
from repro.sim import Simulator
from repro.transport import install_transport
from repro.units import Mbps, ms


def test_zone_lookup_and_cname_chain():
    zone = Zone("google.com")
    zone.add_cname("scholar.google.com", "www.google.com")
    zone.add_a("www.google.com", "172.217.0.1")
    records = zone.lookup("scholar.google.com")
    types = {r.rtype for r in records}
    assert types == {"CNAME", "A"}
    a = [r for r in records if r.rtype == "A"][0]
    assert str(a.address()) == "172.217.0.1"


def test_zone_covers():
    zone = Zone("google.com")
    assert zone.covers("scholar.google.com")
    assert zone.covers("google.com")
    assert not zone.covers("notgoogle.com")


def test_a_record_address_rejects_cname():
    zone = Zone("x.com")
    record = zone.add_cname("a.x.com", "b.x.com")
    from repro.errors import DnsError
    with pytest.raises(DnsError):
        record.address()


def build_dns_world():
    """client -- resolver -- authority, all on fast links."""
    sim = Simulator()
    net = Network(sim)
    client = net.add_host("client", address="10.0.0.1")
    resolver_host = net.add_host("resolver", address="10.0.0.53")
    authority_host = net.add_host("authority", address="203.0.113.53")
    net.connect(client, resolver_host, latency=ms(2), bandwidth=Mbps(100))
    net.connect(resolver_host, authority_host, latency=ms(80), bandwidth=Mbps(100))
    net.build_routes()
    for host in (client, resolver_host, authority_host):
        install_transport(sim, host)
    zone = Zone("google.com")
    zone.add_a("scholar.google.com", "203.0.113.80", ttl=300)
    AuthoritativeServer(sim, authority_host, [zone])
    recursive = RecursiveResolver(sim, resolver_host)
    recursive.add_authority("google.com", "203.0.113.53")
    stub = StubResolver(sim, client, upstream="10.0.0.53")
    return sim, stub, recursive


def test_end_to_end_resolution():
    sim, stub, _recursive = build_dns_world()

    def body(sim):
        address = yield stub.resolve("scholar.google.com")
        return str(address)

    assert sim.run(until=sim.process(body(sim))) == "203.0.113.80"


def test_stub_cache_hit_is_instant():
    sim, stub, _recursive = build_dns_world()

    def body(sim):
        yield stub.resolve("scholar.google.com")
        first_done = sim.now
        yield stub.resolve("scholar.google.com")
        return (first_done, sim.now)

    first_done, second_done = sim.run(until=sim.process(body(sim)))
    assert second_done == first_done  # cache answer takes zero time
    assert stub.cache_hits == 1


def test_cache_expires_after_ttl():
    sim, stub, recursive = build_dns_world()

    def body(sim):
        yield stub.resolve("scholar.google.com")
        yield sim.timeout(400)  # past the 300s TTL
        yield stub.resolve("scholar.google.com")
        return stub.queries_sent

    assert sim.run(until=sim.process(body(sim))) == 2


def test_nxdomain():
    sim, stub, _recursive = build_dns_world()

    def body(sim):
        yield stub.resolve("no-such-host.google.com")

    with pytest.raises(NameResolutionError):
        sim.run(until=sim.process(body(sim)))


def test_unknown_suffix_nxdomain():
    sim, stub, _recursive = build_dns_world()

    def body(sim):
        yield stub.resolve("example.org")

    with pytest.raises(NameResolutionError):
        sim.run(until=sim.process(body(sim)))


def test_resolution_timeout_with_dead_authority():
    """If every query is eaten, the stub retries then fails."""
    from repro.net import Verdict
    from repro.net.middlebox import Middlebox

    sim = Simulator()
    from repro.net import Network
    net = Network(sim)
    client = net.add_host("client", address="10.0.0.1")
    resolver_host = net.add_host("resolver", address="10.0.0.53")
    link = net.connect(client, resolver_host, latency=ms(2), bandwidth=Mbps(100))
    net.build_routes()
    install_transport(sim, client)
    install_transport(sim, resolver_host)

    class EatDns(Middlebox):
        name = "eat-dns"

        def process(self, packet, direction, link):
            return Verdict.DROP if packet.protocol == "udp" else Verdict.PASS

    link.add_middlebox(EatDns())
    stub = StubResolver(sim, client, upstream="10.0.0.53")

    def body(sim):
        yield stub.resolve("scholar.google.com")

    with pytest.raises(NameResolutionError):
        sim.run(until=sim.process(body(sim)))
    assert stub.queries_sent == 3  # the full retry schedule


def test_first_response_wins_poisoning_vulnerability():
    """A forged answer injected ahead of the real one is accepted."""
    sim, stub, _recursive = build_dns_world()

    # Deliver a forged response directly to the stub's pending query by
    # sniffing the query id off the wire — emulating an on-path racer.
    from repro.net.middlebox import Middlebox
    from repro.net import Verdict, Packet

    class Racer(Middlebox):
        name = "racer"

        def process(self, packet, direction, link):
            payload = packet.payload
            query = getattr(payload, "payload", None)
            if isinstance(query, DnsQuery) and direction.sender == "client":
                from repro.dns.records import DnsRecord
                forged = DnsResponse(
                    query.query_id, query.name,
                    (DnsRecord(query.name, "A", "8.8.8.8", 300),),
                    forged=True)
                from repro.transport.sockets import Datagram
                reply = Packet(
                    src=packet.dst, dst=packet.src, protocol="udp",
                    payload=Datagram(53, query.query_id and payload.sport,
                                     forged, 90),
                    size=118)
                link.inject(reply, toward=link.a if link.a.name == "client" else link.b)
            return Verdict.PASS

    # Attach to the client-resolver link.
    client_link = [l for l in stub.host.links][0]
    client_link.add_middlebox(Racer())

    def body(sim):
        address = yield stub.resolve("scholar.google.com")
        return str(address)

    assert sim.run(until=sim.process(body(sim))) == "8.8.8.8"
