"""The paper's headline claims, encoded as fast integration checks.

These are trimmed versions of the benchmark reproductions — enough
samples to verify direction, not magnitude (the benches do that).
"""

import pytest

from repro.core import ScholarCloud
from repro.measure import Testbed
from repro.measure.scenarios import (
    run_plr_experiment,
    run_plt_experiment,
    run_rtt_experiment,
)


@pytest.fixture(scope="module")
def quick_plt():
    return {name: run_plt_experiment(name, samples=4)
            for name in ("native-vpn", "tor", "shadowsocks", "scholarcloud")}


def test_claim_scholar_is_collateral_damage():
    """§1: Google Scholar is blocked only because it lives under
    google.com — unblocking the domain restores access with no other
    change."""
    testbed = Testbed()
    blocked = testbed.run_process(testbed.browser().load(testbed.scholar_page))
    assert not blocked.succeeded

    relaxed = Testbed()
    relaxed.policy.unblock_domain("google.com")
    restored = relaxed.run_process(relaxed.browser().load(relaxed.scholar_page))
    assert restored.succeeded


def test_claim_bilateral_inconsistency():
    """§2: the GFW blocks Scholar even though the regulators consider
    it legal — nothing in the policy stack lists it as illegal."""
    from repro.policy import RegulatoryEnvironment, ServiceListing
    testbed = Testbed()
    # Technical side: blocked.
    assert testbed.policy.domain_blocked("scholar.google.com")
    # Regulatory side: an investigation of a *registered* service
    # carrying Scholar traffic finds nothing actionable.
    environment = RegulatoryEnvironment(testbed.sim, review_days=1,
                                        investigation_days=1)
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    system.register_icp(environment.registry)
    environment.security.observe_service(ServiceListing(
        "ScholarCloud", "scholar.thucloud.com", "proxy"))
    cases = environment.security.sweep()
    testbed.sim.run(until=testbed.sim.now + 10 * 86400)
    assert cases[0].outcome == "no-action"


def test_claim_tor_first_time_plt_ratio(quick_plt):
    """§4.3: Tor's first-time PLT is ~5.4x its normal PLT."""
    tor = quick_plt["tor"]
    ratio = tor.first_time / tor.subsequent.mean
    assert ratio > 3.0


def test_claim_shadowsocks_slowest_subsequent(quick_plt):
    assert quick_plt["shadowsocks"].subsequent.mean == max(
        r.subsequent.mean for r in quick_plt.values())


def test_claim_scholarcloud_matches_vpn(quick_plt):
    sc = quick_plt["scholarcloud"].subsequent.mean
    vpn = quick_plt["native-vpn"].subsequent.mean
    assert sc / vpn < 1.25


def test_claim_tor_censored_shadowsocks_vulnerable_vpn_robust():
    """§4.3's PLR ordering: Tor >> Shadowsocks > VPN-class."""
    tor = run_plr_experiment("tor", loads=8)
    ss = run_plr_experiment("shadowsocks", loads=12)
    vpn = run_plr_experiment("native-vpn", loads=8)
    assert tor.rate > 0.015
    assert tor.rate > ss.rate > 0
    assert vpn.rate < 0.008


def test_claim_rtt_correlates_with_first_time_plt(quick_plt):
    """§4.3: RTT has stronger correlation with first-time PLT."""
    tor_rtt = run_rtt_experiment("tor", probes=5).mean
    vpn_rtt = run_rtt_experiment("native-vpn", probes=5).mean
    assert tor_rtt > vpn_rtt
    assert quick_plt["tor"].first_time > quick_plt["native-vpn"].first_time


def test_claim_users_need_zero_software():
    """§3: ScholarCloud requires no client software — the browser plus
    one PAC route is the entire client footprint."""
    testbed = Testbed()
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    assert not system.requires_client_software
    browser = testbed.browser()          # a plain browser...
    system.apply_pac(browser)            # ...plus one setting
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded


def test_claim_whitelist_visibility_for_regulators():
    """§3: agencies can inspect the whitelist and demand removals that
    take effect immediately."""
    testbed = Testbed()
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    assert "scholar.google.com" in system.whitelist.domains()
    system.whitelist.remove("scholar.google.com", now=testbed.sim.now)

    def attempt(sim):
        connector = system.connector()
        stream = yield from connector.open("scholar.google.com", 443, True)
        return stream

    from repro.errors import MiddlewareError
    with pytest.raises(MiddlewareError):
        testbed.run_process(attempt(testbed.sim))
