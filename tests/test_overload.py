"""repro.overload: bounded queues, admission control, deadlines, shedding.

Three tiers of coverage:

* unit — the queueing primitives and policies in isolation (capacity,
  rejection, priority-aware eviction, wait-timer shedding, AIMD bounds);
* integration — the proxies under a tiny cap: sheds are fast and
  explicit, released sessions free capacity, sticky sources survive;
* composition — the ``overload_storm`` script drives a flash crowd into
  the proxy while the remote VM crashes: the excess is shed, the
  failover breaker opens and recovers, and the client's sessions come
  back once the storm passes.  Seed-robustness is asserted on the full
  admit/shed decision log.
"""

import pytest

from repro.core.whitelist import scholar_whitelist
from repro.errors import ConfigurationError, OverloadError, SimulationError
from repro.faults import RetryPolicy, overload_storm
from repro.http import Browser
from repro.measure import Testbed, availability
from repro.measure.scenarios import prepare, run_overload_point
from repro.overload import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    AdmissionController,
    AimdPolicy,
    BoundedQueue,
    ConcurrencyLimiter,
    Deadline,
    OverloadConfig,
    QueueDelayPolicy,
    StaticCapPolicy,
)
from repro.sim import RngRegistry, Simulator


# -- bounded queue -----------------------------------------------------------------


class TestBoundedQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            BoundedQueue(Simulator(seed=0), capacity=0)

    def test_offer_rejects_when_full(self):
        queue = BoundedQueue(Simulator(seed=0), capacity=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert (queue.offered, queue.accepted, queue.rejected) == (3, 2, 1)
        assert queue.full and len(queue) == 2

    def test_put_raises_overload_error_when_full(self):
        queue = BoundedQueue(Simulator(seed=0), capacity=1)
        queue.put("a")
        with pytest.raises(OverloadError):
            queue.put("b")

    def test_get_records_sojourn_time(self):
        sim = Simulator(seed=0)
        queue = BoundedQueue(sim, capacity=4)
        queue.put("a")
        sim.schedule(2.5, lambda: None)
        sim.run(until=2.5)
        event = queue.get()
        assert event.triggered and event.value == "a"
        assert queue.delays == [2.5]

    def test_offer_hands_straight_to_a_blocked_getter(self):
        sim = Simulator(seed=0)
        queue = BoundedQueue(sim, capacity=1)
        event = queue.get()
        assert not event.triggered
        assert queue.offer("a")
        assert event.triggered and event.value == "a"
        assert queue.delays == [0.0]  # never sat in the queue


# -- concurrency limiter -----------------------------------------------------------


class TestConcurrencyLimiter:
    def test_try_acquire_never_queues(self):
        limiter = ConcurrencyLimiter(Simulator(seed=0), capacity=1)
        assert limiter.try_acquire()
        assert not limiter.try_acquire()
        assert (limiter.admitted, limiter.rejected) == (1, 1)

    def test_acquire_without_waiting_room_fails_fast(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=0)
        first = limiter.acquire()
        assert first.triggered and first.value == 0.0
        second = limiter.acquire()
        assert second.triggered and not second.ok
        assert isinstance(second.value, OverloadError)

    def test_release_grants_to_waiter_and_records_delay(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=2,
                                     max_wait=60.0)
        limiter.acquire()
        waiting = limiter.acquire()
        sim.schedule(1.5, limiter.release)
        sim.run(until=1.5)
        assert waiting.triggered and waiting.value == 1.5
        assert limiter.queue_delays == [0.0, 1.5]
        assert limiter.in_use == 1  # the slot changed hands, not count

    def test_grant_order_is_priority_then_arrival(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=3,
                                     max_wait=60.0)
        limiter.acquire()
        bulk = limiter.acquire(priority=PRIORITY_BULK)
        interactive = limiter.acquire(priority=PRIORITY_INTERACTIVE)
        limiter.release()
        assert interactive.triggered and not bulk.triggered

    def test_full_room_evicts_the_worst_for_a_better_newcomer(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=1,
                                     max_wait=60.0)
        limiter.acquire()
        bulk = limiter.acquire(priority=PRIORITY_BULK)
        interactive = limiter.acquire(priority=PRIORITY_INTERACTIVE)
        assert bulk.triggered and not bulk.ok  # evicted
        assert isinstance(bulk.value, OverloadError)
        assert not interactive.triggered  # queued in the freed spot
        assert limiter.evicted == 1

    def test_equal_priority_newcomer_is_rejected_not_swapped(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=1,
                                     max_wait=60.0)
        limiter.acquire()
        first = limiter.acquire(priority=PRIORITY_BULK)
        second = limiter.acquire(priority=PRIORITY_BULK)
        assert not first.triggered  # the incumbent keeps its place
        assert second.triggered and not second.ok
        assert isinstance(second.value, OverloadError)

    def test_waiter_is_shed_after_max_wait(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=2,
                                     max_wait=2.0)
        limiter.acquire()
        waiting = limiter.acquire()
        sim.run(until=2.0)
        assert waiting.triggered and not waiting.ok
        assert isinstance(waiting.value, OverloadError)
        assert limiter.timed_out == 1

    def test_expired_deadline_is_skipped_at_grant_time(self):
        sim = Simulator(seed=0)
        limiter = ConcurrencyLimiter(sim, capacity=1, max_waiting=2,
                                     max_wait=60.0)
        limiter.acquire()
        doomed = limiter.acquire(deadline=1.0)
        patient = limiter.acquire(deadline=100.0)
        sim.schedule(5.0, limiter.release)
        sim.run(until=5.0)
        assert doomed.triggered and not doomed.ok
        assert isinstance(doomed.value, OverloadError)
        assert patient.triggered and patient.value == 5.0
        assert limiter.deadline_drops == 1

    def test_release_without_acquire_raises(self):
        with pytest.raises(SimulationError):
            ConcurrencyLimiter(Simulator(seed=0), capacity=1).release()


# -- config validation and policies ------------------------------------------------


class TestOverloadConfig:
    def test_defaults_are_valid(self):
        config = OverloadConfig()
        assert isinstance(config.make_policy(), StaticCapPolicy)

    @pytest.mark.parametrize("kwargs", [
        {"max_sessions": 0},
        {"max_waiting": -1},
        {"max_waiting": 8},  # waiting room without a delay threshold
        {"queue_delay_threshold": 0.0},
        {"policy": "psychic"},
        {"bulk_share": 0.0},
        {"bulk_share": 1.5},
        {"policy": "aimd", "aimd_min": 0},
        {"policy": "aimd", "max_sessions": 4, "aimd_min": 8},
        {"policy": "aimd", "aimd_decrease": 1.0},
        {"policy": "aimd", "aimd_increase": 0.0},
    ])
    def test_bad_knobs_raise_configuration_error(self, kwargs):
        with pytest.raises(ConfigurationError):
            OverloadConfig(**kwargs)

    def test_policy_selection(self):
        codel = OverloadConfig(policy="codel", queue_delay_threshold=1.0)
        aimd = OverloadConfig(policy="aimd")
        assert isinstance(codel.make_policy(), QueueDelayPolicy)
        assert isinstance(aimd.make_policy(), AimdPolicy)


class TestAimdPolicy:
    def test_decrease_floors_and_increase_ceils(self):
        policy = AimdPolicy(ceiling=16, floor=4, increase=1.0, decrease=0.5)
        for _ in range(10):
            policy.on_shed()
        assert policy.limit() == 4
        for _ in range(1000):
            policy.on_success()
        assert policy.limit() == 16

    def test_additive_increase_is_gentle_per_success(self):
        policy = AimdPolicy(ceiling=100, floor=4)
        policy.on_shed()  # 50
        before = policy.limit()
        policy.on_success()
        assert policy.limit() - before <= 1


# -- admission controller ----------------------------------------------------------


def _drive(sim, generator):
    """Run an admission generator to completion, returning its value."""
    outcome = {}

    def wrapper():
        try:
            outcome["value"] = yield from generator
        except OverloadError as exc:
            outcome["error"] = exc

    process = sim.process(wrapper(), name="admit")
    sim.run(until=process)
    return outcome


class TestAdmissionController:
    def _controller(self, sim, **kwargs):
        defaults = dict(max_sessions=2)
        defaults.update(kwargs)
        return AdmissionController(sim, OverloadConfig(**defaults))

    def test_sticky_source_is_always_admitted(self):
        sim = Simulator(seed=0)
        admission = self._controller(sim, max_sessions=1)
        assert _drive(sim, admission.admit("alice"))["value"] == 0.0
        # The cap is full, but alice already holds a session.
        assert _drive(sim, admission.admit("alice"))["value"] == 0.0
        assert [d[2] for d in admission.decisions] == ["admit", "admit-sticky"]
        # A new source is shed at the same occupancy.
        assert "error" in _drive(sim, admission.admit("bob"))
        assert admission.decisions[-1][2] == "shed"

    def test_release_frees_the_slot_for_a_new_source(self):
        sim = Simulator(seed=0)
        admission = self._controller(sim, max_sessions=1)
        _drive(sim, admission.admit("alice"))
        admission.release("alice")
        assert "value" in _drive(sim, admission.admit("bob"))

    def test_sticky_sessions_release_one_by_one(self):
        sim = Simulator(seed=0)
        admission = self._controller(sim, max_sessions=1)
        _drive(sim, admission.admit("alice"))
        _drive(sim, admission.admit("alice"))
        admission.release("alice")
        assert admission.in_use == 1  # still holds the slot
        admission.release("alice")
        assert admission.in_use == 0

    def test_release_without_admit_raises(self):
        admission = self._controller(Simulator(seed=0))
        with pytest.raises(ConfigurationError):
            admission.release("ghost")

    def test_bulk_share_reserves_headroom_for_interactive(self):
        sim = Simulator(seed=0)
        admission = self._controller(sim, max_sessions=4, bulk_share=0.5)
        _drive(sim, admission.admit("a", PRIORITY_INTERACTIVE))
        _drive(sim, admission.admit("b", PRIORITY_INTERACTIVE))
        # Half the cap is occupied: new bulk is shed, interactive is not.
        assert "error" in _drive(sim, admission.admit("c", PRIORITY_BULK))
        assert "value" in _drive(sim, admission.admit("d", PRIORITY_INTERACTIVE))

    def test_record_expired_is_logged_not_shed(self):
        sim = Simulator(seed=0)
        admission = self._controller(sim)
        admission.record_expired("alice", PRIORITY_INTERACTIVE)
        assert admission.deadline_drops == 1
        assert admission.shed == 0
        assert admission.decisions[-1][2] == "expired"

    def test_aimd_shrinks_under_sheds_and_regrows(self):
        sim = Simulator(seed=0)
        admission = self._controller(sim, max_sessions=8, policy="aimd",
                                     aimd_min=2)
        for name in "abcdefgh":
            _drive(sim, admission.admit(name))
        _drive(sim, admission.admit("overflow"))  # shed -> halve
        assert admission.policy.limit() == 4
        for name in "abcdefgh":
            admission.release(name)  # clean completions grow it back
        assert admission.policy.limit() > 4


# -- whitelist priorities (the admission signal) -----------------------------------


class TestWhitelistPriority:
    def test_scholar_is_interactive_and_cdn_is_bulk(self):
        wl = scholar_whitelist()
        assert wl.priority_of("scholar.google.com") == PRIORITY_INTERACTIVE
        assert wl.priority_of("fonts.gstatic.com") == PRIORITY_BULK
        assert wl.priority_of("www.googleapis.com") == PRIORITY_BULK

    def test_unknown_hosts_default_to_bulk(self):
        assert scholar_whitelist().priority_of("evil.example") == PRIORITY_BULK


# -- deadlines ---------------------------------------------------------------------


class TestDeadline:
    def test_remaining_and_expiry(self):
        deadline = Deadline(10.0)
        assert deadline.remaining(4.0) == 6.0
        assert not deadline.expired(9.999)
        assert deadline.expired(10.0)

    def test_clamp_bounds_a_timeout_by_the_budget(self):
        deadline = Deadline(10.0)
        assert deadline.clamp(20.0, now=4.0) == 6.0
        assert deadline.clamp(2.0, now=4.0) == 2.0
        assert deadline.clamp(None, now=4.0) == 6.0
        # An expired deadline still yields a positive (tiny) timeout.
        assert deadline.clamp(5.0, now=11.0) > 0.0


# -- retry budget ------------------------------------------------------------------


class TestRetryBudget:
    def test_budget_stops_the_schedule_early(self):
        clock = [0.0]
        policy = RetryPolicy(attempts=6, base=1.0, multiplier=2.0,
                             cap=8.0, jitter=0.0, budget=2.5)
        delays = []
        for delay in policy.delays(clock=lambda: clock[0]):
            delays.append(delay)
            clock[0] += delay
        # 0.0, then 1.0 (t=1.0); the next nominal 2.0 would land at 3.0
        # past the 2.5 budget, so the iterator stops.
        assert delays == [0.0, 1.0]

    def test_deadline_bounds_like_a_budget(self):
        clock = [0.0]
        policy = RetryPolicy(attempts=6, base=1.0, multiplier=2.0,
                             cap=8.0, jitter=0.0)
        delays = list(policy.delays(clock=lambda: clock[0], deadline=0.5))
        assert delays == [0.0]  # even the first backoff would overrun

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(budget=0.0)

    def test_stopping_early_consumes_no_randomness(self):
        rng = RngRegistry(3).stream("resilience.sc-domestic")
        untouched = RngRegistry(3).stream("resilience.sc-domestic")
        policy = RetryPolicy(attempts=6, base=4.0, jitter=0.25, rng=rng,
                             budget=1.0)
        assert list(policy.delays(clock=lambda: 0.0)) == [0.0]
        assert rng.random() == untouched.random()

    def test_without_a_clock_the_budget_is_inert(self):
        policy = RetryPolicy(attempts=4, base=1.0, multiplier=2.0,
                             cap=8.0, jitter=0.0, budget=0.001)
        assert list(policy.delays()) == [0.0, 1.0, 2.0, 4.0]


# -- browser total deadline --------------------------------------------------------


class TestBrowserTotalDeadline:
    def _dead_world(self):
        """ScholarCloud with its only remote VM crashed: loads must fail."""
        world = prepare("scholarcloud", seed=0)
        world.testbed.transport_of(world.testbed.remote_vm).crash()
        return world

    def test_total_deadline_caps_the_retry_spend(self):
        unbounded = self._dead_world()
        browser = Browser(unbounded.testbed.sim,
                          unbounded.method.connector(),
                          name="no-deadline", retries=2, read_timeout=10.0)
        start = unbounded.testbed.sim.now
        result = unbounded.testbed.run_process(
            browser.load(unbounded.testbed.scholar_page))
        unbounded_spend = unbounded.testbed.sim.now - start
        assert not result.succeeded

        bounded = self._dead_world()
        browser = Browser(bounded.testbed.sim, bounded.method.connector(),
                          name="deadline", retries=2, read_timeout=10.0,
                          total_deadline=5.0)
        start = bounded.testbed.sim.now
        result = bounded.testbed.run_process(
            browser.load(bounded.testbed.scholar_page))
        bounded_spend = bounded.testbed.sim.now - start
        assert not result.succeeded
        assert bounded_spend < unbounded_spend

    def test_deadline_does_not_change_a_healthy_load(self):
        world = prepare("scholarcloud", seed=0)
        browser = Browser(world.testbed.sim, world.method.connector(),
                          name="deadline-ok", total_deadline=30.0)
        result = world.testbed.run_process(
            browser.load(world.testbed.scholar_page))
        assert result.succeeded and result.error is None


# -- end-to-end shedding through the proxies ---------------------------------------


def _open_stream(world, connector):
    return world.testbed.run_process(
        connector.open("scholar.google.com", 443, use_tls=False))


class TestProxyShedding:
    def test_second_source_is_shed_at_the_cap_and_admitted_after_release(self):
        config = OverloadConfig(max_sessions=1)
        world = prepare("scholarcloud", seed=0, overload=config,
                        extra_clients=1)
        testbed = world.testbed
        first = world.method.connector()
        second = testbed.run_process(
            world.method.attach_client(testbed.extra_clients[0]))

        held = _open_stream(world, first)
        with pytest.raises(OverloadError):
            _open_stream(world, second)
        admission = world.method.domestic.admission
        assert admission.shed == 1 and admission.admitted == 1

        # Sticky: the admitted source can open more streams at the cap.
        extra = _open_stream(world, first)
        assert admission.decisions[-1][2] == "admit-sticky"
        extra.close()

        # Releasing every session frees the slot for the shed source.
        held.close()
        testbed.sim.run(until=testbed.sim.now + 5.0)
        assert admission.in_use == 0
        assert _open_stream(world, second) is not None

    def test_remote_stream_cap_sheds_excess_streams(self):
        config = OverloadConfig(remote_max_streams=1)
        world = prepare("scholarcloud", seed=0, overload=config)
        testbed = world.testbed
        connector = world.method.connector()
        held = _open_stream(world, connector)
        # The domestic ack is optimistic: settle until the transpacific
        # leg actually reaches the remote proxy.
        testbed.sim.run(until=testbed.sim.now + 5.0)
        remote = world.method.remotes[0]
        assert remote.limiter is not None and remote.limiter.in_use == 1
        _open_stream(world, connector)  # second stream, same optimism
        testbed.sim.run(until=testbed.sim.now + 10.0)
        assert remote.streams_shed > 0
        assert remote.limiter.in_use == 1  # the held stream kept its slot
        held.close()

    def test_shed_reply_is_not_retried_by_the_connector(self):
        config = OverloadConfig(max_sessions=1)
        world = prepare("scholarcloud", seed=0, overload=config,
                        extra_clients=1)
        testbed = world.testbed
        _open_stream(world, world.method.connector())
        second = testbed.run_process(
            world.method.attach_client(testbed.extra_clients[0]))
        before = testbed.sim.now
        with pytest.raises(OverloadError):
            _open_stream(world, second)
        # A shed is a decision, not a transient: no backoff was slept.
        assert testbed.sim.now - before < 1.0
        assert second.sheds_seen == 1


# -- seed robustness of shed decisions ---------------------------------------------


_SMALL_CONFIG = OverloadConfig(max_sessions=4, max_waiting=2,
                               queue_delay_threshold=2.0)


def _decision_log(seed):
    result = run_overload_point("scholarcloud", clients=10, cycles=1,
                                seed=seed, overload=_SMALL_CONFIG)
    return result


class TestShedSeedRobustness:
    def test_same_seed_identical_decisions_and_counters(self):
        first, second = _decision_log(0), _decision_log(0)
        assert first.decisions == second.decisions
        assert first.decisions  # the tiny cap definitely shed someone
        assert (first.report.offered, first.report.shed) == \
               (second.report.offered, second.report.shed)
        assert first.client_sheds == second.client_sheds

    def test_different_seed_different_decisions(self):
        assert _decision_log(0).decisions != _decision_log(7).decisions


# -- overload composed with faults (the acceptance scenario) -----------------------


class TestOverloadStormComposition:
    def test_storm_sheds_the_flood_and_recovers_from_the_crash(self):
        config = OverloadConfig(max_sessions=6)
        world = prepare("scholarcloud", seed=0, overload=config,
                        remote_replicas=1, extra_clients=24)
        testbed = world.testbed
        script = overload_storm(testbed.rng.stream("faults.schedule"),
                                clients=24)
        injector = script.install(testbed)
        browser = Browser(testbed.sim, world.method.connector(),
                          name="storm-client", retries=1, read_timeout=20.0)
        samples = []

        def driver(sim):
            for _ in range(12):
                result = yield sim.process(browser.load(testbed.scholar_page))
                samples.append((round(result.started_at, 6),
                                result.succeeded))
                yield sim.timeout(25.0)

        testbed.run_process(driver(testbed.sim), name="storm-driver")

        # The flash crowd was shed, not queued: admission refused the
        # spike's excess sources while serving the established client.
        admission = world.method.domestic.admission
        assert admission.shed > 0
        kinds = {entry[1] for entry in injector.timeline}
        assert {"load-spike", "proxy-crash", "link-degrade"} <= kinds

        # The crash mid-storm opened the primary's breaker and the
        # pool failed over — overload did not mask the fault handling.
        pool = world.method.domestic.pool
        from repro.faults import CircuitBreaker
        transitions = pool.breakers[pool.primary].transitions
        assert any(new == CircuitBreaker.OPEN for _, _, new in transitions)
        assert pool.failovers > 0

        # Goodput recovers once the storm passes: the driver's last
        # loads (storm long over) succeed, and overall availability
        # stays high because sticky admission protected the client.
        assert all(ok for _, ok in samples[-3:])
        report = availability(samples)
        assert report.success_rate >= 0.75

    def test_storm_timeline_is_seed_stable(self):
        def timeline(seed):
            testbed = Testbed(seed=seed, remote_replicas=1, extra_clients=4)
            script = overload_storm(testbed.rng.stream("faults.schedule"),
                                    clients=4)
            injector = script.install(testbed)
            testbed.sim.run(until=300.0)
            return injector.timeline

        assert timeline(0) == timeline(0)
        assert timeline(0) != timeline(5)
