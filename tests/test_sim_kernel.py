"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay, value=delay).add_callback(
            lambda ev: fired.append(ev.value))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for tag in ("a", "b", "c"):
        sim.timeout(1.0, value=tag).add_callback(
            lambda ev: fired.append(ev.value))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_process_returns_value():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)
        return 42

    assert sim.run(until=sim.process(body(sim))) == 42
    assert sim.now == 1.0


def test_process_composes():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return "child-value"

    def parent(sim):
        value = yield sim.process(child(sim))
        return value + "!"

    assert sim.run(until=sim.process(parent(sim))) == "child-value!"


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 123

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_event_succeed_value_propagates():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim):
        value = yield gate
        return value

    proc = sim.process(waiter(sim))
    sim.schedule(5.0, lambda: gate.succeed("hello"))
    assert sim.run(until=proc) == "hello"
    assert sim.now == 5.0


def test_event_fail_raises_in_process():
    sim = Simulator()
    gate = sim.event()

    class Boom(Exception):
        pass

    def waiter(sim):
        try:
            yield gate
        except Boom:
            return "caught"

    proc = sim.process(waiter(sim))
    sim.schedule(1.0, lambda: gate.fail(Boom()))
    assert sim.run(until=proc) == "caught"


def test_event_double_decide_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_late_callback_on_processed_event_runs_immediately():
    sim = Simulator()
    ev = sim.timeout(1.0, value="x")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_interrupt_delivers_process_killed():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except ProcessKilled as exc:
            return ("interrupted", exc.cause)

    proc = sim.process(sleeper(sim))
    sim.schedule(1.0, lambda: proc.interrupt("deadline"))
    assert sim.run(until=proc) == ("interrupted", "deadline")
    assert sim.now == 1.0


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.5)

    proc = sim.process(quick(sim))
    sim.run(until=proc)
    proc.interrupt("too late")  # must not raise
    sim.run()


def test_unhandled_interrupt_fails_process():
    sim = Simulator()

    def sleeper(sim):
        yield sim.timeout(100.0)

    proc = sim.process(sleeper(sim))
    sim.schedule(1.0, lambda: proc.interrupt())
    with pytest.raises(ProcessKilled):
        sim.run(until=proc)


def test_any_of_fires_on_first():
    sim = Simulator()

    def body(sim):
        first = sim.timeout(1.0, value="fast")
        second = sim.timeout(5.0, value="slow")
        result = yield sim.any_of([first, second])
        return list(result.values())

    assert sim.run(until=sim.process(body(sim))) == ["fast"]
    assert sim.now == 1.0


def test_all_of_waits_for_all():
    sim = Simulator()

    def body(sim):
        events = [sim.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
        result = yield sim.all_of(events)
        return sorted(result.values())

    assert sim.run(until=sim.process(body(sim))) == [1.0, 2.0, 3.0]
    assert sim.now == 3.0


def test_empty_any_of_and_all_of_fire_immediately():
    sim = Simulator()

    def body(sim):
        a = yield sim.any_of([])
        b = yield sim.all_of([])
        return (a, b)

    assert sim.run(until=sim.process(body(sim))) == ({}, {})


def test_run_until_time_stops_clock_there():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    gate = sim.event()  # nobody will ever succeed it
    with pytest.raises(SimulationError):
        sim.run(until=gate)


def test_max_events_safety_valve():
    sim = Simulator()

    def forever(sim):
        while True:
            yield sim.timeout(1.0)

    sim.process(forever(sim))
    with pytest.raises(SimulationError):
        sim.run(max_events=50)


def test_step_and_peek():
    sim = Simulator()
    sim.timeout(2.0)
    assert sim.peek() == 2.0
    assert sim.step() == 2.0
    assert sim.peek() == float("inf")
    with pytest.raises(SimulationError):
        sim.step()
