"""Tier-1 gate: the tree must satisfy its own static invariants.

Runs reprolint over ``src/repro`` with the repo's ``[tool.reprolint]``
config and fails on any unsuppressed finding; also proves the gate has
teeth by reintroducing the historical seeded-RNG violations and
checking they are reported with file:line locations.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import Analyzer, Severity, parse_config

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
PYPROJECT = REPO_ROOT / "pyproject.toml"


def _analyzer() -> Analyzer:
    return Analyzer(config=parse_config(PYPROJECT))


def test_source_tree_is_clean():
    findings = _analyzer().analyze_paths([SRC])
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert errors == [], "unsuppressed reprolint findings:\n" + "\n".join(
        f.format() for f in errors)


def test_reintroduced_link_seed_is_caught():
    """The exact violation this PR removed must stay detectable."""
    source = (SRC / "net" / "link.py").read_text()
    patched = source.replace(
        'rng if rng is not None else sim.rng.stream("link.loss")',
        "rng or random.Random(0)")
    assert patched != source, "link.py no longer contains the fixed fallback"
    findings = _analyzer().analyze_source(
        patched, path="src/repro/net/link.py", module="repro.net.link")
    assert any(f.rule == "det-seeded-random" for f in findings)
    finding = next(f for f in findings if f.rule == "det-seeded-random")
    assert finding.line > 0 and "random.Random(0)" in finding.message


def test_reintroduced_firewall_seed_is_caught():
    source = (SRC / "gfw" / "firewall.py").read_text()
    patched = source.replace(
        'rng if rng is not None else sim.rng.stream("gfw.interference")',
        "rng or random.Random(0x67F)")
    assert patched != source
    findings = _analyzer().analyze_source(
        patched, path="src/repro/gfw/firewall.py", module="repro.gfw.firewall")
    assert any(f.rule == "det-seeded-random" for f in findings)


def test_reintroduced_ambient_survey_random_is_caught():
    findings = _analyzer().analyze_source(
        "import random\n"
        "def sample():\n"
        "    return random.random()\n",
        path="src/repro/measure/survey.py", module="repro.measure.survey")
    assert [f.rule for f in findings] == ["det-ambient-random"]


def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, env=env, capture_output=True, text=True)


def test_cli_clean_tree_exits_zero():
    result = _run_cli("src/repro")
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_violation_exits_nonzero_with_location(tmp_path):
    bad = tmp_path / "repro" / "net" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nrng = random.Random(0)\n")
    result = _run_cli(str(bad))
    assert result.returncode == 1
    assert "bad.py:2:" in result.stdout
    assert "det-seeded-random" in result.stdout


def test_cli_json_output(tmp_path):
    import json

    bad = tmp_path / "repro" / "gfw" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nnow = time.time()\n")
    result = _run_cli(str(bad), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload[0]["rule"] == "det-wallclock"
    assert payload[0]["line"] == 2


def test_cli_list_rules():
    result = _run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in ("det-seeded-random", "sim-forbidden-import",
                    "codec-str-bytes", "process-uninvoked",
                    "leak-on-error-path", "deadline-unclamped",
                    "rng-stream-registry", "wire-schema",
                    "stale-suppression"):
        assert rule_id in result.stdout


def test_cli_sarif_output(tmp_path):
    import json

    bad = tmp_path / "repro" / "net" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nrng = random.Random(0)\n")
    out = tmp_path / "reprolint.sarif"
    result = _run_cli(str(bad), "--sarif", str(out))
    assert result.returncode == 1
    document = json.loads(out.read_text())
    assert document["version"] == "2.1.0"
    results = document["runs"][0]["results"]
    assert any(r["ruleId"] == "det-seeded-random" for r in results)


def test_cli_sarif_clean_tree_exits_zero(tmp_path):
    out = tmp_path / "reprolint.sarif"
    result = _run_cli("src/repro", "--sarif", str(out))
    assert result.returncode == 0, result.stdout + result.stderr
    assert out.exists()
