"""Tests for the shared middleware plumbing (relay framing, channels)."""

import pytest

from repro.errors import MiddlewareError
from repro.http import HttpRequest, HttpResponse
from repro.middleware import (
    estimate_meta_length,
    unwrap_forward,
    wrap_forward,
)
from repro.middleware.base import ChannelStream, RelayedChannel
from repro.net import Network, OPAQUE_STREAM
from repro.sim import Simulator
from repro.transport import install_transport
from repro.units import Mbps, ms


def test_forward_framing_roundtrip():
    frame = wrap_forward(1234, {"k": "v"})
    length, meta = unwrap_forward(frame)
    assert length == 1234 and meta == {"k": "v"}


def test_unwrap_rejects_garbage():
    with pytest.raises(MiddlewareError):
        unwrap_forward(("not", "a", "frame", "at-all"))
    with pytest.raises(MiddlewareError):
        unwrap_forward("junk")


def test_estimate_meta_length_for_http_and_tls():
    request = HttpRequest("scholar.google.com", "/")
    assert estimate_meta_length(request) == request.size()
    response = HttpResponse(200, "/", 4800)
    assert estimate_meta_length(response) == response.size()
    # TLS handshake metas map onto the transport's constants.
    from repro.transport import tls
    assert estimate_meta_length(("tls", "client-hello", None, False)) == \
        tls.CLIENT_HELLO
    assert estimate_meta_length(("tls", "server-hello")) == \
        tls.SERVER_HELLO_WITH_CERT
    # TLS-app wrapping adds record overhead.
    assert estimate_meta_length(("tls-app", response)) == \
        response.size() + tls.RECORD_OVERHEAD
    # Unknown metas get a conservative default, not a crash.
    assert estimate_meta_length(object()) == 600


def relayed_pair():
    """A RelayedChannel over a live TcpConnection pair."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="10.0.0.2")
    net.connect(a, b, latency=ms(5), bandwidth=Mbps(100))
    net.build_routes()
    ta, tb = install_transport(sim, a), install_transport(sim, b)
    server_conns = []
    tb.listen_tcp(9, lambda conn: server_conns.append(conn))
    return sim, ta, server_conns


def test_relayed_channel_wraps_and_unwraps():
    sim, ta, server_conns = relayed_pair()

    def body(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 9)
        channel = RelayedChannel(sim, conn, overhead=16,
                                 features=OPAQUE_STREAM)
        channel.send_message(100, meta="hello")
        # (the server's accept fires one half-RTT after the client's.)
        yield sim.timeout(0.05)
        # The server sees the framed version...
        framed = yield server_conns[0].recv_message()
        assert unwrap_forward(framed) == (100, "hello")
        # ...and replies in kind; the channel unwraps for the app.
        server_conns[0].send_message(50, meta=wrap_forward(50, "world"))
        reply = yield channel.recv_message()
        return reply

    assert sim.run(until=sim.process(body(sim))) == "world"


def test_relayed_channel_drops_junk_frames():
    sim, ta, server_conns = relayed_pair()

    def body(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 9)
        channel = RelayedChannel(sim, conn, overhead=0, features=None)
        channel.send_message(10, meta="x")  # starts the pump
        yield sim.timeout(0.05)
        server_conns[0].send_message(10, meta="unframed-junk")
        server_conns[0].send_message(20, meta=wrap_forward(20, "good"))
        reply = yield channel.recv_message()
        return reply

    assert sim.run(until=sim.process(body(sim))) == "good"


def test_channel_stream_adapts_channel():
    sim, ta, server_conns = relayed_pair()

    def body(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 9)
        channel = RelayedChannel(sim, conn, overhead=0, features=None)
        stream = ChannelStream(channel)
        assert stream.alive
        stream.send(64, meta="ping")
        yield sim.timeout(0.05)
        framed = yield server_conns[0].recv_message()
        assert unwrap_forward(framed)[1] == "ping"
        stream.close()
        return stream.alive

    assert sim.run(until=sim.process(body(sim))) in (True, False)
