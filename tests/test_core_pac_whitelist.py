"""Tests for the whitelist and PAC generation/evaluation."""

import pytest

from repro.core import PacFile, Whitelist, parse_pac_decision, scholar_whitelist
from repro.errors import ConfigurationError, PolicyError


# -- whitelist ---------------------------------------------------------------------

def test_whitelist_suffix_matching():
    wl = scholar_whitelist()
    assert wl.allows("scholar.google.com")
    assert wl.allows("fonts.gstatic.com")
    assert not wl.allows("www.google.com")      # only Scholar, not all Google
    assert not wl.allows("evil-gstatic.com.cn")
    assert not wl.allows(None)


def test_whitelist_add_remove_audited():
    wl = Whitelist()
    wl.add("scholar.google.com", "academic search", now=1.0)
    assert wl.allows("scholar.google.com")
    wl.remove("scholar.google.com", now=2.0)
    assert not wl.allows("scholar.google.com")
    assert [(t, action) for t, action, _d in wl.audit_log] == [
        (1.0, "add"), (2.0, "remove")]


def test_whitelist_remove_unknown_rejected():
    with pytest.raises(PolicyError):
        Whitelist().remove("nothere.com")


def test_whitelist_rejects_bad_domain():
    with pytest.raises(PolicyError):
        Whitelist().add("not-a-domain", "nope")


def test_whitelist_domains_visible_and_sorted():
    wl = scholar_whitelist()
    domains = wl.domains()
    assert domains == sorted(domains)
    assert "scholar.google.com" in domains


# -- PAC ----------------------------------------------------------------------------------

def test_pac_routes_whitelist_to_proxy():
    pac = PacFile(scholar_whitelist(), "59.66.2.100", 8080)
    assert pac.evaluate("https://scholar.google.com/") == "PROXY 59.66.2.100:8080"
    assert pac.evaluate("https://www.baidu.com/") == "DIRECT"


def test_pac_subdomain_matching():
    pac = PacFile(scholar_whitelist(), "p", 8080)
    assert pac.evaluate_host("fonts.gstatic.com").startswith("PROXY")


def test_pac_render_is_valid_javascript_shape():
    pac = PacFile(scholar_whitelist(), "59.66.2.100", 8080)
    text = pac.render()
    assert "function FindProxyForURL(url, host)" in text
    assert 'return "PROXY 59.66.2.100:8080"' in text
    assert 'return "DIRECT"' in text
    for domain in scholar_whitelist().domains():
        assert domain in text


def test_pac_empty_whitelist_is_all_direct():
    pac = PacFile(Whitelist(), "p", 8080)
    assert pac.evaluate("https://scholar.google.com/") == "DIRECT"
    assert "false" in pac.render()


def test_pac_validation():
    with pytest.raises(ConfigurationError):
        PacFile(scholar_whitelist(), "", 8080)
    with pytest.raises(ConfigurationError):
        PacFile(scholar_whitelist(), "p", 0)


def test_parse_pac_decision():
    assert parse_pac_decision("DIRECT") is None
    assert parse_pac_decision("PROXY 1.2.3.4:8080") == ("1.2.3.4", 8080)
    with pytest.raises(ConfigurationError):
        parse_pac_decision("SOCKS 1.2.3.4:1080")
    with pytest.raises(ConfigurationError):
        parse_pac_decision("PROXY nonsense")
