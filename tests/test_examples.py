"""Smoke tests: the example scripts must stay runnable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Direct access" in out
    assert "ScholarCloud" in out
    assert "first visit" in out
    assert "none" in out  # GFW classification of blinded flows


def test_campus_deployment():
    out = run_example("campus_deployment.py")
    assert "ICP registration filed" in out
    assert "no-action" in out            # registered service survives
    assert "shutdown" in out             # grey proxy does not
    assert "2.2 USD" in out


def test_gfw_arms_race():
    out = run_example("gfw_arms_race.py")
    assert "CONFIRMED PROXY" in out
    assert "server IP blocked: True" in out
    assert "rotate the codec" in out
    assert "signature is stale" in out


def test_live_loopback_proxy():
    out = run_example("live_loopback_proxy.py")
    assert "HTTP/1.1 200" in out
    assert "403 Forbidden" in out
    assert "plaintext visible: False" in out


@pytest.mark.slow
def test_method_comparison():
    out = run_example("method_comparison.py", timeout=300.0)
    assert "scholarcloud" in out
    assert "tor" in out
