"""repro.fleet.survival + repro.fleet.verifier: session survivability.

The properties this file pins: a resume token round-trips its wire form
byte-identically and only ever moves forward; a hedged dial launches
its second attempt exactly when the primary outruns the p95 estimate,
and a losing dial that succeeds anyway is closed (never leaked); the
coordinator migrates a session at most ``migration_budget`` times and
resumes it from its durable checkpoint — including when the *target*
region escalates too, and when a migration races an operator drain;
and the SurvivalVerifier machine-checks every headline claim of the
escalation-to-blackout campaign instead of trusting a hand-read plot.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, Severity, parse_config
from repro.errors import MeasurementError, TransportError
from repro.faults import RetryPolicy
from repro.fleet import (
    DialLatencyTracker,
    DOWN,
    DRAINING,
    FleetSchedule,
    FleetTestbed,
    HedgedDialer,
    ProxyFleet,
    ResumeToken,
    SurvivalCoordinator,
    SurvivalEvent,
    SurvivalSession,
    SurvivalVerifier,
    default_fleet_regions,
    run_survival_campaign,
    survival_document,
)
from repro.measure import region_health
from repro.overload import Deadline
from repro.sim import Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
PYPROJECT = REPO_ROOT / "pyproject.toml"


# -- resume tokens -----------------------------------------------------------------


def _token(**overrides):
    kwargs = dict(session="s1", method="scholarcloud",
                  host="scholar.google.com", path="/survival/corpus.pdf",
                  epoch=0, total_bytes=100, offset=0,
                  deadline_remaining=240.0, checkpointed_at=0.0)
    kwargs.update(overrides)
    return ResumeToken(**kwargs)


class TestResumeToken:
    def test_wire_round_trip_is_exact(self):
        token = _token(epoch=3, offset=40, deadline_remaining=17.25,
                       checkpointed_at=222.75)
        assert ResumeToken.from_wire(token.to_wire()) == token

    def test_from_wire_rejects_foreign_tuples(self):
        token = _token()
        for wire in (("not-a-token",) + token.to_wire()[1:],
                     token.to_wire()[:-1],
                     list(token.to_wire())):
            with pytest.raises(MeasurementError):
                ResumeToken.from_wire(wire)

    def test_advanced_moves_the_offset_forward(self):
        token = _token()
        later = token.advanced(30, now=10.0, deadline=Deadline(240.0))
        assert later.offset == 30
        assert later.deadline_remaining == 230.0
        assert later.checkpointed_at == 10.0
        assert later.epoch == token.epoch
        assert not later.complete
        done = later.advanced(70, now=20.0, deadline=Deadline(240.0), epoch=5)
        assert done.complete
        assert done.epoch == 5

    def test_checkpoint_must_advance(self):
        for nbytes in (0, -10):
            with pytest.raises(MeasurementError):
                _token().advanced(nbytes, now=1.0, deadline=Deadline(240.0))


# -- region health -----------------------------------------------------------------


class TestRegionHealth:
    def test_quiet_region_scores_fully_healthy(self):
        health = region_health("beijing")
        assert health.score == 1.0
        assert not health.degraded()

    def test_blackout_signature_is_degraded(self):
        # Border down: every transpacific breaker open, no traffic
        # making it out — the exact fingerprint the coordinator drains on.
        health = region_health("beijing", breakers_open=3, breakers_total=3)
        assert health.breaker_open_fraction == 1.0
        assert health.score < 0.5
        assert health.degraded()

    def test_interference_alone_does_not_drain_a_region(self):
        health = region_health("beijing", interference_drops=50,
                               packets_seen=100)
        assert not health.degraded()

    def test_negative_counters_raise(self):
        with pytest.raises(MeasurementError):
            region_health("beijing", shed=-1)


# -- hedged dialing ----------------------------------------------------------------


class _FakeConn:
    def __init__(self, label):
        self.label = label
        self.closed = False

    def close(self):
        self.closed = True


def _dial_after(sim, delay, conn=None, error=None):
    def thunk():
        yield sim.timeout(delay)
        if error is not None:
            raise error
        return conn

    return thunk


def _race(sim, dialer, attempts, until=60.0):
    outcome = {}

    def runner():
        try:
            conn, label = yield from dialer.dial(attempts)
        except TransportError as exc:
            outcome["error"] = exc
            return
        outcome["conn"], outcome["label"] = conn, label

    sim.process(runner(), name="race")
    sim.run(until=until)
    return outcome


class TestDialLatencyTracker:
    def test_cold_start_uses_the_prior(self):
        assert DialLatencyTracker(default=0.8).p95() == 0.8

    def test_window_slides(self):
        tracker = DialLatencyTracker(window=4)
        for latency in (9.0, 1.0, 1.0, 1.0, 1.0):
            tracker.observe(latency)
        # The 9.0 outlier has rolled off the 4-sample window.
        assert tracker.p95() == 1.0

    def test_window_must_hold_a_sample(self):
        with pytest.raises(MeasurementError):
            DialLatencyTracker(window=0)


class TestHedgedDialer:
    def test_fast_primary_never_hedges(self):
        sim = Simulator(seed=0)
        dialer = HedgedDialer(sim)
        conn = _FakeConn("a")
        outcome = _race(sim, dialer, [
            ("a", _dial_after(sim, 0.1, conn)),
            ("b", _dial_after(sim, 0.1, _FakeConn("b")))])
        assert outcome["conn"] is conn
        assert outcome["label"] == "a"
        assert dialer.hedges == 0
        assert dialer.hedge_wins == 0
        assert dialer.losers_closed == 0

    def test_slow_primary_hedges_and_the_loser_closes(self):
        # Both dials succeed: exactly one stream survives — the loser
        # closes its own connection (the leak-on-error-path discipline).
        sim = Simulator(seed=0)
        dialer = HedgedDialer(sim)  # cold-start p95 estimate: 0.8s
        slow, fast = _FakeConn("a"), _FakeConn("b")
        outcome = _race(sim, dialer, [
            ("a", _dial_after(sim, 5.0, slow)),
            ("b", _dial_after(sim, 0.2, fast))])
        assert outcome["conn"] is fast
        assert outcome["label"] == "b"
        assert dialer.hedges == 1
        assert dialer.hedge_wins == 1
        assert dialer.losers_closed == 1
        assert slow.closed
        assert not fast.closed

    def test_failed_primary_fails_over_without_counting_a_hedge(self):
        sim = Simulator(seed=0)
        dialer = HedgedDialer(sim)
        conn = _FakeConn("b")
        outcome = _race(sim, dialer, [
            ("a", _dial_after(sim, 0.1, error=TransportError("refused"))),
            ("b", _dial_after(sim, 0.1, conn))])
        assert outcome["conn"] is conn
        assert dialer.hedges == 0  # failover, not a latency hedge
        assert dialer.hedge_wins == 1

    def test_all_attempts_failing_raises_the_last_error(self):
        sim = Simulator(seed=0)
        dialer = HedgedDialer(sim)
        outcome = _race(sim, dialer, [
            ("a", _dial_after(sim, 0.1, error=TransportError("first"))),
            ("b", _dial_after(sim, 5.0, error=TransportError("second")))])
        assert "second" in str(outcome["error"])

    def test_single_attempt_races_nothing(self):
        sim = Simulator(seed=0)
        dialer = HedgedDialer(sim)
        conn = _FakeConn("only")
        outcome = _race(sim, dialer, [("only", _dial_after(sim, 2.0, conn))])
        assert outcome["conn"] is conn
        assert dialer.hedges == 0

    def test_hedge_delay_is_seed_deterministic(self):
        def delays(seed):
            dialer = HedgedDialer(Simulator(seed=seed))
            return [dialer.hedge_delay() for _ in range(5)]

        assert delays(7) == delays(7)

    def test_needs_at_least_one_attempt(self):
        dialer = HedgedDialer(Simulator(seed=0))
        with pytest.raises(MeasurementError):
            list(dialer.dial([]))

    def test_loser_close_paths_satisfy_the_leak_rule(self):
        # The hedge opens two streams on purpose; pyproject extends the
        # leak-on-error-path scope over repro.fleet so this stays provable.
        analyzer = Analyzer(config=parse_config(PYPROJECT))
        findings = analyzer.analyze_paths([SRC / "fleet"])
        leaks = [f for f in findings if f.rule == "leak-on-error-path"
                 and f.severity is Severity.ERROR]
        assert leaks == [], "\n".join(f.format() for f in leaks)


# -- the chunked survival document -------------------------------------------------


class TestSurvivalDocument:
    def test_chunks_tile_the_document(self):
        page = survival_document(total_bytes=100, chunk_size=30)
        assert [obj.size for obj in page.objects] == [30, 30, 30, 10]
        assert [obj.path for obj in page.objects] == [
            f"/survival/corpus.pdf?chunk={i}" for i in range(4)]
        assert not any(obj.cacheable for obj in page.objects)

    def test_sizes_must_be_positive(self):
        with pytest.raises(MeasurementError):
            survival_document(total_bytes=0)
        with pytest.raises(MeasurementError):
            survival_document(chunk_size=0)


# -- adaptive retry budgets --------------------------------------------------------


class TestScaledRetry:
    def test_unit_scale_is_equivalent(self):
        policy = RetryPolicy(attempts=4, base=1.0, budget=100.0)
        scaled = policy.scaled(1.0)
        assert scaled.attempts == 4
        assert scaled.budget == 100.0

    def test_degraded_health_shrinks_attempts_and_budget(self):
        policy = RetryPolicy(attempts=4, base=1.0, budget=100.0)
        scaled = policy.scaled(0.5)
        assert scaled.attempts == 2
        assert scaled.budget == 50.0

    def test_scale_never_reaches_zero_attempts(self):
        assert RetryPolicy(attempts=4).scaled(0.01).attempts == 1

    def test_scale_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=4).scaled(0.0)
        with pytest.raises(ValueError):
            RetryPolicy(attempts=4).scaled(1.5)


# -- the verifier over synthetic logs ----------------------------------------------


def _log(*rows):
    return [SurvivalEvent(time, kind, session, region, tuple(detail))
            for time, kind, session, region, detail in rows]


_REGIONS = ["beijing", "shanghai"]


class TestSurvivalVerifier:
    def test_clean_migrated_session_passes_every_invariant(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 20)),
            (1.0, "chunk", "s1", "beijing", (0, 10)),
            (2.0, "region-degraded", "", "beijing", (0.4,)),
            (3.0, "migrate", "s1", "shanghai", ("beijing", "shanghai", 10)),
            (3.5, "resume", "s1", "shanghai", (10, "beijing")),
            (4.0, "chunk", "s1", "shanghai", (10, 10)),
            (5.0, "session-complete", "s1", "shanghai", (20,)),
            (60.0, "region-recovered", "", "beijing", (0.9,)))
        report = SurvivalVerifier(migration_budget=3).verify(events, _REGIONS)
        assert report.passed
        assert report.sessions == 1
        assert report.completed == 1
        assert report.migrations == 1
        assert report.lost == 0

    def test_loss_with_a_healthy_region_up_is_a_violation(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 20)),
            (1.0, "region-degraded", "", "beijing", (0.4,)),
            (9.0, "session-lost", "s1", "beijing", ("deadline", 0)))
        report = SurvivalVerifier().verify(events, _REGIONS)
        verdict = report.invariant("no-session-lost-while-healthy")
        assert not verdict.passed
        assert "shanghai" in verdict.violations[0]

    def test_loss_during_a_total_outage_is_tolerated(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 20)),
            (1.0, "region-degraded", "", "beijing", (0.4,)),
            (2.0, "region-degraded", "", "shanghai", (0.3,)),
            (9.0, "session-lost", "s1", "beijing", ("deadline", 0)))
        report = SurvivalVerifier().verify(events, _REGIONS)
        assert report.invariant("no-session-lost-while-healthy").passed

    def test_duplicate_delivery_after_resume_is_caught(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 20)),
            (1.0, "chunk", "s1", "beijing", (0, 10)),
            (2.0, "chunk", "s1", "beijing", (0, 10)),  # replayed chunk
            (3.0, "chunk", "s1", "beijing", (10, 10)),
            (4.0, "session-complete", "s1", "beijing", (20,)))
        verdict = (SurvivalVerifier().verify(events, _REGIONS)
                   .invariant("no-duplicate-delivery"))
        assert not verdict.passed
        assert "duplicate" in verdict.violations[0]

    def test_gap_in_delivery_is_caught(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 30)),
            (1.0, "chunk", "s1", "beijing", (0, 10)),
            (2.0, "chunk", "s1", "beijing", (20, 10)),  # skipped 10..20
            (3.0, "session-complete", "s1", "beijing", (30,)))
        verdict = (SurvivalVerifier().verify(events, _REGIONS)
                   .invariant("no-duplicate-delivery"))
        assert not verdict.passed
        assert "gap" in verdict.violations[0]

    def test_short_completion_is_caught(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 100)),
            (1.0, "chunk", "s1", "beijing", (0, 10)),
            (2.0, "session-complete", "s1", "beijing", (10,)))
        verdict = (SurvivalVerifier().verify(events, _REGIONS)
                   .invariant("no-duplicate-delivery"))
        assert not verdict.passed
        assert "10 of 100" in verdict.violations[0]

    def test_migration_budget_is_enforced(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 10)),
            (1.0, "migrate", "s1", "shanghai", ("beijing", "shanghai", 0)),
            (2.0, "migrate", "s1", "beijing", ("shanghai", "beijing", 0)),
            (3.0, "chunk", "s1", "beijing", (0, 10)),
            (4.0, "session-complete", "s1", "beijing", (10,)))
        assert (SurvivalVerifier(migration_budget=2)
                .verify(events, _REGIONS).passed)
        verdict = (SurvivalVerifier(migration_budget=1)
                   .verify(events, _REGIONS)
                   .invariant("migrations-within-budget"))
        assert not verdict.passed

    def test_hung_session_is_a_violation(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 10)),
            (1.0, "chunk", "s1", "beijing", (0, 10)))
        verdict = (SurvivalVerifier().verify(events, _REGIONS)
                   .invariant("no-session-unresolved"))
        assert not verdict.passed
        assert "s1" in verdict.violations[0]

    def test_unrecovered_availability_fails(self):
        # One bucket of successes, then only losses to the end: the dip
        # is 100 points and the series never climbs back.
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 10)),
            (1.0, "chunk", "s1", "beijing", (0, 10)),
            (2.0, "session-complete", "s1", "beijing", (10,)),
            (3.0, "region-degraded", "", "beijing", (0.4,)),
            (4.0, "region-degraded", "", "shanghai", (0.3,)),
            (50.0, "session-start", "s2", "beijing", ("beijing", 10)),
            (70.0, "session-lost", "s2", "beijing", ("deadline", 0)))
        report = SurvivalVerifier(bucket=30.0).verify(events, _REGIONS)
        verdict = report.invariant("availability-dip-bounded")
        assert not verdict.passed
        assert report.dip == 1.0
        assert not report.recovering

    def test_out_of_order_log_raises(self):
        events = _log(
            (5.0, "session-start", "s1", "beijing", ("beijing", 10)),
            (1.0, "chunk", "s1", "beijing", (0, 10)))
        with pytest.raises(MeasurementError):
            SurvivalVerifier().verify(events, _REGIONS)

    def test_render_lists_every_verdict(self):
        events = _log(
            (0.0, "session-start", "s1", "beijing", ("beijing", 10)),
            (1.0, "chunk", "s1", "beijing", (0, 10)),
            (2.0, "session-complete", "s1", "beijing", (10,)))
        rendered = SurvivalVerifier().verify(events, _REGIONS).render()
        assert "survival verifier report" in rendered
        assert rendered.count("[PASS]") == 5
        assert "verdict: PASS" in rendered

    def test_bad_thresholds_raise(self):
        with pytest.raises(MeasurementError):
            SurvivalVerifier(migration_budget=-1)
        with pytest.raises(MeasurementError):
            SurvivalVerifier(dip_ceiling=1.5)


# -- coordinator placement: budgets, drains, double escalation ---------------------


def _coordinator_world(seed=0, regions=3, **coordinator_kwargs):
    testbed = FleetTestbed(seed=seed, regions=default_fleet_regions(regions),
                           pops=2, clients_per_region=1,
                           domestic_backbone=True)
    fleet = ProxyFleet(testbed)
    testbed.run_process(fleet.launch(), name="launch")
    return testbed, fleet, SurvivalCoordinator(fleet, **coordinator_kwargs)


class TestCoordinatorPlacement:
    def test_unbound_session_enters_at_its_healthy_home(self):
        _, _, coordinator = _coordinator_world()
        assert coordinator.place("s1", "shanghai", None, 0) == "shanghai"
        assert coordinator.migrations == 0

    def test_unknown_home_region_raises(self):
        _, _, coordinator = _coordinator_world()
        with pytest.raises(MeasurementError):
            coordinator.place("s1", "atlantis", None, 0)

    def test_migration_spends_budget_then_pins(self):
        _, _, coordinator = _coordinator_world(migration_budget=1)
        coordinator.bind("s1", "beijing")
        coordinator.entry_router.evict(coordinator.entries["beijing"])
        first = coordinator.place("s1", "beijing", "beijing", 512)
        assert first in ("shanghai", "guangzhou")
        assert coordinator.migrations_of("s1") == 1
        coordinator.bind("s1", first)
        # The target degrades too, but the budget is spent: the session
        # is pinned where it is instead of thrashing.
        coordinator.entry_router.evict(coordinator.entries[first])
        assert coordinator.place("s1", "beijing", first, 1024) == first
        assert coordinator.migrations_of("s1") == 1
        kinds = [event.kind for event in coordinator.events]
        assert kinds.count("migrate") == 1
        assert kinds.count("migrate-denied") == 1

    def test_no_healthy_region_places_nowhere(self):
        _, _, coordinator = _coordinator_world(regions=2)
        for entry in coordinator.entries.values():
            coordinator.entry_router.evict(entry)
        assert coordinator.place("s1", "beijing", "beijing", 0) is None
        assert coordinator.migrations == 0

    def test_migration_racing_a_drain(self):
        # Operator drains a front door mid-session; established sessions
        # stay (that is what draining means) — until the region degrades
        # under the drain, which displaces them like any eviction.
        _, _, coordinator = _coordinator_world()
        entry = coordinator.entries["beijing"]
        coordinator.bind("s1", "beijing")
        coordinator.entry_router.drain(entry)
        assert coordinator.entry_router.status[entry] == DRAINING
        assert coordinator.place("s1", "beijing", "beijing", 256) == "beijing"
        assert coordinator.migrations == 0  # a drain is not a migration
        coordinator.entry_router.evict(entry)
        assert coordinator.entry_router.status[entry] == DOWN
        moved = coordinator.place("s1", "beijing", "beijing", 256)
        assert moved != "beijing"
        assert coordinator.migrations_of("s1") == 1
        coordinator.bind("s1", moved)
        # The drained-then-dead region coming back must not flap the
        # session home again.
        coordinator.entry_router.reinstate(entry)
        assert coordinator.place("s1", "beijing", moved, 512) == moved
        assert coordinator.migrations_of("s1") == 1


# -- end to end: a session outlives two regional escalations -----------------------


class TestSessionSurvivesEscalations:
    def test_checkpoint_resume_after_the_target_region_escalates(self):
        testbed = FleetTestbed(seed=1, regions=default_fleet_regions(3),
                               pops=2, clients_per_region=1,
                               domestic_backbone=True)
        sim = testbed.sim
        fleet = ProxyFleet(testbed)
        testbed.run_process(fleet.launch(), name="launch")
        page = survival_document(total_bytes=40 * 2048, chunk_size=2048)
        testbed.scholar_server.add_page(page)
        coordinator = SurvivalCoordinator(fleet)
        coordinator.start()

        # The session's first fallback is a pure function of its key, so
        # the schedule can black out the *target* region after the move.
        fallback = next(
            entry.name for entry in coordinator.entry_router.rank("edge-1")
            if entry.name != "beijing")
        schedule = FleetSchedule()
        schedule.region_blackout("beijing", at=15.0, downtime=600.0)
        schedule.region_blackout(fallback, at=120.0, downtime=600.0)
        schedule.install(testbed)

        session = SurvivalSession(
            coordinator, host=testbed.region("beijing").extra_clients[0],
            home="beijing", key="edge-1", page=page, chunk_size=2048,
            load_deadline=600.0, chunk_interval=3.0)
        proc = sim.process(session.run(), name="edge-session")
        sim.run(until=proc)

        assert session.completed and not session.lost
        assert coordinator.migrations_of("edge-1") == 2
        migrations = [event for event in coordinator.events
                      if event.kind == "migrate"]
        assert [event.detail[:2] for event in migrations] == [
            ("beijing", fallback),
            (fallback, session.region)]
        resumes = [event for event in coordinator.events
                   if event.kind == "resume"]
        offsets = [event.detail[0] for event in resumes]
        # Both resumes continued from a real mid-file checkpoint.
        assert len(offsets) == 2
        assert 0 < offsets[0] < offsets[1] < page.total_bytes()
        report = SurvivalVerifier(
            migration_budget=coordinator.migration_budget).verify(
            coordinator.events, [r.name for r in testbed.regions],
            horizon=sim.now)
        assert report.passed, report.render()


# -- the longitudinal escalation-to-blackout campaign ------------------------------


def _small_campaign(seed=0):
    return run_survival_campaign(
        regions=("beijing", "shanghai"), pops=2, clients_per_region=2,
        cycles=2, seed=seed)


@pytest.fixture(scope="module")
def small_campaign():
    return _small_campaign()


class TestSurvivalCampaign:
    def test_every_session_survives_the_blackout(self, small_campaign):
        result = small_campaign
        assert result.lost == 0
        assert result.completed == 2 * 2 * 2  # regions x clients x cycles
        assert result.migrations > 0

    def test_sessions_resume_from_mid_file_checkpoints(self, small_campaign):
        resumes = [event for event in small_campaign.events
                   if event.kind == "resume"]
        assert resumes
        assert all(event.detail[0] > 0 for event in resumes)

    def test_victim_degrades_and_recovers(self, small_campaign):
        kinds = [(event.kind, event.region)
                 for event in small_campaign.events]
        degraded = kinds.index(("region-degraded", "beijing"))
        recovered = kinds.index(("region-recovered", "beijing"))
        assert degraded < recovered

    def test_verifier_certifies_the_campaign(self, small_campaign):
        report = SurvivalVerifier().verify_campaign(small_campaign)
        assert report.passed, report.render()
        assert report.sessions == 8
        assert report.dip <= 0.15

    def test_campaign_is_byte_identical_per_seed(self, small_campaign):
        again = _small_campaign()
        assert again.event_digest == small_campaign.event_digest
        assert again.events == small_campaign.events
        assert again.health_log == small_campaign.health_log
        assert again.entry_events == small_campaign.entry_events

    def test_victim_must_be_a_campaign_region(self):
        with pytest.raises(MeasurementError):
            run_survival_campaign(regions=("beijing",), victim="shanghai")
