"""Tests for the Great Firewall: poisoning, resets, DPI, probing."""

import pytest

from repro.dns.records import DnsRecord
from repro.dns.resolver import _CacheEntry
from repro.errors import ConnectionReset, ConnectionTimeout
from repro.gfw import (
    BlockPolicy,
    GfwConfig,
    MeekClassifier,
    ShadowsocksClassifier,
    default_china_policy,
)
from repro.gfw.flow_table import FlowState, FlowTable, canonical_flow
from repro.measure import Testbed
from repro.net import OPAQUE_STREAM, WireFeatures


def prime_true_address(testbed):
    """Emulate a hosts-file entry with the genuine Scholar address."""
    testbed.resolver.cache["scholar.google.com"] = _CacheEntry(
        (DnsRecord("scholar.google.com", "A", "172.217.194.80", 1e9),),
        1e9, "NOERROR")


# -- policy ------------------------------------------------------------------

def test_policy_domain_matching():
    policy = default_china_policy()
    assert policy.domain_blocked("scholar.google.com")
    assert policy.domain_blocked("google.com")
    assert not policy.domain_blocked("notgoogle.com")
    assert not policy.domain_blocked(None)


def test_policy_unblock():
    policy = default_china_policy()
    policy.unblock_domain("google.com")
    assert not policy.domain_blocked("scholar.google.com")


def test_policy_ip_prefix_blocking():
    policy = BlockPolicy()
    policy.block_prefix("47.88.0.0/16")
    from repro.net import IPv4Address
    assert policy.ip_blocked(IPv4Address("47.88.1.100"))
    assert not policy.ip_blocked(IPv4Address("47.89.1.100"))


def test_policy_keyword_hit():
    policy = default_china_policy()
    assert policy.keyword_hit("a page about FALUN practice") == "falun"
    assert policy.keyword_hit("weather in beijing") is None
    assert policy.keyword_hit("") is None


# -- flow table ------------------------------------------------------------------

def test_canonical_flow_is_direction_independent():
    forward = ("tcp", "1.1.1.1", 1000, "2.2.2.2", 80)
    reverse = ("tcp", "2.2.2.2", 80, "1.1.1.1", 1000)
    assert canonical_flow(forward) == canonical_flow(reverse)
    assert canonical_flow(None) is None


def test_flow_table_accumulates_and_penalizes():
    table = FlowTable()
    flow = ("tcp", "1.1.1.1", 1000, "2.2.2.2", 80)
    state = table.observe(flow, 100, now=1.0)
    table.observe(flow, 200, now=2.0)
    assert state.packets == 2 and state.bytes == 300
    table.penalize("1.1.1.1", "2.2.2.2", until=10.0)
    assert table.penalized("1.1.1.1", "2.2.2.2", now=5.0)
    assert table.penalized("2.2.2.2", "1.1.1.1", now=5.0)
    assert not table.penalized("1.1.1.1", "2.2.2.2", now=11.0)


# -- end-to-end blocking -------------------------------------------------------------

def test_dns_poisoning_blackholes_direct_access():
    testbed = Testbed()
    result = testbed.run_process(testbed.browser().load(testbed.scholar_page))
    assert not result.succeeded
    assert "Timeout" in result.error or "Reset" in result.error
    assert testbed.gfw.stats.dns_injections >= 1


def test_sni_reset_kills_hosts_file_bypass():
    testbed = Testbed()
    prime_true_address(testbed)
    result = testbed.run_process(testbed.browser().load(testbed.scholar_page))
    assert not result.succeeded
    assert testbed.gfw.stats.sni_resets >= 1


def test_control_site_unaffected():
    testbed = Testbed()
    result = testbed.run_process(testbed.browser().load(testbed.control_page))
    assert result.succeeded, result.error


def test_gfw_disabled_restores_scholar_access():
    testbed = Testbed(gfw_enabled=False)
    result = testbed.run_process(testbed.browser().load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_ip_blocking_blackholes_even_good_dns():
    testbed = Testbed()
    testbed.policy.unblock_domain("google.com")  # DNS now resolves truly
    testbed.policy.block_ip("172.217.194.80")

    result = testbed.run_process(testbed.browser().load(testbed.scholar_page))
    assert not result.succeeded
    assert testbed.gfw.stats.ip_blocked > 0


def test_keyword_filter_resets_and_penalizes():
    testbed = Testbed()

    def body(sim):
        transport = testbed.transport_of(testbed.client)
        conn = yield transport.connect_tcp("93.184.216.34", 80)
        conn.send_message(
            200, meta="query",
            features=WireFeatures(protocol_tag="plain-http",
                                  plaintext="search falun news"))
        yield conn.recv_message()

    with pytest.raises(ConnectionReset):
        testbed.run_process(body(testbed.sim))
    assert testbed.gfw.stats.keyword_resets == 1

    # Within the penalty window even innocent traffic between the pair dies.
    def body2(sim):
        transport = testbed.transport_of(testbed.client)
        conn = yield transport.connect_tcp("93.184.216.34", 80, timeout=20.0)
        return conn

    with pytest.raises((ConnectionReset, ConnectionTimeout)):
        testbed.run_process(body2(testbed.sim))


def test_keyword_penalty_expires():
    testbed = Testbed()

    def trigger(sim):
        transport = testbed.transport_of(testbed.client)
        conn = yield transport.connect_tcp("93.184.216.34", 80)
        try:
            conn.send_message(
                200, meta="query",
                features=WireFeatures(protocol_tag="plain-http",
                                      plaintext="falun"))
            yield conn.recv_message()
        except ConnectionReset:
            pass
        yield sim.timeout(120.0)  # outlive the 90 s penalty
        conn2 = yield transport.connect_tcp("93.184.216.34", 80, timeout=20.0)
        return conn2.state

    assert testbed.run_process(trigger(testbed.sim)) == "ESTABLISHED"


# -- DPI classifiers ----------------------------------------------------------------------

def make_state():
    return FlowState(key=("tcp", "a", 1, "b", 2), first_seen=0.0)


def test_shadowsocks_classifier_needs_all_three_features():
    classifier = ShadowsocksClassifier()
    policy = BlockPolicy()

    class FakePacket:
        def __init__(self, features):
            self.features = features

    ss_like = WireFeatures(protocol_tag="unknown-stream", entropy=8.0,
                           length_signature=83)
    assert classifier.classify(FakePacket(ss_like), make_state(), policy) \
        == ("shadowsocks", 0.75)

    no_signature = WireFeatures(protocol_tag="unknown-stream", entropy=8.0,
                                length_signature=None)
    assert classifier.classify(FakePacket(no_signature), make_state(), policy) is None

    low_entropy = WireFeatures(protocol_tag="unknown-stream", entropy=4.0,
                               length_signature=83)
    assert classifier.classify(FakePacket(low_entropy), make_state(), policy) is None

    framed = WireFeatures(protocol_tag="tls", entropy=8.0, length_signature=83)
    assert classifier.classify(FakePacket(framed), make_state(), policy) is None


def test_meek_classifier_requires_front_and_cadence():
    classifier = MeekClassifier(min_polls=3)
    policy = BlockPolicy()
    state = make_state()

    class FakePacket:
        def __init__(self, features, size=300):
            self.features = features
            self.size = size

    hello = WireFeatures(protocol_tag="tls", handshake=True,
                         sni="cdn.azureedge.example")
    assert classifier.classify(FakePacket(hello), state, policy) is None
    poll = WireFeatures(protocol_tag="tls", entropy=7.9)
    results = [classifier.classify(FakePacket(poll), state, policy)
               for _ in range(4)]
    assert ("tor-meek", 0.9) in results

    # Without the front-domain handshake, cadence alone is not enough.
    fresh = make_state()
    assert all(
        classifier.classify(FakePacket(poll), fresh, policy) is None
        for _ in range(6))


def test_interference_drops_scale_with_label():
    """Flows labeled tor-meek lose far more packets than unlabeled ones."""
    testbed = Testbed()
    transport = testbed.transport_of(testbed.client)
    meek_features = WireFeatures(protocol_tag="tls", entropy=7.9)

    def body(sim):
        conn = yield transport.connect_tcp(
            "47.88.1.100", 443,
            features=WireFeatures(protocol_tag="tls", handshake=True,
                                  sni="cdn.azureedge.example"))
        for _ in range(200):
            conn.send_message(400, meta="poll", features=meek_features)
            yield sim.timeout(0.1)
        yield sim.timeout(5.0)
        return conn

    testbed.transport_of(testbed.remote_vm).listen_tcp(443, lambda c: None)
    testbed.run_process(body(testbed.sim))
    assert testbed.gfw.stats.flows_labeled.get("tor-meek", 0) >= 1
    assert testbed.gfw.stats.interference_drops > 0


# -- active probing ----------------------------------------------------------------------------

def probe_world(personality):
    """A testbed with a server that hangs / answers / resets on garbage."""
    testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                           active_probing=True))
    transport = testbed.transport_of(testbed.remote_vm)

    def acceptor(conn):
        def server(sim, conn):
            while True:
                meta = yield conn.recv_message()
                if meta is None:
                    return
                if personality == "hang":
                    continue  # classic Shadowsocks: swallow garbage forever
                if personality == "http":
                    conn.send_message(400, meta=("http-400",))
                elif personality == "rst":
                    conn.abort()
                    return
        testbed.sim.process(server(testbed.sim, conn))
    transport.listen_tcp(8388, acceptor)
    return testbed


def drive_ss_like_flow(testbed):
    """Send a Shadowsocks-shaped flow to trigger suspicion."""
    transport = testbed.transport_of(testbed.client)

    def body(sim):
        conn = yield transport.connect_tcp("47.88.1.100", 8388,
                                           features=OPAQUE_STREAM)
        first = WireFeatures(protocol_tag="unknown-stream", entropy=8.0,
                             length_signature=83)
        conn.send_message(83, meta="ss-request", features=first)
        for _ in range(5):
            conn.send_message(600, meta="data", features=OPAQUE_STREAM)
            yield sim.timeout(0.2)
        yield sim.timeout(60.0)  # leave room for the probe

    testbed.run_process(body(testbed.sim))


def test_active_probe_confirms_and_blocks_hanging_proxy():
    testbed = probe_world("hang")
    drive_ss_like_flow(testbed)
    assert testbed.gfw.stats.probes_dispatched == 1
    assert testbed.prober.results and testbed.prober.results[0].confirmed
    from repro.net import IPv4Address
    assert testbed.policy.ip_blocked(IPv4Address("47.88.1.100"))


def test_active_probe_spares_http_like_server():
    testbed = probe_world("http")
    drive_ss_like_flow(testbed)
    assert testbed.gfw.stats.probes_dispatched == 1
    assert testbed.prober.results and not testbed.prober.results[0].confirmed
    from repro.net import IPv4Address
    assert not testbed.policy.ip_blocked(IPv4Address("47.88.1.100"))


def test_probing_disabled_by_default():
    testbed = probe_world("hang")
    testbed.gfw_config.active_probing = False
    drive_ss_like_flow(testbed)
    assert testbed.gfw.stats.probes_dispatched == 0
