"""Per-rule unit tests for reprolint: positive and negative fixtures,
suppression comments, scope/exemption handling, and config overrides."""

import textwrap

from repro.analysis import Analyzer, Config, Severity, in_scope, module_name_for
from pathlib import Path


def lint(source, module="repro.net.fixture", config=None):
    analyzer = Analyzer(config=config if config is not None else Config())
    return analyzer.analyze_source(textwrap.dedent(source), module=module)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# -- det-wallclock -------------------------------------------------------------------

def test_wallclock_time_flagged():
    findings = lint("""
        import time
        def stamp():
            return time.time()
    """, module="repro.sim.fixture")
    assert rule_ids(findings) == ["det-wallclock"]


def test_wallclock_datetime_flagged():
    findings = lint("""
        import datetime
        a = datetime.datetime.now()
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["det-wallclock"]


def test_sim_now_not_flagged():
    assert lint("def f(sim):\n    return sim.now\n") == []


def test_wallclock_out_of_scope_not_flagged():
    assert lint("import time\nt = time.time()\n",
                module="repro.realnet.fixture") == []


# -- det-ambient-random --------------------------------------------------------------

def test_ambient_random_call_flagged():
    findings = lint("import random\nx = random.random()\n")
    assert rule_ids(findings) == ["det-ambient-random"]


def test_ambient_random_import_from_flagged():
    findings = lint("from random import choice, shuffle\n")
    assert rule_ids(findings) == ["det-ambient-random"]


def test_import_of_random_class_ok():
    assert lint("from random import Random\n") == []


def test_stream_draws_not_flagged():
    assert lint("""
        def loss(rng):
            return rng.random() < 0.5
    """) == []


# -- det-seeded-random ---------------------------------------------------------------

def test_unseeded_random_flagged():
    findings = lint("import random\nrng = random.Random()\n")
    assert rule_ids(findings) == ["det-seeded-random"]
    assert "OS entropy" in findings[0].message


def test_literal_seed_flagged_with_location():
    findings = lint("import random\n\nrng = random.Random(0x67F)\n",
                    module="repro.gfw.fixture")
    assert rule_ids(findings) == ["det-seeded-random"]
    assert findings[0].line == 3
    assert "1663" in findings[0].message


def test_derived_seed_construction_flagged():
    findings = lint("""
        import random
        def make(seed):
            return random.Random(seed)
    """)
    assert rule_ids(findings) == ["det-seeded-random"]
    assert "injected rng" in findings[0].message


def test_registry_module_exempt():
    assert lint("import random\nstream = random.Random(derived)\n",
                module="repro.sim.rng") == []


def test_injected_rng_annotation_ok():
    assert lint("""
        import random
        import typing as t
        def f(rng: t.Optional[random.Random] = None):
            return rng
    """) == []


# -- det-urandom ---------------------------------------------------------------------

def test_urandom_flagged_in_middleware():
    findings = lint("import os\niv = os.urandom(16)\n",
                    module="repro.middleware.fixture")
    assert rule_ids(findings) == ["det-urandom"]


def test_urandom_allowed_in_realnet():
    assert lint("import os\niv = os.urandom(16)\n",
                module="repro.realnet.fixture") == []


def test_secrets_and_uuid4_flagged():
    findings = lint("""
        import secrets
        import uuid
        a = secrets.token_bytes(8)
        b = uuid.uuid4()
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["det-urandom", "det-urandom"]


# -- sim-forbidden-import / sim-blocking-call ----------------------------------------

def test_threading_import_flagged():
    findings = lint("import threading\n", module="repro.sim.fixture")
    assert rule_ids(findings) == ["sim-forbidden-import"]


def test_asyncio_from_import_flagged():
    findings = lint("from asyncio import StreamReader\n",
                    module="repro.http.fixture")
    assert rule_ids(findings) == ["sim-forbidden-import"]


def test_realnet_exempt_from_import_rule():
    assert lint("import asyncio\nimport socket\n",
                module="repro.realnet.fixture") == []


def test_sim_sockets_module_exempt():
    assert lint("import socket\n", module="repro.transport.sockets") == []


def test_relative_import_not_flagged():
    assert lint("from ..transport.sockets import Datagram\n") == []


def test_time_sleep_flagged():
    findings = lint("""
        import time
        def wait():
            time.sleep(1.0)
    """, module="repro.transport.tcp")
    assert "sim-blocking-call" in rule_ids(findings)


def test_socket_call_flagged():
    findings = lint("""
        import socket
        s = socket.create_connection(("h", 80))
    """, module="repro.dns.fixture")
    assert rule_ids(findings) == ["sim-forbidden-import", "sim-blocking-call"]


# -- codec-str-bytes -----------------------------------------------------------------

def test_str_over_bytes_literal_flagged():
    findings = lint('x = str(b"\\x00payload")\n', module="repro.crypto.fixture")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_str_over_encode_flagged():
    findings = lint('x = str(name.encode())\n', module="repro.net.packet")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_mixed_concat_flagged():
    findings = lint('frame = "IV:" + b"abc"\n', module="repro.realnet.framing")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_mixed_comparison_flagged():
    findings = lint('ok = header == "MAGIC" == b"MAGIC"\n',
                    module="repro.core.blinding")
    assert "codec-str-bytes" in rule_ids(findings)


def test_bytes_in_fstring_flagged():
    findings = lint('msg = f"got {b\'raw\'}"\n', module="repro.crypto.fixture")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_explicit_decode_ok():
    assert lint('x = payload.decode("utf-8")\ny = b"a" + b"b"\n',
                module="repro.crypto.fixture") == []


def test_codec_rule_scoped_to_wire_modules():
    # str(bytes) is sloppy but harmless in, say, report formatting.
    assert lint('x = str(b"abc")\n', module="repro.measure.report") == []


# -- process rules -------------------------------------------------------------------

def test_uninvoked_process_body_flagged():
    findings = lint("""
        def body(sim):
            yield sim.timeout(1.0)
        def start(sim):
            sim.process(body)
    """, module="repro.http.fixture")
    assert rule_ids(findings) == ["process-uninvoked"]


def test_invoked_process_body_ok():
    assert lint("""
        def body(sim):
            yield sim.timeout(1.0)
        def start(sim):
            sim.process(body(sim), name="worker")
    """, module="repro.http.fixture") == []


def test_lambda_process_body_flagged():
    findings = lint("""
        def start(sim):
            sim.process(lambda: None)
    """, module="repro.http.fixture")
    assert rule_ids(findings) == ["process-uninvoked"]


def test_process_yield_literal_flagged():
    findings = lint("""
        def body(sim):
            yield 42
            yield sim.timeout(1.0)
        def start(sim):
            sim.process(body(sim))
    """, module="repro.middleware.fixture")
    assert rule_ids(findings) == ["process-yield-literal"]
    assert "42" in findings[0].message


def test_plain_generator_yielding_literals_ok():
    # An ordinary iterator generator is not a process body.
    assert lint("""
        def chunks():
            yield 1
            yield 2
    """) == []


# -- suppressions --------------------------------------------------------------------

def test_line_suppression_applies_to_that_line_only():
    findings = lint("""
        import random
        a = random.Random(0)  # reprolint: disable=det-seeded-random
        b = random.Random(1)
    """)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_file_suppression_applies_everywhere():
    findings = lint("""
        # reprolint: disable=det-seeded-random
        import random
        a = random.Random(0)
        b = random.Random(1)
    """)
    assert findings == []


def test_disable_all_suppresses_every_rule():
    findings = lint("""
        # reprolint: disable=all
        import threading
        import random
        a = random.Random(0)
    """, module="repro.sim.fixture")
    assert findings == []


def test_suppression_of_other_rule_does_not_leak():
    findings = lint(
        "import random\n"
        "a = random.Random(0)  # reprolint: disable=det-wallclock\n")
    assert rule_ids(findings) == ["det-seeded-random"]


# -- engine: config, scopes, severity ------------------------------------------------

def test_enabled_subset_filters_rules():
    config = Config(enabled=frozenset({"det-wallclock"}))
    findings = lint("import random\nx = random.Random(0)\n", config=config)
    assert findings == []


def test_severity_override_downgrades_to_warning():
    config = Config(severities={"det-seeded-random": Severity.WARNING})
    findings = lint("import random\nx = random.Random(0)\n", config=config)
    assert [f.severity for f in findings] == [Severity.WARNING]


def test_scope_override_widens_rule():
    config = Config(scopes={"det-wallclock": ("repro",)})
    findings = lint("import time\nt = time.time()\n",
                    module="repro.realnet.fixture", config=config)
    assert rule_ids(findings) == ["det-wallclock"]


def test_exempt_paths_skip_files(tmp_path):
    bad = tmp_path / "repro" / "net" / "vendored.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.Random(0)\n")
    flagged = Analyzer(config=Config()).analyze_paths([bad])
    assert rule_ids(flagged) == ["det-seeded-random"]
    exempted = Analyzer(config=Config(exempt_paths=("*/vendored.py",)))
    assert exempted.analyze_paths([bad]) == []


def test_syntax_error_reported_as_finding():
    findings = lint("def broken(:\n")
    assert rule_ids(findings) == ["parse-error"]


def test_module_name_for_paths():
    assert module_name_for(Path("src/repro/net/link.py")) == "repro.net.link"
    assert module_name_for(Path("src/repro/sim/__init__.py")) == "repro.sim"
    assert module_name_for(Path("elsewhere/tool.py")) == "tool"


def test_in_scope_prefix_matching():
    assert in_scope("repro.net.link", ("repro.net",))
    assert not in_scope("repro.network", ("repro.net",))
    assert in_scope("repro.net", ("repro.net",))


def test_findings_are_jsonable_and_sorted():
    findings = lint("""
        import random
        import threading
        b = random.Random(1)
    """, module="repro.sim.fixture")
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    payload = findings[0].to_dict()
    assert set(payload) == {"rule", "severity", "path", "line", "col", "message"}


# -- silent-except -------------------------------------------------------------------

def test_silent_except_pass_flagged():
    findings = lint("""
        def pump():
            try:
                step()
            except Exception:
                pass
    """)
    assert rule_ids(findings) == ["silent-except"]


def test_silent_bare_except_flagged():
    findings = lint("""
        def pump():
            try:
                step()
            except:
                return None
    """)
    assert rule_ids(findings) == ["silent-except"]


def test_silent_except_in_tuple_flagged():
    findings = lint("""
        def pump():
            for item in items:
                try:
                    step(item)
                except (ValueError, Exception):
                    continue
    """)
    assert rule_ids(findings) == ["silent-except"]


def test_narrow_except_not_flagged():
    assert lint("""
        def pump():
            try:
                step()
            except ValueError:
                pass
    """) == []


def test_handled_broad_except_not_flagged():
    assert lint("""
        def pump():
            try:
                step()
            except Exception as exc:
                log(exc)
                raise
    """) == []


def test_silent_except_exempt_in_analysis():
    assert lint("""
        try:
            step()
        except Exception:
            pass
    """, module="repro.analysis.fixture") == []


def test_silent_except_suppression_comment():
    findings = lint("""
        try:
            step()
        except Exception:  # reprolint: disable=silent-except
            pass
    """)
    assert findings == []


# -- unbounded-queue ------------------------------------------------------------


def test_unbounded_growth_in_forever_loop_flagged():
    findings = lint("""
        def pump(queue):
            backlog = []
            while True:
                backlog.append(recv())
    """)
    assert rule_ids(findings) == ["unbounded-queue"]


def test_per_iteration_batch_not_flagged():
    assert lint("""
        def pump(queue):
            while True:
                batch = []
                batch.append(recv())
                flush(batch)
    """) == []


def test_dataclass_list_field_flagged():
    findings = lint("""
        from dataclasses import dataclass, field

        @dataclass
        class FlowState:
            recent: list = field(default_factory=list)
    """)
    assert rule_ids(findings) == ["unbounded-queue"]


def test_dataclass_lambda_list_and_bare_deque_flagged():
    findings = lint("""
        import dataclasses
        from collections import deque
        from dataclasses import field

        @dataclasses.dataclass(frozen=True)
        class FlowState:
            times: object = field(default_factory=lambda: [])
            waiting: object = field(default_factory=deque)
            worst: object = field(default_factory=lambda: deque(maxlen=None))
    """)
    assert rule_ids(findings) == ["unbounded-queue"] * 3


def test_dataclass_bounded_deque_not_flagged():
    assert lint("""
        from collections import deque
        from dataclasses import dataclass, field

        @dataclass
        class FlowState:
            recent: object = field(default_factory=lambda: deque(maxlen=64))
            counts: dict = field(default_factory=dict)
            name: object = field(default_factory=str)
    """) == []


def test_dataclass_field_out_of_scope_not_flagged():
    assert lint("""
        from dataclasses import dataclass, field

        @dataclass
        class Report:
            rows: list = field(default_factory=list)
    """, module="repro.measure.fixture") == []


def test_dataclass_field_suppression_comment():
    assert lint("""
        from dataclasses import dataclass, field

        @dataclass
        class Audit:
            log: list = field(default_factory=list)  # reprolint: disable=unbounded-queue
    """) == []
