"""Per-rule unit tests for reprolint: positive and negative fixtures,
suppression comments, scope/exemption handling, and config overrides."""

import textwrap

from repro.analysis import Analyzer, Config, Severity, in_scope, module_name_for
from pathlib import Path


def lint(source, module="repro.net.fixture", config=None):
    analyzer = Analyzer(config=config if config is not None else Config())
    return analyzer.analyze_source(textwrap.dedent(source), module=module)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# -- det-wallclock -------------------------------------------------------------------

def test_wallclock_time_flagged():
    findings = lint("""
        import time
        def stamp():
            return time.time()
    """, module="repro.sim.fixture")
    assert rule_ids(findings) == ["det-wallclock"]


def test_wallclock_datetime_flagged():
    findings = lint("""
        import datetime
        a = datetime.datetime.now()
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["det-wallclock"]


def test_sim_now_not_flagged():
    assert lint("def f(sim):\n    return sim.now\n") == []


def test_wallclock_out_of_scope_not_flagged():
    assert lint("import time\nt = time.time()\n",
                module="repro.realnet.fixture") == []


# -- det-ambient-random --------------------------------------------------------------

def test_ambient_random_call_flagged():
    findings = lint("import random\nx = random.random()\n")
    assert rule_ids(findings) == ["det-ambient-random"]


def test_ambient_random_import_from_flagged():
    findings = lint("from random import choice, shuffle\n")
    assert rule_ids(findings) == ["det-ambient-random"]


def test_import_of_random_class_ok():
    assert lint("from random import Random\n") == []


def test_stream_draws_not_flagged():
    assert lint("""
        def loss(rng):
            return rng.random() < 0.5
    """) == []


# -- det-seeded-random ---------------------------------------------------------------

def test_unseeded_random_flagged():
    findings = lint("import random\nrng = random.Random()\n")
    assert rule_ids(findings) == ["det-seeded-random"]
    assert "OS entropy" in findings[0].message


def test_literal_seed_flagged_with_location():
    findings = lint("import random\n\nrng = random.Random(0x67F)\n",
                    module="repro.gfw.fixture")
    assert rule_ids(findings) == ["det-seeded-random"]
    assert findings[0].line == 3
    assert "1663" in findings[0].message


def test_derived_seed_construction_flagged():
    findings = lint("""
        import random
        def make(seed):
            return random.Random(seed)
    """)
    assert rule_ids(findings) == ["det-seeded-random"]
    assert "injected rng" in findings[0].message


def test_registry_module_exempt():
    assert lint("import random\nstream = random.Random(derived)\n",
                module="repro.sim.rng") == []


def test_injected_rng_annotation_ok():
    assert lint("""
        import random
        import typing as t
        def f(rng: t.Optional[random.Random] = None):
            return rng
    """) == []


# -- det-urandom ---------------------------------------------------------------------

def test_urandom_flagged_in_middleware():
    findings = lint("import os\niv = os.urandom(16)\n",
                    module="repro.middleware.fixture")
    assert rule_ids(findings) == ["det-urandom"]


def test_urandom_allowed_in_realnet():
    assert lint("import os\niv = os.urandom(16)\n",
                module="repro.realnet.fixture") == []


def test_secrets_and_uuid4_flagged():
    findings = lint("""
        import secrets
        import uuid
        a = secrets.token_bytes(8)
        b = uuid.uuid4()
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["det-urandom", "det-urandom"]


# -- sim-forbidden-import / sim-blocking-call ----------------------------------------

def test_threading_import_flagged():
    findings = lint("import threading\n", module="repro.sim.fixture")
    assert rule_ids(findings) == ["sim-forbidden-import"]


def test_asyncio_from_import_flagged():
    findings = lint("from asyncio import StreamReader\n",
                    module="repro.http.fixture")
    assert rule_ids(findings) == ["sim-forbidden-import"]


def test_realnet_exempt_from_import_rule():
    assert lint("import asyncio\nimport socket\n",
                module="repro.realnet.fixture") == []


def test_sim_sockets_module_exempt():
    assert lint("import socket\n", module="repro.transport.sockets") == []


def test_relative_import_not_flagged():
    assert lint("from ..transport.sockets import Datagram\n") == []


def test_time_sleep_flagged():
    findings = lint("""
        import time
        def wait():
            time.sleep(1.0)
    """, module="repro.transport.tcp")
    assert "sim-blocking-call" in rule_ids(findings)


def test_socket_call_flagged():
    findings = lint("""
        import socket
        s = socket.create_connection(("h", 80))
    """, module="repro.dns.fixture")
    assert rule_ids(findings) == ["sim-forbidden-import", "sim-blocking-call"]


# -- codec-str-bytes -----------------------------------------------------------------

def test_str_over_bytes_literal_flagged():
    findings = lint('x = str(b"\\x00payload")\n', module="repro.crypto.fixture")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_str_over_encode_flagged():
    findings = lint('x = str(name.encode())\n', module="repro.net.packet")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_mixed_concat_flagged():
    findings = lint('frame = "IV:" + b"abc"\n', module="repro.realnet.framing")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_mixed_comparison_flagged():
    findings = lint('ok = header == "MAGIC" == b"MAGIC"\n',
                    module="repro.core.blinding")
    assert "codec-str-bytes" in rule_ids(findings)


def test_bytes_in_fstring_flagged():
    findings = lint('msg = f"got {b\'raw\'}"\n', module="repro.crypto.fixture")
    assert rule_ids(findings) == ["codec-str-bytes"]


def test_explicit_decode_ok():
    assert lint('x = payload.decode("utf-8")\ny = b"a" + b"b"\n',
                module="repro.crypto.fixture") == []


def test_codec_rule_scoped_to_wire_modules():
    # str(bytes) is sloppy but harmless in, say, report formatting.
    assert lint('x = str(b"abc")\n', module="repro.measure.report") == []


# -- process rules -------------------------------------------------------------------

def test_uninvoked_process_body_flagged():
    findings = lint("""
        def body(sim):
            yield sim.timeout(1.0)
        def start(sim):
            sim.process(body)
    """, module="repro.http.fixture")
    assert rule_ids(findings) == ["process-uninvoked"]


def test_invoked_process_body_ok():
    assert lint("""
        def body(sim):
            yield sim.timeout(1.0)
        def start(sim):
            sim.process(body(sim), name="worker")
    """, module="repro.http.fixture") == []


def test_lambda_process_body_flagged():
    findings = lint("""
        def start(sim):
            sim.process(lambda: None)
    """, module="repro.http.fixture")
    assert rule_ids(findings) == ["process-uninvoked"]


def test_process_yield_literal_flagged():
    findings = lint("""
        def body(sim):
            yield 42
            yield sim.timeout(1.0)
        def start(sim):
            sim.process(body(sim))
    """, module="repro.middleware.fixture")
    assert rule_ids(findings) == ["process-yield-literal"]
    assert "42" in findings[0].message


def test_plain_generator_yielding_literals_ok():
    # An ordinary iterator generator is not a process body.
    assert lint("""
        def chunks():
            yield 1
            yield 2
    """) == []


# -- suppressions --------------------------------------------------------------------

def test_line_suppression_applies_to_that_line_only():
    findings = lint("""
        import random
        a = random.Random(0)  # reprolint: disable=det-seeded-random
        b = random.Random(1)
    """)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_file_suppression_applies_everywhere():
    findings = lint("""
        # reprolint: disable=det-seeded-random
        import random
        a = random.Random(0)
        b = random.Random(1)
    """)
    assert findings == []


def test_disable_all_suppresses_every_rule():
    findings = lint("""
        # reprolint: disable=all
        import threading
        import random
        a = random.Random(0)
    """, module="repro.sim.fixture")
    assert findings == []


def test_suppression_of_other_rule_does_not_leak():
    findings = lint(
        "import random\n"
        "a = random.Random(0)  # reprolint: disable=det-wallclock\n")
    # The seeded-random finding is NOT suppressed by the det-wallclock
    # token, and the token itself — suppressing nothing — is now stale.
    assert sorted(rule_ids(findings)) == [
        "det-seeded-random", "stale-suppression"]


# -- engine: config, scopes, severity ------------------------------------------------

def test_enabled_subset_filters_rules():
    config = Config(enabled=frozenset({"det-wallclock"}))
    findings = lint("import random\nx = random.Random(0)\n", config=config)
    assert findings == []


def test_severity_override_downgrades_to_warning():
    config = Config(severities={"det-seeded-random": Severity.WARNING})
    findings = lint("import random\nx = random.Random(0)\n", config=config)
    assert [f.severity for f in findings] == [Severity.WARNING]


def test_scope_override_widens_rule():
    config = Config(scopes={"det-wallclock": ("repro",)})
    findings = lint("import time\nt = time.time()\n",
                    module="repro.realnet.fixture", config=config)
    assert rule_ids(findings) == ["det-wallclock"]


def test_exempt_paths_skip_files(tmp_path):
    bad = tmp_path / "repro" / "net" / "vendored.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.Random(0)\n")
    flagged = Analyzer(config=Config()).analyze_paths([bad])
    assert rule_ids(flagged) == ["det-seeded-random"]
    exempted = Analyzer(config=Config(exempt_paths=("*/vendored.py",)))
    assert exempted.analyze_paths([bad]) == []


def test_syntax_error_reported_as_finding():
    findings = lint("def broken(:\n")
    assert rule_ids(findings) == ["parse-error"]


def test_module_name_for_paths():
    assert module_name_for(Path("src/repro/net/link.py")) == "repro.net.link"
    assert module_name_for(Path("src/repro/sim/__init__.py")) == "repro.sim"
    assert module_name_for(Path("elsewhere/tool.py")) == "tool"


def test_in_scope_prefix_matching():
    assert in_scope("repro.net.link", ("repro.net",))
    assert not in_scope("repro.network", ("repro.net",))
    assert in_scope("repro.net", ("repro.net",))


def test_findings_are_jsonable_and_sorted():
    findings = lint("""
        import random
        import threading
        b = random.Random(1)
    """, module="repro.sim.fixture")
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    payload = findings[0].to_dict()
    assert set(payload) == {"rule", "severity", "path", "line", "col", "message"}


# -- silent-except -------------------------------------------------------------------

def test_silent_except_pass_flagged():
    findings = lint("""
        def pump():
            try:
                step()
            except Exception:
                pass
    """)
    assert rule_ids(findings) == ["silent-except"]


def test_silent_bare_except_flagged():
    findings = lint("""
        def pump():
            try:
                step()
            except:
                return None
    """)
    assert rule_ids(findings) == ["silent-except"]


def test_silent_except_in_tuple_flagged():
    findings = lint("""
        def pump():
            for item in items:
                try:
                    step(item)
                except (ValueError, Exception):
                    continue
    """)
    assert rule_ids(findings) == ["silent-except"]


def test_narrow_except_not_flagged():
    assert lint("""
        def pump():
            try:
                step()
            except ValueError:
                pass
    """) == []


def test_handled_broad_except_not_flagged():
    assert lint("""
        def pump():
            try:
                step()
            except Exception as exc:
                log(exc)
                raise
    """) == []


def test_silent_except_exempt_in_analysis():
    assert lint("""
        try:
            step()
        except Exception:
            pass
    """, module="repro.analysis.fixture") == []


def test_silent_except_suppression_comment():
    findings = lint("""
        try:
            step()
        except Exception:  # reprolint: disable=silent-except
            pass
    """)
    assert findings == []


# -- unbounded-queue ------------------------------------------------------------


def test_unbounded_growth_in_forever_loop_flagged():
    findings = lint("""
        def pump(queue):
            backlog = []
            while True:
                backlog.append(recv())
    """)
    assert rule_ids(findings) == ["unbounded-queue"]


def test_per_iteration_batch_not_flagged():
    assert lint("""
        def pump(queue):
            while True:
                batch = []
                batch.append(recv())
                flush(batch)
    """) == []


def test_dataclass_list_field_flagged():
    findings = lint("""
        from dataclasses import dataclass, field

        @dataclass
        class FlowState:
            recent: list = field(default_factory=list)
    """)
    assert rule_ids(findings) == ["unbounded-queue"]


def test_dataclass_lambda_list_and_bare_deque_flagged():
    findings = lint("""
        import dataclasses
        from collections import deque
        from dataclasses import field

        @dataclasses.dataclass(frozen=True)
        class FlowState:
            times: object = field(default_factory=lambda: [])
            waiting: object = field(default_factory=deque)
            worst: object = field(default_factory=lambda: deque(maxlen=None))
    """)
    assert rule_ids(findings) == ["unbounded-queue"] * 3


def test_dataclass_bounded_deque_not_flagged():
    assert lint("""
        from collections import deque
        from dataclasses import dataclass, field

        @dataclass
        class FlowState:
            recent: object = field(default_factory=lambda: deque(maxlen=64))
            counts: dict = field(default_factory=dict)
            name: object = field(default_factory=str)
    """) == []


def test_dataclass_field_out_of_scope_not_flagged():
    assert lint("""
        from dataclasses import dataclass, field

        @dataclass
        class Report:
            rows: list = field(default_factory=list)
    """, module="repro.measure.fixture") == []


def test_dataclass_field_suppression_comment():
    assert lint("""
        from dataclasses import dataclass, field

        @dataclass
        class Audit:
            log: list = field(default_factory=list)  # reprolint: disable=unbounded-queue
    """) == []


# -- leak-on-error-path (dataflow) ---------------------------------------------------

def test_leak_on_error_path_flagged():
    findings = lint("""
        class Proxy:
            def serve(self, transport, conn):
                remote = yield transport.connect_tcp("host", 443, timeout=5.0)
                conn.send_message(8, meta=("x",))
                remote.close()
    """, module="repro.core.fixture")
    assert "leak-on-error-path" in rule_ids(findings)
    finding = next(f for f in findings if f.rule == "leak-on-error-path")
    assert "`remote`" in finding.message


def test_leak_released_on_error_path_clean():
    assert lint("""
        class Proxy:
            def serve(self, transport, conn):
                remote = yield transport.connect_tcp("host", 443, timeout=5.0)
                try:
                    conn.send_message(8, meta=("x",))
                except BaseException:
                    remote.close()
                    raise
                remote.close()
    """, module="repro.core.fixture") == []


def test_leak_rule_out_of_scope_not_flagged():
    assert lint("""
        class Harness:
            def serve(self, transport, conn):
                remote = yield transport.connect_tcp("host", 443, timeout=5.0)
                conn.send_message(8, meta=("x",))
    """, module="repro.measure.fixture") == []


def test_leak_suppression_comment_honored():
    assert lint("""
        class Proxy:
            def serve(self, transport, conn):
                remote = yield transport.connect_tcp("host", 443, timeout=5.0)  # reprolint: disable=leak-on-error-path
                conn.send_message(8, meta=("x",))
    """, module="repro.core.fixture") == []


# -- deadline-unclamped (dataflow) ---------------------------------------------------

def test_unclamped_timeout_next_to_deadline_flagged():
    findings = lint("""
        class Hop:
            def forward(self, transport, deadline):
                conn = yield transport.connect_tcp("host", 443, timeout=30.0)
                conn.close()
    """, module="repro.core.fixture")
    assert "deadline-unclamped" in rule_ids(findings)


def test_clamped_timeout_clean():
    assert lint("""
        class Hop:
            def forward(self, transport, sim, deadline):
                budget = deadline.clamp(30.0, sim.now)
                conn = yield transport.connect_tcp("host", 443, timeout=budget)
                conn.close()
    """, module="repro.core.fixture") == []


def test_timeout_none_and_module_constant_clean():
    assert lint("""
        DIAL_TIMEOUT = 30.0

        class Hop:
            def forward_unbounded(self, transport, deadline):
                a = yield transport.connect_tcp("host", 1, timeout=None)
                a.close()

            def forward_constant(self, transport, deadline):
                b = yield transport.connect_tcp("host", 2, timeout=DIAL_TIMEOUT)
                b.close()
    """, module="repro.core.fixture") == []


def test_function_without_deadline_not_checked():
    assert lint("""
        class Hop:
            def forward(self, transport):
                conn = yield transport.connect_tcp("host", 443, timeout=30.0)
                conn.close()
    """, module="repro.core.fixture") == []


# -- rng-stream-registry (dataflow support tables) -----------------------------------

def test_registry_constructed_outside_owners_flagged():
    findings = lint("""
        def build():
            return RngRegistry(7).stream("mps")
    """, module="repro.policy.fixture")
    assert "rng-stream-registry" in rule_ids(findings)
    assert any("RngRegistry constructed" in f.message for f in findings)


def test_unregistered_stream_name_flagged_with_hint():
    findings = lint("""
        def draw(sim):
            return sim.rng.stream("gfw.interferense")
    """, module="repro.gfw.fixture")
    assert rule_ids(findings) == ["rng-stream-registry"]
    assert "gfw.interference" in findings[0].message  # did-you-mean hint


def test_stream_drawn_outside_owner_flagged():
    findings = lint("""
        def draw(sim):
            return sim.rng.stream("link.loss")
    """, module="repro.gfw.fixture")
    assert rule_ids(findings) == ["rng-stream-registry"]


def test_owned_stream_draw_clean():
    assert lint("""
        def draw(sim):
            return sim.rng.stream("link.loss")
    """, module="repro.net.fixture") == []


def test_dynamic_stream_prefix_checked():
    assert lint("""
        def draw(sim, a, b):
            return sim.rng.stream(f"link:{a}->{b}")
    """, module="repro.net.fixture") == []
    findings = lint("""
        def draw(sim, a, b):
            return sim.rng.stream(f"edge:{a}->{b}")
    """, module="repro.net.fixture")
    assert rule_ids(findings) == ["rng-stream-registry"]


# -- wire-schema (dataflow support tables) -------------------------------------------

def test_wire_tuple_wrong_arity_flagged():
    findings = lint("""
        def hello(conn):
            conn.send_message(16, meta=("sc-overload", 0.05, "extra"))
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["wire-schema"]


def test_wire_tuple_valid_arities_clean():
    assert lint("""
        def hello(conn, token):
            conn.send_message(64, meta=("sc-connect", "host", 443))
            conn.send_message(64, meta=("sc-connect", "host", 443, token))
            conn.send_message(16, meta=("sc-overload", 0.05))
    """, module="repro.core.fixture") == []


def test_wire_guard_wrong_length_flagged():
    findings = lint("""
        def parse(frame):
            if frame[0] == "sc-overload" and len(frame) == 5:
                return frame[1]
            return None
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["wire-schema"]


def test_wire_subscript_past_schema_flagged():
    findings = lint("""
        def parse(frame):
            if frame[0] == "sc-overload":
                return frame[3]
            return None
    """, module="repro.core.fixture")
    assert rule_ids(findings) == ["wire-schema"]
    assert "at most 2" in findings[0].message


def test_wire_untagged_tuple_ignored():
    assert lint("""
        def pack(a, b):
            return (a, b, a, b)
    """, module="repro.core.fixture") == []


# -- stale-suppression ---------------------------------------------------------------

def test_stale_line_suppression_flagged():
    findings = lint("""
        import os

        def ok():
            return os.getcwd()  # reprolint: disable=det-wallclock
    """, module="repro.sim.fixture")
    assert rule_ids(findings) == ["stale-suppression"]
    assert "det-wallclock" in findings[0].message


def test_used_suppression_not_stale():
    assert lint("""
        import time

        def stamp():
            return time.time()  # reprolint: disable=det-wallclock
    """, module="repro.sim.fixture") == []


def test_unknown_rule_id_suppression_flagged():
    findings = lint("""
        x = 1  # reprolint: disable=no-such-rule
    """, module="repro.sim.fixture")
    assert rule_ids(findings) == ["stale-suppression"]
    assert "no-such-rule" in findings[0].message


def test_stale_file_level_suppression_flagged():
    findings = lint("""
        # reprolint: disable=det-seeded-random
        x = 1
    """, module="repro.sim.fixture")
    assert rule_ids(findings) == ["stale-suppression"]


def test_out_of_scope_suppression_not_judged():
    # det-wallclock does not apply in repro.realnet, so an unused
    # disable there is configuration noise, not a stale suppression.
    assert lint("""
        import time

        def stamp():
            return time.time()  # reprolint: disable=det-wallclock
    """, module="repro.realnet.fixture") == []
