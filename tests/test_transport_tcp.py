"""Tests for the TCP model: handshake, transfer, loss recovery, reset."""

import pytest

from repro.errors import ConnectionReset, ConnectionTimeout, TransportError
from repro.net import Network, Verdict
from repro.net.middlebox import Middlebox
from repro.sim import Simulator
from repro.transport import install_transport
from repro.units import Mbps, ms


def two_hosts(loss=0.0, latency=ms(50)):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="203.0.113.1")
    link = net.connect(a, b, latency=latency, bandwidth=Mbps(100), loss=loss)
    net.build_routes()
    ta = install_transport(sim, a)
    tb = install_transport(sim, b)
    return sim, net, ta, tb, link


def echo_acceptor(sim):
    """Accept connections and echo back every message meta."""
    def acceptor(conn):
        def server(sim, conn):
            while True:
                meta = yield conn.recv_message()
                if meta is None:
                    return
                conn.send_message(100, meta=("echo", meta))
        sim.process(server(sim, conn), name="echo-server")
    return acceptor


def test_connect_takes_one_rtt():
    sim, _net, ta, tb, _link = two_hosts()
    tb.listen_tcp(80, lambda conn: None)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        return (sim.now, conn.state)

    when, state = sim.run(until=sim.process(client(sim)))
    assert state == "ESTABLISHED"
    assert when == pytest.approx(2 * ms(50), rel=0.01)


def test_connect_refused_when_no_listener():
    sim, _net, ta, _tb, _link = two_hosts()

    def client(sim):
        yield ta.connect_tcp("203.0.113.1", 81)

    with pytest.raises(ConnectionReset):
        sim.run(until=sim.process(client(sim)))


def test_connect_timeout_on_blackhole():
    sim, _net, ta, _tb, link = two_hosts()

    class Blackhole(Middlebox):
        name = "blackhole"

        def process(self, packet, direction, link):
            return Verdict.DROP

    link.add_middlebox(Blackhole())

    def client(sim):
        yield ta.connect_tcp("203.0.113.1", 80, timeout=5.0)

    with pytest.raises(ConnectionTimeout):
        sim.run(until=sim.process(client(sim)))


def test_message_roundtrip():
    sim, _net, ta, tb, _link = two_hosts()
    tb.listen_tcp(80, echo_acceptor(sim))

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        conn.send_message(500, meta="hello")
        reply = yield conn.recv_message()
        return reply

    assert sim.run(until=sim.process(client(sim))) == ("echo", "hello")


def test_large_transfer_is_complete_and_ordered():
    sim, _net, ta, tb, _link = two_hosts()
    got = []

    def acceptor(conn):
        def server(sim, conn):
            while True:
                meta = yield conn.recv_message()
                if meta is None:
                    return
                got.append(meta)
        sim.process(server(sim, conn))
    tb.listen_tcp(80, acceptor)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        for i in range(10):
            conn.send_message(50_000, meta=i)
        # Wait for everything to flush.
        yield sim.timeout(30.0)

    sim.run(until=sim.process(client(sim)))
    assert got == list(range(10))


def test_transfer_survives_heavy_loss():
    """20% random loss: the transfer completes via retransmission."""
    sim, _net, ta, tb, _link = two_hosts(loss=0.20)
    got = []

    def acceptor(conn):
        def server(sim, conn):
            meta = yield conn.recv_message()
            got.append((sim.now, meta))
        sim.process(server(sim, conn))
    tb.listen_tcp(80, acceptor)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        conn.send_message(100_000, meta="bulk")
        yield sim.timeout(300.0)
        return conn.retransmissions

    retransmissions = sim.run(until=sim.process(client(sim)))
    assert got and got[0][1] == "bulk"
    assert retransmissions > 0


def test_loss_inflates_completion_time():
    """The same transfer takes longer on a lossy path — the PLT mechanism."""
    def completion_time(loss):
        sim, _net, ta, tb, _link = two_hosts(loss=loss)
        done = []

        def acceptor(conn):
            def server(sim, conn):
                yield conn.recv_message()
                done.append(sim.now)
            sim.process(server(sim, conn))
        tb.listen_tcp(80, acceptor)

        def client(sim):
            conn = yield ta.connect_tcp("203.0.113.1", 80)
            conn.send_message(200_000, meta="page")
            yield sim.timeout(300.0)

        sim.run(until=sim.process(client(sim)))
        assert done
        return done[0]

    assert completion_time(0.0) < completion_time(0.08)


def test_rst_injection_resets_connection():
    """A forged on-path RST (the GFW's signature move) kills the flow."""
    from repro.net import Packet
    from repro.transport.tcp import Segment, ACK_SIZE

    sim, net, ta, tb, link = two_hosts()
    tb.listen_tcp(80, echo_acceptor(sim))

    class RstInjector(Middlebox):
        name = "rst-injector"

        def __init__(self):
            self.armed = False

        def process(self, packet, direction, link):
            if self.armed and packet.protocol == "tcp" and packet.payload.length > 0:
                seg = packet.payload
                rst = Segment(seg.dport, seg.sport, seq=0, ack=0,
                              flags=frozenset({"RST"}))
                forged = Packet(src=packet.dst, dst=packet.src, protocol="tcp",
                                payload=rst, size=ACK_SIZE, flow=packet.flow)
                link.inject(forged, toward=net.node("a"))
                self.armed = False
            return Verdict.PASS

    injector = RstInjector()
    link.add_middlebox(injector)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        injector.armed = True
        conn.send_message(500, meta="probe-me")
        yield conn.recv_message()

    with pytest.raises(ConnectionReset):
        sim.run(until=sim.process(client(sim)))


def test_send_on_reset_connection_raises():
    sim, _net, ta, tb, _link = two_hosts()
    tb.listen_tcp(80, echo_acceptor(sim))

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        conn._enter_reset(local=False)
        conn.send_message(10, meta="x")

    with pytest.raises(ConnectionReset):
        sim.run(until=sim.process(client(sim)))


def test_invalid_message_length_rejected():
    sim, _net, ta, tb, _link = two_hosts()
    tb.listen_tcp(80, echo_acceptor(sim))

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        conn.send_message(0, meta="empty")

    with pytest.raises(TransportError):
        sim.run(until=sim.process(client(sim)))


def test_close_delivers_eof():
    sim, _net, ta, tb, _link = two_hosts()
    eof_seen = []

    def acceptor(conn):
        def server(sim, conn):
            meta = yield conn.recv_message()
            assert meta == "only"
            second = yield conn.recv_message()
            eof_seen.append(second)
        sim.process(server(sim, conn))
    tb.listen_tcp(80, acceptor)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        conn.send_message(100, meta="only")
        yield sim.timeout(1.0)
        conn.close()
        yield sim.timeout(1.0)

    sim.run(until=sim.process(client(sim)))
    assert eof_seen == [None]


def test_byte_accounting():
    sim, _net, ta, tb, _link = two_hosts()
    tb.listen_tcp(80, echo_acceptor(sim))

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 80)
        conn.send_message(5000, meta="m")
        yield conn.recv_message()
        return conn

    conn = sim.run(until=sim.process(client(sim)))
    # At least payload + headers went out; ACKs also count.
    assert conn.bytes_sent > 5000
    assert conn.bytes_received == 100


def test_ping_measures_path_rtt():
    sim, _net, ta, _tb, _link = two_hosts(latency=ms(80))

    def client(sim):
        rtt = yield ta.ping("203.0.113.1")
        return rtt

    rtt = sim.run(until=sim.process(client(sim)))
    assert rtt == pytest.approx(2 * ms(80), rel=0.01)


def test_udp_datagram_delivery():
    sim, _net, ta, tb, _link = two_hosts()
    got = []
    tb.listen_udp(53, lambda payload, length, src, sport: got.append(
        (payload, length, str(src))))
    ta.send_udp("203.0.113.1", 53, payload={"q": "scholar"}, length=64)
    sim.run()
    assert got == [({"q": "scholar"}, 64, "10.0.0.1")]


def test_udp_duplicate_bind_rejected():
    sim, _net, _ta, tb, _link = two_hosts()
    tb.listen_udp(53, lambda *a: None)
    with pytest.raises(TransportError):
        tb.listen_udp(53, lambda *a: None)


def test_tcp_duplicate_listen_rejected():
    sim, _net, _ta, tb, _link = two_hosts()
    tb.listen_tcp(80, lambda conn: None)
    with pytest.raises(TransportError):
        tb.listen_tcp(80, lambda conn: None)
