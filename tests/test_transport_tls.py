"""Tests for the simplified TLS layer."""

import pytest

from repro.errors import TransportError
from repro.net import Network
from repro.sim import Simulator
from repro.transport import TlsSession, install_transport
from repro.units import Mbps, ms


def tls_pair(latency=ms(50)):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="203.0.113.1")
    net.connect(a, b, latency=latency, bandwidth=Mbps(100))
    net.build_routes()
    return sim, install_transport(sim, a), install_transport(sim, b)


def run_handshake(sim, ta, tb, resumed=False, sni="scholar.google.com"):
    server_sessions = []

    def acceptor(conn):
        session = TlsSession(conn)

        def server(sim):
            yield from session.server_handshake()
            server_sessions.append(session)
            meta = yield session.recv()
            session.send(2000, meta=("response", meta))
        sim.process(server(sim))
    tb.listen_tcp(443, acceptor)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 443)
        session = TlsSession(conn, sni=sni)
        connect_done = sim.now
        yield from session.client_handshake(resumed=resumed)
        handshake_done = sim.now
        session.send(300, meta="GET /")
        reply = yield session.recv()
        return (connect_done, handshake_done, reply, session)

    result = sim.run(until=sim.process(client(sim)))
    return result, server_sessions


def test_full_handshake_round_trips_and_data():
    sim, ta, tb = tls_pair(latency=ms(50))
    (connected, done, reply, _session), server_sessions = run_handshake(sim, ta, tb)
    assert reply == ("response", "GET /")
    # Full handshake needs 2 extra RTTs beyond connect (0.1s per RTT).
    assert done - connected == pytest.approx(0.2, rel=0.15)
    assert server_sessions[0].sni == "scholar.google.com"


def test_resumed_handshake_is_faster():
    sim_full, ta, tb = tls_pair()
    (c_full, d_full, _r, _s), _ = run_handshake(sim_full, ta, tb, resumed=False)
    sim_res, ta2, tb2 = tls_pair()
    (c_res, d_res, _r2, _s2), _ = run_handshake(sim_res, ta2, tb2, resumed=True)
    assert (d_res - c_res) < (d_full - c_full)


def test_send_before_handshake_rejected():
    sim, ta, tb = tls_pair()
    tb.listen_tcp(443, lambda conn: None)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 443)
        TlsSession(conn).send(100)

    with pytest.raises(TransportError):
        sim.run(until=sim.process(client(sim)))


def test_client_hello_exposes_sni_on_wire():
    """The GFW's SNI filter depends on this observable."""
    from repro.net import PacketCapture
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="203.0.113.1")
    link = net.connect(a, b, latency=ms(10), bandwidth=Mbps(100))
    net.build_routes()
    ta, tb = install_transport(sim, a), install_transport(sim, b)
    capture = PacketCapture(sim).attach(link)

    def acceptor(conn):
        session = TlsSession(conn)

        def server(sim):
            yield from session.server_handshake()
        sim.process(server(sim))
    tb.listen_tcp(443, acceptor)

    def client(sim):
        conn = yield ta.connect_tcp("203.0.113.1", 443)
        session = TlsSession(conn, sni="scholar.google.com")
        yield from session.client_handshake()

    sim.run(until=sim.process(client(sim)))
    # Find ClientHello among captured packets by its SNI-bearing features.
    hello_seen = any(
        p.protocol_tag == "tls" for p in capture.packets)
    assert hello_seen
