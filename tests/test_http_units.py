"""Unit tests for HTTP messages, pages, and server responses."""

import pytest

from repro.http import (
    HttpRequest,
    HttpResponse,
    REQUEST_SIZE,
    RESPONSE_HEADER_SIZE,
    google_scholar_home,
    google_scholar_results,
    parse_url,
    plain_site_page,
)


def test_parse_url_variants():
    assert parse_url("https://scholar.google.com/") == (
        "https", "scholar.google.com", "/")
    assert parse_url("http://a.b/c/d?q=1") == ("http", "a.b", "/c/d?q=1")
    assert parse_url("no-scheme.example") == ("https", "no-scheme.example", "/")
    assert parse_url("https://bare.host") == ("https", "bare.host", "/")


def test_request_url_and_size():
    request = HttpRequest("scholar.google.com", "/scholar?q=x", scheme="https")
    assert request.url == "https://scholar.google.com/scholar?q=x"
    assert request.size() == REQUEST_SIZE


def test_response_size_includes_headers():
    response = HttpResponse(status=200, path="/", body_size=5000)
    assert response.size() == RESPONSE_HEADER_SIZE + 5000


def test_scholar_home_shape():
    page = google_scholar_home()
    assert page.host == "scholar.google.com"
    assert page.records_account
    assert not page.document_cacheable
    beacons = [o for o in page.objects if not o.cacheable]
    static = [o for o in page.objects if o.cacheable]
    assert len(beacons) == 2      # per-view logging beacons
    assert len(static) == 3       # css/js/logo
    # Calibration anchor: total content in the ~15 KB band so a full
    # visit moves roughly the paper's 19 KB on the wire.
    assert 12_000 < page.total_bytes() < 18_000


def test_results_page_is_heavier_document():
    results = google_scholar_results()
    home = google_scholar_home()
    assert results.document_size > 5 * home.document_size


def test_plain_site_page_custom_host():
    page = plain_site_page("www.custom.example")
    assert page.host == "www.custom.example"
    assert not page.records_account


def test_page_url():
    assert google_scholar_home().url == "https://scholar.google.com/"
