"""Tests for Tor: cells, relays, meek, circuit, and GFW interaction."""

import pytest

from repro.errors import MiddlewareError
from repro.measure import Testbed
from repro.middleware.tor import TorMethod, cells_for, wire_bytes
from repro.middleware.tor.cells import CELL_PAYLOAD, CELL_SIZE


def tor_world(**kwargs):
    testbed = Testbed()
    method = TorMethod(testbed, **kwargs)
    testbed.run_process(method.setup())
    return testbed, method


# -- cell arithmetic -------------------------------------------------------------

def test_cells_for_boundaries():
    assert cells_for(0) == 1
    assert cells_for(1) == 1
    assert cells_for(CELL_PAYLOAD) == 1
    assert cells_for(CELL_PAYLOAD + 1) == 2


def test_wire_bytes_are_cell_padded():
    assert wire_bytes(1) == CELL_SIZE
    assert wire_bytes(CELL_PAYLOAD * 3) == 3 * CELL_SIZE
    # Padding is the overhead source: always >= payload.
    assert wire_bytes(100) > 100


# -- bootstrap & page loads -----------------------------------------------------------

def test_tor_bootstraps_and_loads_scholar():
    testbed, method = tor_world()
    assert method.connected
    assert method.bootstrap_time > 2.0  # directory + 3 sequential hops
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_tor_connector_requires_bootstrap():
    with pytest.raises(MiddlewareError):
        TorMethod(Testbed()).connector()


def test_tor_first_time_plt_dominates_subsequent():
    testbed, method = tor_world()
    browser = testbed.browser(connector=method.connector())
    first = testbed.run_process(browser.load(testbed.scholar_page))
    testbed.sim.run(until=testbed.sim.now + 60)
    second = testbed.run_process(browser.load(testbed.scholar_page))
    first_total = method.bootstrap_time + first.plt
    assert first_total > 2 * second.plt  # the paper reports 5.4x


def test_gfw_classifies_meek_and_interferes():
    testbed, method = tor_world()
    browser = testbed.browser(connector=method.connector())
    for _ in range(3):
        testbed.run_process(browser.load(testbed.scholar_page))
        testbed.sim.run(until=testbed.sim.now + 60)
    assert testbed.gfw.stats.flows_labeled.get("tor-meek", 0) >= 1
    assert testbed.gfw.stats.interference_drops > 0


def test_tor_resolves_at_exit_bypassing_poisoning():
    """Tor never does client-side DNS, so poisoning can't touch it."""
    testbed, method = tor_world()
    injections_before = testbed.gfw.poisoner.injections
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    assert result.succeeded
    # The only injection candidates were the meek front lookup
    # (unblocked domain), so no new injections fired for scholar.
    assert testbed.gfw.poisoner.injections == injections_before


def test_tor_stream_refused_for_unreachable_target():
    testbed, method = tor_world()

    def body(sim):
        connector = method.connector()
        stream = yield from connector.open("no-such-host.example", 80,
                                           use_tls=False)
        return stream

    with pytest.raises(MiddlewareError):
        testbed.run_process(body(testbed.sim))


def test_tor_has_no_scalability_attachment():
    """The paper excludes Tor from Figure 7: no bridge control."""
    testbed, method = tor_world()
    with pytest.raises(NotImplementedError):
        list(method.attach_client(testbed.client))


def test_meek_polls_are_counted():
    testbed, method = tor_world()
    assert method.meek is not None
    polls_after_bootstrap = method.meek.polls_sent
    assert polls_after_bootstrap > 0
    browser = testbed.browser(connector=method.connector())
    testbed.run_process(browser.load(testbed.scholar_page))
    assert method.meek.polls_sent > polls_after_bootstrap
