"""Tests for the survey's 'other methods': hosts-file pin, web proxy."""

import pytest

from repro.errors import MiddlewareError
from repro.measure import Testbed
from repro.middleware import HostsFileMethod, PublicWebProxy


# -- hosts-file pinning ----------------------------------------------------------

def test_hosts_file_defeats_dns_poisoning_only():
    """The pin gets the true address (no poisoned answer), but the SNI
    filter still kills the connection — the method's 2017 reality."""
    testbed = Testbed()
    method = HostsFileMethod(testbed)
    testbed.run_process(method.setup())

    result = testbed.run_process(
        testbed.browser(connector=method.connector()).load(testbed.scholar_page))
    assert not result.succeeded
    assert testbed.gfw.poisoner.injections == 0   # DNS never asked
    assert testbed.gfw.stats.sni_resets >= 1      # ...but DPI still hit


def test_hosts_file_worked_in_the_dns_only_era():
    """Against a DNS-poisoning-only GFW (pre-DPI), the pin suffices."""
    from repro.gfw import GfwConfig
    testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                           dpi=False,
                                           keyword_filtering=False))
    method = HostsFileMethod(testbed)
    testbed.run_process(method.setup())
    result = testbed.run_process(
        testbed.browser(connector=method.connector()).load(testbed.scholar_page))
    assert result.succeeded, result.error


def test_hosts_file_requires_setup_and_teardown_restores():
    testbed = Testbed()
    method = HostsFileMethod(testbed)
    with pytest.raises(MiddlewareError):
        method.connector()
    testbed.run_process(method.setup())
    assert testbed.resolver.cached("scholar.google.com") is not None
    method.teardown()
    assert testbed.resolver.cached("scholar.google.com") is None


# -- public web proxy ---------------------------------------------------------------

def test_web_proxy_killed_by_url_filtering():
    testbed = Testbed()
    method = PublicWebProxy(testbed)
    testbed.run_process(method.setup())
    result = testbed.run_process(
        testbed.browser(connector=method.connector()).load(testbed.scholar_page))
    # The blocked hostname travels in cleartext; the GFW resets it.
    assert not result.succeeded


def test_web_proxy_works_without_censorship():
    testbed = Testbed(gfw_enabled=False)
    method = PublicWebProxy(testbed)
    testbed.run_process(method.setup())
    result = testbed.run_process(
        testbed.browser(connector=method.connector()).load(testbed.scholar_page))
    assert result.succeeded, result.error
    assert method.fetches > 0


def test_web_proxy_requires_setup():
    with pytest.raises(MiddlewareError):
        PublicWebProxy(Testbed()).connector()
