"""Crypto substrate tests, including FIPS-197 and RFC test vectors."""

import pytest

from repro.crypto import (
    AES,
    CfbCipher,
    CtrCipher,
    RC4,
    cbc_decrypt,
    cbc_encrypt,
    evp_bytes_to_key,
    hkdf_like,
    hmac_sha256,
    looks_like_ciphertext,
    shannon_entropy,
)
from repro.errors import CryptoError


# -- AES known-answer tests (FIPS-197 Appendix C) -------------------------------

def test_aes128_fips197_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).encrypt_block(plaintext) == expected


def test_aes192_fips197_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
    assert AES(key).encrypt_block(plaintext) == expected


def test_aes256_fips197_vector():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).encrypt_block(plaintext) == expected


def test_aes_decrypt_inverts_encrypt():
    key = b"0123456789abcdef0123456789abcdef"
    cipher = AES(key)
    block = b"sixteen byte blk"
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_aes_rejects_bad_key_and_block():
    with pytest.raises(CryptoError):
        AES(b"short")
    with pytest.raises(CryptoError):
        AES(b"0" * 16).encrypt_block(b"not a block")
    with pytest.raises(CryptoError):
        AES(b"0" * 16).decrypt_block(b"tiny")


# -- CFB (NIST SP 800-38A F.3.13: CFB128-AES128) ------------------------------

def test_cfb128_nist_vector():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51")
    expected = bytes.fromhex(
        "3b3fd92eb72dad20333449f8e83cfb4a"
        "c8a64537a0b3a93fcde3cdad9f1ce58b")
    assert CfbCipher(key, iv).encrypt(plaintext) == expected


def test_cfb_roundtrip_arbitrary_length():
    key = b"k" * 32
    iv = b"i" * 16
    message = b"The quick brown fox jumps over the lazy dog." * 7 + b"!"
    encrypted = CfbCipher(key, iv).encrypt(message)
    assert CfbCipher(key, iv).decrypt(encrypted) == message
    assert encrypted != message


def test_cfb_streaming_matches_oneshot():
    key, iv = b"k" * 32, b"i" * 16
    message = b"stream me in pieces please, thanks"
    oneshot = CfbCipher(key, iv).encrypt(message)
    streamer = CfbCipher(key, iv)
    pieces = streamer.encrypt(message[:7]) + streamer.encrypt(message[7:])
    assert pieces == oneshot


def test_cfb_bad_iv_rejected():
    with pytest.raises(CryptoError):
        CfbCipher(b"k" * 16, b"short")


# -- CTR (NIST SP 800-38A F.5.1) ----------------------------------------------

def test_ctr_nist_vector():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    nonce = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
    plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    expected = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
    assert CtrCipher(key, nonce).encrypt(plaintext) == expected


def test_ctr_symmetric():
    key, nonce = b"q" * 16, b"n" * 16
    message = b"counter mode is symmetric"
    assert CtrCipher(key, nonce).decrypt(
        CtrCipher(key, nonce).encrypt(message)) == message


# -- CBC ------------------------------------------------------------------------

def test_cbc_roundtrip_and_padding():
    key, iv = b"c" * 16, b"v" * 16
    for length in (0, 1, 15, 16, 17, 100):
        message = bytes(range(256))[:length]
        ct = cbc_encrypt(key, iv, message)
        assert len(ct) % 16 == 0
        assert cbc_decrypt(key, iv, ct) == message


def test_cbc_tampered_padding_rejected():
    key, iv = b"c" * 16, b"v" * 16
    ct = bytearray(cbc_encrypt(key, iv, b"hello world"))
    ct[-1] ^= 0xFF
    with pytest.raises(CryptoError):
        cbc_decrypt(key, iv, bytes(ct))


# -- RC4 (RFC 6229 vector) ---------------------------------------------------------

def test_rc4_known_answer_vectors():
    assert RC4(b"Key").encrypt(b"Plaintext").hex() == "bbf316e8d940af0ad3"
    assert RC4(b"Wiki").encrypt(b"pedia").hex() == "1021bf0420"
    assert RC4(b"Secret").encrypt(b"Attack at dawn").hex() == (
        "45a01f645fc35b383552544b9bf5")


def test_rc4_symmetric():
    message = b"legacy cipher, kept for the ablation bench"
    assert RC4(b"key").decrypt(RC4(b"key").encrypt(message)) == message


def test_rc4_key_length_validation():
    with pytest.raises(CryptoError):
        RC4(b"")


# -- KDF -----------------------------------------------------------------------------

def test_evp_bytes_to_key_known_answer():
    # Matches OpenSSL: EVP_BytesToKey(md5, no salt, "password", 1 round).
    key = evp_bytes_to_key(b"password", 32)
    assert key[:16].hex() == "5f4dcc3b5aa765d61d8327deb882cf99"  # md5("password")
    assert len(key) == 32


def test_evp_bytes_to_key_deterministic_and_distinct():
    assert evp_bytes_to_key(b"a", 16) == evp_bytes_to_key(b"a", 16)
    assert evp_bytes_to_key(b"a", 16) != evp_bytes_to_key(b"b", 16)


def test_hkdf_like_lengths_and_determinism():
    out = hkdf_like(b"secret", b"info", 100)
    assert len(out) == 100
    assert out == hkdf_like(b"secret", b"info", 100)
    assert out[:32] != hkdf_like(b"secret", b"other", 100)[:32]


def test_hmac_sha256_rfc4231_vector():
    digest = hmac_sha256(b"\x0b" * 20, b"Hi There")
    assert digest.hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b"
        "881dc200c9833da726e9376c2e32cff7")


# -- entropy ----------------------------------------------------------------------------

def test_entropy_bounds():
    assert shannon_entropy(b"") == 0.0
    assert shannon_entropy(b"aaaa") == 0.0
    assert shannon_entropy(bytes(range(256))) == pytest.approx(8.0)


def test_ciphertext_detector():
    key, iv = b"k" * 32, b"i" * 16
    ciphertext = CfbCipher(key, iv).encrypt(b"A" * 1024)
    assert looks_like_ciphertext(ciphertext)
    assert not looks_like_ciphertext(b"A" * 1024)
    assert not looks_like_ciphertext(ciphertext[:16])  # too short to judge
