"""Deeper TCP behaviour tests: fast retransmit, delayed ACKs,
duplicate handshakes, and capture analysis."""

import pytest

from repro.net import Network, PacketCapture, Verdict
from repro.net.middlebox import Middlebox
from repro.sim import Simulator
from repro.transport import install_transport
from repro.units import Mbps, ms


def world(loss=0.0, latency=ms(20)):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="10.0.0.2")
    link = net.connect(a, b, latency=latency, bandwidth=Mbps(100), loss=loss)
    net.build_routes()
    return sim, net, install_transport(sim, a), install_transport(sim, b), link


def sink_acceptor(sim, got):
    def acceptor(conn):
        def server(sim, conn):
            while True:
                meta = yield conn.recv_message()
                if meta is None:
                    return
                got.append((sim.now, meta))
        sim.process(server(sim, conn))
    return acceptor


class DropNth(Middlebox):
    """Drop exactly the nth data segment in one direction."""

    name = "drop-nth"

    def __init__(self, n, sender):
        self.n = n
        self.sender = sender
        self.count = 0

    def process(self, packet, direction, link):
        if (packet.protocol == "tcp" and direction.sender == self.sender
                and getattr(packet.payload, "length", 0) > 0):
            self.count += 1
            if self.count == self.n:
                return Verdict.DROP
        return Verdict.PASS


def test_fast_retransmit_recovers_quickly():
    """A single mid-window loss recovers via dup-ACKs, far faster than
    a full RTO (1 s)."""
    sim, _net, ta, tb, link = world()
    link.add_middlebox(DropNth(2, sender="a"))
    got = []
    tb.listen_tcp(80, sink_acceptor(sim, got))

    def client(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 80)
        conn.send_message(14_600, meta="windowful")  # 10 segments
        yield sim.timeout(5.0)
        return conn.retransmissions

    retransmissions = sim.run(until=sim.process(client(sim)))
    assert got and got[0][1] == "windowful"
    assert retransmissions >= 1
    # Delivered well before an RTO-based recovery would allow.
    assert got[0][0] < 0.9


def test_single_segment_loss_needs_rto():
    """A lost lone segment has no dup-ACK signal: recovery waits out a
    full retransmission timeout (the MIN_RTO floor after the handshake
    RTT sample), instead of the ~60 ms a clean delivery takes."""
    sim, _net, ta, tb, link = world()
    link.add_middlebox(DropNth(1, sender="a"))
    got = []
    tb.listen_tcp(80, sink_acceptor(sim, got))

    def client(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 80)
        conn.send_message(400, meta="lonely")
        yield sim.timeout(5.0)

    sim.run(until=sim.process(client(sim)))
    assert got and got[0][1] == "lonely"
    from repro.transport.tcp import MIN_RTO
    assert got[0][0] > MIN_RTO  # paid a timeout, not a clean delivery


def test_delayed_acks_halve_pure_ack_traffic():
    """Bulk transfer: pure ACKs ≈ half the data segments, not 1:1."""
    sim, net, ta, tb, _link = world()
    capture = PacketCapture(sim).attach(net.link_between("a", "b"))
    got = []
    tb.listen_tcp(80, sink_acceptor(sim, got))

    def client(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 80)
        conn.send_message(100_000, meta="bulk")
        yield sim.timeout(10.0)

    sim.run(until=sim.process(client(sim)))
    data_segments = sum(
        1 for p in capture.packets
        if p.protocol == "tcp" and p.size > 60 and p.direction == "a->b")
    pure_acks = sum(
        1 for p in capture.packets
        if p.protocol == "tcp" and p.size <= 44 and p.direction == "b->a")
    assert got
    assert pure_acks < data_segments * 0.75


def test_duplicate_syn_is_answered_not_duplicated():
    """A retransmitted SYN must re-elicit SYN-ACK without confusing
    the server connection."""
    sim, _net, ta, tb, link = world(latency=ms(100))

    class DropFirstSynAck(Middlebox):
        name = "drop-synack"

        def __init__(self):
            self.dropped = False

        def process(self, packet, direction, link):
            flags = getattr(packet.payload, "flags", frozenset())
            if (not self.dropped and "SYN" in flags and "ACK" in flags):
                self.dropped = True
                return Verdict.DROP
            return Verdict.PASS

    link.add_middlebox(DropFirstSynAck())
    got = []
    tb.listen_tcp(80, sink_acceptor(sim, got))

    def client(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 80, timeout=20.0)
        conn.send_message(100, meta="after-retry")
        yield sim.timeout(2.0)
        return conn.state

    state = sim.run(until=sim.process(client(sim)))
    assert state == "ESTABLISHED"
    assert [meta for _t, meta in got] == ["after-retry"]


def test_capture_flow_inventory_merges_directions():
    sim, net, ta, tb, _link = world()
    capture = PacketCapture(sim).attach(net.link_between("a", "b"))
    got = []
    tb.listen_tcp(80, sink_acceptor(sim, got))

    def client(sim):
        conn = yield ta.connect_tcp("10.0.0.2", 80)
        conn.send_message(500, meta="x")
        yield sim.timeout(1.0)

    sim.run(until=sim.process(client(sim)))
    flows = capture.tcp_connections()
    # One logical connection, despite packets in both directions.
    assert len(flows) == 1
