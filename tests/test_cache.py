"""Edge response cache: store contracts and world-level coherence.

Three families of guarantees for :mod:`repro.cache`:

* **Store mechanics** — TTL expiry at exact sim-time boundaries,
  LRU-with-watermark eviction order, byte accounting, and the
  epoch-in-the-key design that makes a rotated proxy structurally
  unable to address a stale entry.
* **Coherence** — blinding rotation and audited GFW policy changes
  purge every registered tier before the next load can hit.
* **Determinism & equivalence** — same-seed cached sweeps replay with
  byte-identical event digests across ≥3 seeds; with the knob off the
  world builds no cache machinery at all and the measurement harness
  is event-for-event reproducible.
"""

from __future__ import annotations

import pytest

from repro.cache import (
    CacheConfig,
    CacheRegistry,
    ResponseCache,
    ZipfSampler,
    canonical_key,
    query_corpus,
    scholar_query_page,
)
from repro.core.blinding import BlindingAgility
from repro.measure.scenarios import (
    prepare,
    run_overload_point,
    run_repeated_query_point,
)
from repro.overload import OverloadConfig

SEEDS = (0, 1, 2)


# -- store mechanics ---------------------------------------------------------------


class _Clock:
    """Minimal simulator stand-in: the store only reads ``now``."""

    def __init__(self) -> None:
        self.now = 0.0


def _key(path: str) -> tuple:
    return ("GET", "scholar.google.com", 443, "https", path, False)


def _store(ttl: float = 10.0, capacity: int = 1000,
           low: float = 0.5) -> tuple:
    clock = _Clock()
    agility = BlindingAgility()
    cache = ResponseCache(
        clock, CacheConfig(ttl=ttl, capacity_bytes=capacity,
                           low_watermark=low), agility)
    return clock, agility, cache


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(ttl=0.0)
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(low_watermark=0.0)
    with pytest.raises(ValueError):
        CacheConfig(low_watermark=1.5)


def test_canonical_key_includes_first_visit():
    class _Req:
        host = "scholar.google.com"
        scheme = "https"
        path = "/scholar?q=x"
        first_visit = False

    first = _Req()
    first.first_visit = True
    assert canonical_key(_Req(), 443) != canonical_key(first, 443)
    assert canonical_key(_Req(), 443)[0] == "GET"


def test_hit_miss_and_byte_accounting():
    _clock, _agility, cache = _store()
    assert cache.lookup(_key("/a")) is None
    assert cache.misses == 1
    assert cache.insert(_key("/a"), "resp-a", wire_length=200,
                        avoided_bytes=240)
    assert cache.bytes_in_cache == 200
    assert cache.lookup(_key("/a")) == "resp-a"
    assert cache.hits == 1
    assert cache.bytes_served == 200
    assert cache.transpacific_bytes_avoided == 240
    assert cache.wire_length_of(_key("/a")) == 200
    assert cache.wire_length_of(_key("/b")) == 0


def test_ttl_expiry_at_exact_sim_time_boundary():
    """An entry is fresh *through* ``insert_time + ttl`` and stale on
    the first instant after — the boundary itself still serves."""
    clock, _agility, cache = _store(ttl=10.0)
    clock.now = 5.0
    cache.insert(_key("/a"), "resp-a", wire_length=100, avoided_bytes=100)
    clock.now = 15.0  # exactly insert + ttl: still fresh
    assert cache.lookup(_key("/a")) == "resp-a"
    assert cache.expirations == 0
    clock.now = 15.0 + 1e-9  # first representable instant after
    assert cache.lookup(_key("/a")) is None
    assert cache.expirations == 1
    assert cache.misses == 1  # the expired lookup also counts as a miss
    assert cache.entries == 0 and cache.bytes_in_cache == 0


def test_watermark_eviction_is_lru_first_and_drains_to_low_mark():
    _clock, _agility, cache = _store(capacity=1000, low=0.5)
    for path in ("/a", "/b", "/c"):
        assert cache.insert(_key(path), f"resp{path}", wire_length=300,
                            avoided_bytes=0)
    assert cache.lookup(_key("/b")) is not None  # refresh B: order A, C, B
    cache.insert(_key("/d"), "resp/d", wire_length=300, avoided_bytes=0)
    # 900 + 300 > 1000 -> drain LRU-first to the 500-byte low mark:
    # A (oldest) goes, then C; the refreshed B survives.
    assert cache.evictions == 2
    assert cache.bytes_in_cache == 600
    assert cache.lookup(_key("/a")) is None
    assert cache.lookup(_key("/c")) is None
    assert cache.lookup(_key("/b")) is not None
    assert cache.lookup(_key("/d")) is not None


def test_reinsert_replaces_without_double_charging():
    _clock, _agility, cache = _store()
    cache.insert(_key("/a"), "v1", wire_length=400, avoided_bytes=0)
    cache.insert(_key("/a"), "v2", wire_length=250, avoided_bytes=0)
    assert cache.entries == 1
    assert cache.bytes_in_cache == 250
    assert cache.lookup(_key("/a")) == "v2"


def test_oversize_insert_is_rejected():
    _clock, _agility, cache = _store(capacity=1000)
    assert not cache.insert(_key("/big"), "huge", wire_length=1001,
                            avoided_bytes=0)
    assert cache.entries == 0 and cache.insertions == 0


def test_epoch_rotation_makes_old_entries_unaddressable():
    """The epoch is part of the key: after ``rotate()`` the same
    request misses even *before* any explicit invalidation runs."""
    _clock, agility, cache = _store()
    cache.insert(_key("/a"), "epoch0", wire_length=100, avoided_bytes=0)
    assert cache.lookup(_key("/a")) == "epoch0"
    agility.rotate()
    assert cache.lookup(_key("/a")) is None  # new epoch -> new key
    dropped = cache.invalidate_all("blinding-rotation")
    assert dropped == 1
    assert cache.invalidations == 1
    assert cache.entries == 0 and cache.bytes_in_cache == 0


def test_registry_broadcasts_policy_invalidation():
    clock = _Clock()
    registry = CacheRegistry(clock)
    agility = BlindingAgility()
    tiers = [registry.register(ResponseCache(clock, CacheConfig(), agility,
                                             name=f"tier-{i}"))
             for i in range(2)]
    for tier in tiers:
        tier.insert(_key("/a"), "resp", wire_length=100, avoided_bytes=0)
    registry.on_policy_change("reset-escalation")
    for tier in tiers:
        assert tier.entries == 0
        assert tier.invalidations == 1


def test_event_digest_replays_identical_sequences():
    """The digest is a pure function of the (op, key, time) stream."""
    def drive(cache, clock, extra=False):
        cache.lookup(_key("/a"))
        cache.insert(_key("/a"), "r", wire_length=100, avoided_bytes=0)
        clock.now = 3.0
        cache.lookup(_key("/a"))
        if extra:
            cache.lookup(_key("/b"))
        return cache.event_digest

    runs = []
    for _ in range(2):
        clock, _agility, cache = _store()
        runs.append(drive(cache, clock))
    assert runs[0] == runs[1]
    clock, _agility, cache = _store()
    assert drive(cache, clock, extra=True) != runs[0]


def test_zipf_sampler_is_deterministic_and_head_heavy():
    class _Rng:
        def __init__(self):
            self.state = 0.0

        def uniform(self, lo, hi):
            self.state = (self.state + 0.137) % 1.0
            return lo + (hi - lo) * self.state

    sampler = ZipfSampler(24)
    draws = [sampler.sample(_Rng()) for _ in range(3)]
    assert draws[0] == draws[1] == draws[2]
    rng = _Rng()
    counts = [0] * 24
    for _ in range(200):
        counts[sampler.sample(rng)] += 1
    assert counts[0] > counts[-1]  # rank 0 dominates the tail
    assert 1 <= sampler.burst_length(_Rng()) <= 4


# -- world-level coherence ---------------------------------------------------------


def _cached_world(seed=0, **cache_kwargs):
    world = prepare("scholarcloud", seed=seed,
                    cache=CacheConfig(**cache_kwargs))
    page = scholar_query_page(0)
    world.testbed.scholar_server.add_page(page)
    return world, page


def _load_seq(world, page, steps):
    """Drive ``browser.load(page)`` with callables interleaved.

    ``steps`` is a list whose entries are either ``"load"`` (run one
    page load) or a zero-argument callable invoked between loads.
    Returns the PageLoadResults in order.
    """
    results = []

    def driver(sim):
        for step in steps:
            if step == "load":
                results.append((yield sim.process(world.browser.load(page))))
            else:
                step()

    world.testbed.run_process(driver(world.testbed.sim), name="cache-driver")
    return results


def test_revisit_is_served_by_the_edge():
    """First-visit and revisit responses key separately (the account
    side channel differs), so one browser's third load is its first
    hit: visit 1 fills the first-visit slot, visit 2 the revisit slot,
    visit 3 hits it."""
    world, page = _cached_world()
    results = _load_seq(world, page, ["load", "load", "load"])
    assert all(r.succeeded for r in results)
    assert not results[0].all_from_cache
    assert not results[1].all_from_cache
    assert results[2].all_from_cache
    cache = world.method.cache
    assert cache is not None
    assert cache.hits >= 1
    assert cache.transpacific_bytes_avoided > 0
    assert results[2].plt < results[1].plt  # no transpacific leg


def test_blinding_rotation_mid_run_never_serves_stale():
    world, page = _cached_world()
    results = _load_seq(world, page,
                        ["load", "load", "load",
                         world.method.rotate_blinding, "load", "load"])
    cache = world.method.cache
    assert results[2].all_from_cache  # warm before rotation
    # Rotation purged eagerly AND moved the epoch in the key: the
    # next load refetches through the new codec, then re-caches.
    assert cache.invalidations >= 1
    assert results[3].succeeded and not results[3].all_from_cache
    assert results[4].succeeded and results[4].all_from_cache


def test_gfw_policy_change_invalidates_every_tier():
    world, page = _cached_world(remote_tier=True)
    gfw = world.testbed.gfw
    escalate = lambda: gfw.apply_policy(lambda g: None, label="drill")
    results = _load_seq(world, page,
                        ["load", "load", "load", escalate, "load"])
    assert results[2].all_from_cache
    assert not results[3].all_from_cache  # refetched under the new policy
    tiers = [world.method.cache] + list(world.method.remote_caches)
    assert len(tiers) >= 2  # edge + at least one remote tier
    assert all(tier.invalidations >= 1 for tier in tiers)


def test_hit_path_honors_a_deadline_the_miss_path_cannot():
    """Deadline propagation x cache hits: a budget far too tight for a
    transpacific fetch is ample for an edge hit on the same page."""
    world, page = _cached_world()
    testbed = world.testbed
    cold_page = scholar_query_page(1)
    testbed.scholar_server.add_page(cold_page)
    outcomes = []

    def driver(sim):
        for _ in range(3):  # warm: edge holds the revisit document
            yield sim.process(world.browser.load(page))
        world.browser.total_deadline = 0.2
        outcomes.append((yield sim.process(world.browser.load(page))))
        outcomes.append((yield sim.process(world.browser.load(cold_page))))

    testbed.run_process(driver(testbed.sim), name="deadline-driver")
    warm, cold = outcomes
    assert warm.succeeded and warm.all_from_cache
    assert warm.plt <= 0.2
    assert not cold.succeeded  # the transpacific leg blows the budget


def test_cache_bypass_keeps_hits_out_of_the_waiting_room():
    common = dict(clients=4, cycles=1, seed=0, corpus_size=4,
                  cache=CacheConfig())
    classic = run_repeated_query_point(
        overload=OverloadConfig(max_sessions=2, cache_bypass=False),
        **common)
    bypass = run_repeated_query_point(
        overload=OverloadConfig(max_sessions=2, cache_bypass=True),
        **common)
    assert classic.cache.hits > 0 and bypass.cache.hits > 0
    # With bypass on, hit sessions never enter admission at all.
    assert bypass.report.offered < classic.report.offered
    assert bypass.completed >= classic.completed


# -- determinism & equivalence -----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_cached_runs_are_byte_identical(seed):
    """Two same-seed cached sweeps replay the exact hit/miss/evict
    event stream (blake2b digest over (op, key, time)) and move the
    same transpacific byte count."""
    runs = [run_repeated_query_point(clients=4, cycles=1, seed=seed,
                                     corpus_size=6, cache=CacheConfig())
            for _ in range(2)]
    first, second = runs
    assert first.cache is not None and first.cache.hits > 0
    assert first.cache.event_digest == second.cache.event_digest
    assert first.cache.hits == second.cache.hits
    assert first.cache.misses == second.cache.misses
    assert first.transpacific_bytes == second.transpacific_bytes
    assert first.plt.mean == second.plt.mean


def test_knobs_off_builds_no_cache_machinery():
    world = prepare("scholarcloud", seed=0)
    assert world.method.cache is None
    assert world.method.remote_caches == []
    assert getattr(world.testbed.sim, "caches", None) is None
    result = run_repeated_query_point(clients=2, cycles=1, seed=0,
                                      corpus_size=4)
    assert result.cache is None


@pytest.mark.parametrize("seed", SEEDS)
def test_knobs_off_load_trace_is_event_for_event_identical(seed):
    """``cache=None`` must leave the uncached proxy path untouched:
    the default-argument world and the explicit ``cache=None`` world
    produce byte-identical load traces (PLTs to the nanosecond)."""
    signatures = []
    for spelling in ({}, {"cache": None}):
        world = prepare("scholarcloud", seed=seed, **spelling)
        page = scholar_query_page(0)
        world.testbed.scholar_server.add_page(page)
        results = _load_seq(world, page, ["load", "load"])
        signatures.append(
            [(r.succeeded, r.error, round(r.plt, 9)) for r in results])
        assert not any(r.all_from_cache for r in results)
    assert signatures[0] == signatures[1]


def test_uncached_fig7_harness_is_reproducible():
    """The fig-7 overload harness (which never takes a cache) replays
    identically now that the proxies carry the optional cache hooks."""
    runs = [run_overload_point(clients=3, cycles=1, seed=0)
            for _ in range(2)]
    assert runs[0].plt.mean == runs[1].plt.mean
    assert runs[0].decisions == runs[1].decisions
    assert runs[0].transpacific_bytes == runs[1].transpacific_bytes
    assert runs[0].completed == runs[1].completed


@pytest.mark.parametrize("seed", SEEDS)
def test_cache_reduces_transpacific_bytes_and_plt(seed):
    """The content-delivery bet, at test scale: caching on moves
    strictly fewer transpacific bytes and serves hits faster than
    misses, for every seed."""
    off = run_repeated_query_point(clients=4, cycles=1, seed=seed,
                                   corpus_size=6)
    on = run_repeated_query_point(clients=4, cycles=1, seed=seed,
                                  corpus_size=6, cache=CacheConfig())
    assert on.transpacific_bytes < off.transpacific_bytes
    report = on.cache
    assert report.hit_rate > 0.0
    assert report.transpacific_bytes_avoided > 0
    if report.plt_hit is not None and report.plt_miss is not None:
        assert report.plt_hit.p50 < report.plt_miss.p50


def test_hybrid_mode_serves_cache_hits():
    result = run_repeated_query_point(clients=4, cycles=1, seed=0,
                                      corpus_size=6, cache=CacheConfig(),
                                      mode="hybrid")
    assert result.cache.hits > 0
    assert result.completed > 0
