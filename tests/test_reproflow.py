"""Tests for the dataflow layer: CFG construction, the worklist
solver, the resource lattice, the call graph, and the end-to-end
guarantee that the seeded historical bugs stay detectable."""

import ast
import textwrap
from pathlib import Path

from repro.analysis import Analyzer, Config, to_sarif
from repro.analysis.flow import (
    ACQUIRED,
    CFG,
    CallGraph,
    EdgeKind,
    RaiseOracle,
    ReachingDefinitions,
    RELEASED,
    UNACQUIRED,
    build_cfg,
    find_leaks,
    may_raise_policy,
)
from repro.analysis.flow.cfg import ENTRY, ERROR_EXIT, EXIT
from repro.analysis.engine import ModuleContext

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"


def func_cfg(source, may_raise=None, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = [node for node in ast.walk(tree)
             if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    func = funcs[0] if name is None else next(
        f for f in funcs if f.name == name)
    if may_raise is None:
        return build_cfg(func)
    return build_cfg(func, may_raise=may_raise)


def succ_kinds(cfg, index):
    return {kind for _dst, kind in cfg.succs[index]}


def node_of(cfg, predicate):
    return next(n for n in cfg.stmt_nodes() if predicate(n.stmt))


# -- CFG shapes ----------------------------------------------------------------------


def test_if_else_diamond():
    cfg = func_cfg("""
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
    """)
    header = node_of(cfg, lambda s: isinstance(s, ast.If))
    assert succ_kinds(cfg, header.index) == {EdgeKind.TRUE, EdgeKind.FALSE}
    ret = node_of(cfg, lambda s: isinstance(s, ast.Return))
    # Both assignment arms merge into the return.
    assert len(cfg.preds[ret.index]) == 2
    assert cfg.preds[cfg.exit]


def test_while_loop_has_back_and_false_edges():
    cfg = func_cfg("""
        def f(n):
            while n:
                n = n - 1
            return n
    """)
    header = node_of(cfg, lambda s: isinstance(s, ast.While))
    assert EdgeKind.FALSE in succ_kinds(cfg, header.index)
    assert any(kind is EdgeKind.LOOP
               for _src, kind in cfg.preds[header.index])


def test_while_true_omits_false_edge():
    cfg = func_cfg("""
        def f():
            while True:
                pass
    """)
    header = node_of(cfg, lambda s: isinstance(s, ast.While))
    assert EdgeKind.FALSE not in succ_kinds(cfg, header.index)
    # Nothing after an infinite loop: the normal exit is unreachable.
    assert cfg.preds[cfg.exit] == []


def test_break_exits_loop():
    cfg = func_cfg("""
        def f():
            while True:
                break
            return 1
    """)
    assert cfg.preds[cfg.exit]


def test_matching_except_catches_raise():
    cfg = func_cfg("""
        def f():
            try:
                raise TransportError("boom")
            except TransportError:
                return None
    """)
    assert cfg.preds[cfg.error_exit] == []


def test_parent_clause_catches_subtype_raise():
    cfg = func_cfg("""
        def f():
            try:
                raise OverloadError("full")
            except TransportError:
                return None
    """)
    assert cfg.preds[cfg.error_exit] == []


def test_unrelated_clause_misses_raise():
    cfg = func_cfg("""
        def f():
            try:
                raise TransportError("boom")
            except OverloadError:
                return None
    """)
    # OverloadError is strictly narrower: the raise escapes.
    assert cfg.preds[cfg.error_exit]


def test_finally_body_runs_before_error_exit():
    cfg = func_cfg("""
        def f(conn):
            try:
                raise ValueError("boom")
            finally:
                conn.close()
    """)
    close = node_of(cfg, lambda s: isinstance(s, ast.Expr))
    # The pending exception resumes *after* the finally body, and the
    # resume edge is NORMAL — the close did execute.
    assert (close.index, EdgeKind.NORMAL) in [
        (src, kind) for src, kind in cfg.preds[cfg.error_exit]]


def test_return_through_finally():
    cfg = func_cfg("""
        def f(conn):
            try:
                return 1
            finally:
                conn.close()
    """)
    close = node_of(cfg, lambda s: isinstance(s, ast.Expr))
    assert (close.index, EdgeKind.NORMAL) in cfg.preds[cfg.exit]


# -- dataflow solver -----------------------------------------------------------------


def test_reaching_definitions_merge_at_join():
    cfg = func_cfg("""
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
    """)
    analysis = ReachingDefinitions()
    facts = analysis.run(cfg)
    ret = node_of(cfg, lambda s: isinstance(s, ast.Return))
    assert len(analysis.defs_of(facts[ret.index], "x")) == 2


def test_parameters_reach_as_entry_definitions():
    cfg = func_cfg("""
        def f(a):
            return a
    """)
    analysis = ReachingDefinitions()
    facts = analysis.run(cfg)
    ret = node_of(cfg, lambda s: isinstance(s, ast.Return))
    assert analysis.defs_of(facts[ret.index], "a") == {cfg.entry}


def test_redefinition_kills_prior_definition():
    cfg = func_cfg("""
        def f(a):
            a = 1
            return a
    """)
    analysis = ReachingDefinitions()
    facts = analysis.run(cfg)
    ret = node_of(cfg, lambda s: isinstance(s, ast.Return))
    assert cfg.entry not in analysis.defs_of(facts[ret.index], "a")


def test_resource_lattice_order():
    assert UNACQUIRED < RELEASED < ACQUIRED
    # The may-leak join: "still held" must win at merges.
    assert max(RELEASED, ACQUIRED) == ACQUIRED


# -- resource tracking ---------------------------------------------------------------


def leaks_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = [node for node in ast.walk(tree)
             if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    func = funcs[0] if name is None else next(
        f for f in funcs if f.name == name)
    return find_leaks(func, None, None, None)


def test_unprotected_send_after_dial_leaks():
    leaks = leaks_of("""
        def dial(transport):
            conn = yield transport.connect_tcp("host", 1, timeout=5.0)
            conn.send_message(8, meta=("x",))
            return conn
    """)
    assert [key[1] for _node, key, _spec in leaks] == ["conn"]


def test_close_on_error_path_is_clean():
    leaks = leaks_of("""
        def dial(transport):
            conn = yield transport.connect_tcp("host", 1, timeout=5.0)
            try:
                conn.send_message(8, meta=("x",))
            except BaseException:
                conn.close()
                raise
            return conn
    """)
    assert leaks == []


def test_release_in_finally_reaches_error_exit():
    # Regression: the finally-resume edge must carry the *post*-release
    # fact, or this correct pattern reads as a leak.
    leaks = leaks_of("""
        def fetch(origin, conn):
            yield origin.slots.acquire()
            try:
                conn.send_message(8, meta=("x",))
            finally:
                origin.slots.release()
    """)
    assert leaks == []


def test_receiver_slot_leak_detected():
    leaks = leaks_of("""
        def serve(self, conn):
            yield self.admission.acquire()
            conn.send_message(8, meta=("x",))
            self.admission.release()
    """)
    assert [key for _node, key, _spec in leaks] == [("recv", "self.admission")]


def test_with_block_resources_are_not_tracked():
    leaks = leaks_of("""
        def dial(transport, conn):
            with transport.connect_tcp("host", 1) as managed:
                conn.send_message(8, meta=("x",))
    """)
    assert leaks == []


# -- call graph + raise oracle -------------------------------------------------------


def project_of(sources):
    return [ModuleContext(path=f"src/{module.replace('.', '/')}.py",
                          module=module, source=textwrap.dedent(source))
            for module, source in sources.items()]


def test_callgraph_resolves_self_and_inherited_methods():
    contexts = project_of({
        "repro.core.base": """
            class Base:
                def helper(self):
                    return 1
        """,
        "repro.core.child": """
            class Child(Base):
                def run(self):
                    return self.helper()
        """,
    })
    graph = CallGraph.build(contexts)
    run = graph.method("repro.core.child", "Child", "run")
    assert run is not None
    callees = [c.qualname for c in graph.callees(run)]
    assert callees == ["repro.core.base.Base.helper"]
    assert "repro.core.base.Base.helper" in graph.transitive_callees(run)


def test_raise_oracle_distinguishes_raising_methods():
    contexts = project_of({
        "repro.core.svc": """
            class Svc:
                def quiet(self):
                    return 1

                def loud(self):
                    raise ValueError("boom")
        """,
    })
    graph = CallGraph.build(contexts)
    oracle = RaiseOracle(graph)
    assert not oracle.function_may_raise(
        graph.method("repro.core.svc", "Svc", "quiet"))
    assert oracle.function_may_raise(
        graph.method("repro.core.svc", "Svc", "loud"))


def test_may_raise_policy_safelists_sim_waits():
    cfg = func_cfg("""
        def f(self, sim, cpu):
            yield sim.timeout(1.0)
            yield cpu.submit(0.1)
    """, may_raise=may_raise_policy(None, None))
    assert cfg.preds[cfg.error_exit] == []


# -- seeded-bug fixtures -------------------------------------------------------------


def analyze_fixture(filename, module):
    source = (FIXTURES / filename).read_text()
    analyzer = Analyzer(config=Config())
    return analyzer.analyze_source(
        source, path=f"tests/fixtures/flow/{filename}", module=module)


def test_seeded_slot_leak_fixture_is_flagged():
    findings = analyze_fixture("seeded_slot_leak.py",
                               "repro.core.seeded_slot_leak")
    leaks = [f for f in findings if f.rule == "leak-on-error-path"]
    assert any("self.admission" in f.message for f in leaks)
    assert all(f.line > 0 for f in leaks)


def test_seeded_close_on_error_fixture_is_flagged():
    findings = analyze_fixture("seeded_close_on_error.py",
                               "repro.middleware.seeded_close_on_error")
    leaks = [f for f in findings if f.rule == "leak-on-error-path"]
    assert any("`conn`" in f.message for f in leaks)


# -- SARIF ---------------------------------------------------------------------------


def test_sarif_document_structure():
    findings = analyze_fixture("seeded_slot_leak.py",
                               "repro.core.seeded_slot_leak")
    document = to_sarif(findings)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "leak-on-error-path" in rule_ids
    assert run["results"], "findings must become SARIF results"
    result = run["results"][0]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("seeded_slot_leak.py")
    assert location["region"]["startLine"] > 0
