"""Tests for links, nodes, routing, and the topology builder."""

import pytest

from repro.errors import NetworkError, RoutingError
from repro.net import Network, Packet, PacketCapture, WireFeatures
from repro.sim import Simulator
from repro.units import Mbps, ms


def build_line():
    """client -- r1 -- r2 -- server, with distinct latencies."""
    sim = Simulator()
    net = Network(sim)
    client = net.add_host("client", address="10.0.0.1")
    r1 = net.add_router("r1", address="10.0.0.254")
    r2 = net.add_router("r2", address="198.51.100.254")
    server = net.add_host("server", address="203.0.113.1")
    net.connect(client, r1, latency=ms(1), bandwidth=Mbps(100))
    net.connect(r1, r2, latency=ms(40), bandwidth=Mbps(100))
    net.connect(r2, server, latency=ms(2), bandwidth=Mbps(100))
    net.build_routes()
    return sim, net, client, server


def test_duplicate_node_name_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a", address="10.0.0.1")
    with pytest.raises(NetworkError):
        net.add_host("a", address="10.0.0.2")


def test_unknown_region_rejected():
    net = Network(Simulator())
    with pytest.raises(NetworkError):
        net.add_host("h", region="nowhere")


def test_region_allocation():
    net = Network(Simulator())
    net.region("cernet", "59.66.0.0/16")
    host = net.add_host("h", region="cernet")
    assert str(host.address).startswith("59.66.")


def test_node_by_address():
    _sim, net, client, _server = build_line()
    assert net.node_by_address("10.0.0.1") is client
    with pytest.raises(NetworkError):
        net.node_by_address("8.8.8.8")


def test_link_between():
    _sim, net, client, _ = build_line()
    link = net.link_between("client", "r1")
    assert link.peer_of(client).name == "r1"
    with pytest.raises(NetworkError):
        net.link_between("client", "server")


def test_no_route_raises():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("lonely", address="10.9.9.9")
    with pytest.raises(RoutingError):
        host.route_for(net.add_host("other", address="10.9.9.8").address)


def test_end_to_end_delivery_and_latency():
    sim, _net, client, server = build_line()
    received = []
    server.deliver = lambda packet: received.append((sim.now, packet))
    packet = Packet(src=client.address, dst=server.address,
                    protocol="udp", payload="x", size=100)
    client.send(packet)
    sim.run()
    assert len(received) == 1
    arrival, got = received[0]
    assert got.payload == "x"
    # 3 hops of propagation plus 3 serializations of 100B at 100 Mbps.
    expected = ms(1 + 40 + 2) + 3 * (100 / Mbps(100))
    assert arrival == pytest.approx(expected, rel=1e-6)


def test_routing_prefers_low_latency_path():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="10.0.0.2")
    slow = net.add_router("slow", address="10.0.1.1")
    fast = net.add_router("fast", address="10.0.1.2")
    net.connect(a, slow, latency=ms(100), bandwidth=Mbps(100))
    net.connect(slow, b, latency=ms(100), bandwidth=Mbps(100))
    net.connect(a, fast, latency=ms(5), bandwidth=Mbps(100))
    net.connect(fast, b, latency=ms(5), bandwidth=Mbps(100))
    net.build_routes()
    assert a.route_for(b.address).peer_of(a) is fast


def test_link_loss_drops_packets():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="10.0.0.2")
    link = net.connect(a, b, latency=ms(1), bandwidth=Mbps(100), loss=1.0 - 1e-12)
    net.build_routes()
    received = []
    b.deliver = lambda packet: received.append(packet)
    for _ in range(20):
        a.send(Packet(src=a.address, dst=b.address,
                      protocol="udp", payload=None, size=100))
    sim.run()
    assert received == []
    assert link.packets_dropped["a"] == 20


def test_serialization_queues_fifo():
    """Two back-to-back packets serialize one after the other."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", address="10.0.0.1")
    b = net.add_host("b", address="10.0.0.2")
    net.connect(a, b, latency=0.0, bandwidth=1000.0)  # 1000 B/s
    net.build_routes()
    arrivals = []
    b.deliver = lambda packet: arrivals.append(sim.now)
    for _ in range(2):
        a.send(Packet(src=a.address, dst=b.address,
                      protocol="udp", payload=None, size=500))
    sim.run()
    assert arrivals == [pytest.approx(0.5), pytest.approx(1.0)]


def test_ttl_expiry_drops_packet():
    sim, _net, client, server = build_line()
    received = []
    server.deliver = lambda packet: received.append(packet)
    client.send(Packet(src=client.address, dst=server.address,
                       protocol="udp", payload=None, size=64, ttl=1))
    sim.run()
    assert received == []


def test_packet_capture_records_flows():
    sim, net, client, server = build_line()
    capture = PacketCapture(sim).attach(net.link_between("client", "r1"))
    server.deliver = lambda packet: None
    client.send(Packet(src=client.address, dst=server.address,
                       protocol="udp", payload=None, size=64,
                       features=WireFeatures(protocol_tag="plain-http"),
                       flow=("udp", "10.0.0.1", 1000, "203.0.113.1", 53)))
    sim.run()
    assert len(capture.packets) == 1
    assert capture.packets[0].protocol_tag == "plain-http"
    assert capture.bytes_total() == 64


def test_encapsulation_roundtrip():
    sim, _net, client, server = build_line()
    inner = Packet(src=client.address, dst=server.address,
                   protocol="tcp", payload="segment", size=140)
    outer = inner.encapsulate(
        src=client.address, dst=server.address, protocol="gre",
        overhead=48, features=WireFeatures(protocol_tag="pptp-gre"))
    assert outer.size == 188
    assert outer.is_tunneled
    assert outer.inner() is inner
    assert not inner.is_tunneled
    with pytest.raises(TypeError):
        inner.inner()
