"""Tests for the measurement harness: metrics, survey, resources,
and light versions of the per-figure scenarios."""

import pytest

from repro.errors import MeasurementError
from repro.measure import (
    ClientLoadSample,
    Testbed,
    browser_cpu_percent,
    expected_counts,
    extra_client_cpu_percent,
    figure3_distribution,
    format_table,
    loss_rate,
    memory_after_extra_bytes,
    memory_before_bytes,
    percentile,
    sample_population,
    summarize,
    tabulate,
)
from repro.measure import scenarios
from repro.units import MiB


# -- metrics --------------------------------------------------------------------

def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0 and summary.maximum == 4.0
    assert summary.p50 == pytest.approx(2.5)


def test_summarize_empty_rejected():
    with pytest.raises(MeasurementError):
        summarize([])


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)
    assert percentile([5.0], 0.95) == 5.0
    with pytest.raises(MeasurementError):
        percentile([], 0.5)


def test_loss_rate():
    assert loss_rate(0, 0) == 0.0
    assert loss_rate(1, 100) == pytest.approx(0.01)
    with pytest.raises(MeasurementError):
        loss_rate(-1, 10)


def test_format_table_aligns():
    text = format_table(("a", "bbb"), [(1, 2), (333, 4)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bbb" in lines[2]
    assert len({len(l) for l in lines[3:]}) >= 1


# -- survey (Figure 3) -----------------------------------------------------------------

def test_expected_counts_sum_to_total():
    counts = expected_counts()
    assert sum(counts.values()) == pytest.approx(371)


def test_sampled_population_matches_marginals():
    population = sample_population(total=40_000, seed=7)
    distribution = figure3_distribution(population)
    assert distribution["bypass-share"] == pytest.approx(0.26, abs=0.01)
    assert distribution["vpn"] == pytest.approx(0.43, abs=0.02)
    assert distribution["shadowsocks"] == pytest.approx(0.21, abs=0.02)
    assert distribution["tor"] == pytest.approx(0.02, abs=0.01)
    assert distribution["native-vpn-within-vpn"] == pytest.approx(0.93, abs=0.02)


def test_sample_population_deterministic():
    assert tabulate(sample_population(seed=1)) == tabulate(sample_population(seed=1))


def test_sample_population_validation():
    with pytest.raises(MeasurementError):
        sample_population(total=0)


# -- resource models (Figure 6b/6c) --------------------------------------------------------

def test_cpu_model_ordering_matches_paper():
    """Native VPN lightest, Tor heaviest (Figure 6b)."""
    def cpu(method):
        sample = ClientLoadSample(method, wire_bytes=30_000,
                                  cycle_seconds=60, connections=6)
        return browser_cpu_percent(sample)

    values = {m: cpu(m) for m in
              ("native-vpn", "openvpn", "tor", "shadowsocks", "scholarcloud")}
    assert values["tor"] == max(values.values())
    assert min(values, key=values.get) in ("scholarcloud", "native-vpn")
    # The paper: the spread is real but not dramatic (~18%).
    assert values["tor"] / values["native-vpn"] < 1.5


def test_extra_client_cpu_is_trivial():
    assert extra_client_cpu_percent("openvpn") < 0.5
    assert extra_client_cpu_percent("native-vpn") == 0.0


def test_memory_model_before_and_after():
    assert memory_before_bytes("tor") > 1.5 * memory_before_bytes("native-vpn")
    def extra(method, conns=6):
        return memory_after_extra_bytes(
            ClientLoadSample(method, 30_000, 60, conns))
    assert extra("tor") == max(extra(m) for m in
                               ("native-vpn", "openvpn", "tor",
                                "shadowsocks", "scholarcloud"))
    assert extra("native-vpn") < extra("tor")
    assert extra("native-vpn") >= MiB(20)


def test_unknown_method_rejected():
    with pytest.raises(MeasurementError):
        browser_cpu_percent(ClientLoadSample("ftp-bounce", 1, 1, 1))


# -- scenarios (light versions of the figure experiments) ------------------------------------

def test_build_method_unknown():
    with pytest.raises(MeasurementError):
        scenarios.build_method(Testbed(), "carrier-pigeon")


def test_plt_experiment_first_exceeds_subsequent():
    result = scenarios.run_plt_experiment("scholarcloud", samples=3)
    assert result.first_time > result.subsequent.mean
    assert result.errors == 0


def test_rtt_experiment_reasonable_range():
    summary = scenarios.run_rtt_experiment("native-vpn", probes=5)
    assert 0.15 < summary.mean < 0.40  # a Pacific round trip


def test_plr_tor_worse_than_vpn():
    tor = scenarios.run_plr_experiment("tor", loads=6)
    vpn = scenarios.run_plr_experiment("native-vpn", loads=6)
    assert tor.rate > vpn.rate


def test_us_baseline_plr_is_tiny():
    baseline = scenarios.run_us_baseline_plr(loads=6)
    assert baseline.rate < 0.005


def test_traffic_native_vpn_heavier_than_openvpn():
    native = scenarios.run_traffic_experiment("native-vpn")
    open_vpn = scenarios.run_traffic_experiment("openvpn")
    assert native.cycle_bytes > open_vpn.cycle_bytes


def test_scalability_point_runs():
    summary = scenarios.run_scalability_point("scholarcloud", clients=3,
                                              cycles=1)
    assert summary.count >= 2
    assert summary.mean > 0
