"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 660 editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) through this shim works
offline.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
