#!/usr/bin/env python3
"""The real thing, in miniature: actual sockets, actual blinded bytes.

Starts a fake Google Scholar origin, the remote proxy, and the domestic
proxy — all on 127.0.0.1 — then fetches the Scholar home page through
the whitelisting, blinding chain, and shows what a wiretap between the
proxies would (not) see.

Run:  python examples/live_loopback_proxy.py
"""

import asyncio

from repro.core import default_codec, scholar_whitelist
from repro.crypto import shannon_entropy
from repro.realnet import (
    DomesticProxyServer,
    RemoteProxyServer,
    ScholarOrigin,
    fetch_via_proxy,
)


async def main() -> None:
    origin = await ScholarOrigin().start()
    remote = await RemoteProxyServer().start()
    domestic = await DomesticProxyServer(
        scholar_whitelist(), "127.0.0.1", remote.port,
        resolve=lambda name: ("127.0.0.1", origin.port)).start()
    print(f"origin   : 127.0.0.1:{origin.port} (fake Google Scholar)")
    print(f"remote   : 127.0.0.1:{remote.port} (outside the wall)")
    print(f"domestic : 127.0.0.1:{domestic.port} (browser-facing proxy)")

    print("\nFetching http://scholar.google.com/ through the chain:")
    response = await fetch_via_proxy("127.0.0.1", domestic.port,
                                     "http://scholar.google.com/")
    status, _, rest = response.partition(b"\r\n")
    print(f"  {status.decode()}  ({len(response)} bytes)")
    body_line = [l for l in rest.split(b"\n") if b"giants" in l]
    if body_line:
        print(f"  ... {body_line[0].strip().decode()}")

    print("\nA non-whitelisted site is refused at the domestic proxy:")
    refused = await fetch_via_proxy("127.0.0.1", domestic.port,
                                    "http://www.youtube.com/")
    refused_status = refused.partition(b"\r\n")[0].decode()
    print(f"  {refused_status}")

    print("\nWhat the wire between the proxies carries "
          "(encrypt-then-blind, as the proxies do):")
    from repro.crypto import CtrCipher
    from repro.realnet.split_proxy import tunnel_key
    request = b"GET / HTTP/1.1\r\nHost: scholar.google.com\r\n\r\n"
    encrypted = CtrCipher(tunnel_key(), b"\x00" * 16).encrypt(request)
    sample = default_codec().encode(encrypted)
    print(f"  {sample[:48].hex()}")
    print(f"  entropy: {shannon_entropy(sample):.2f} bits/byte; "
          f"plaintext visible: {b'scholar' in sample}")

    for server in (origin, remote, domestic):
        await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
