#!/usr/bin/env python3
"""Compare all five access methods, reproducing the §4.3 story.

Run:  python examples/method_comparison.py        (~30 s)
"""

from repro.measure import format_table
from repro.measure.scenarios import (
    METHOD_NAMES,
    run_plr_experiment,
    run_plt_experiment,
    run_rtt_experiment,
)


def main() -> None:
    rows = []
    for name in METHOD_NAMES:
        print(f"measuring {name} ...")
        plt = run_plt_experiment(name, samples=8)
        rtt = run_rtt_experiment(name, probes=8)
        plr = run_plr_experiment(name, loads=10)
        rows.append((
            name,
            f"{plt.first_time:.1f}",
            f"{plt.subsequent.mean:.2f}",
            f"{rtt.mean * 1000:.0f}",
            f"{plr.rate:.2%}",
        ))
    print()
    print(format_table(
        ("method", "first PLT (s)", "subseq PLT (s)", "RTT (ms)", "loss"),
        rows, title="Five ways to reach Google Scholar from Beijing"))
    print()
    print("Paper's conclusions, visible above: VPNs are robust but blunt;")
    print("Tor pays dearly at bootstrap and stays slow; Shadowsocks' auth +")
    print("keep-alive make it the slowest steady-state; ScholarCloud gets")
    print("VPN-grade robustness and latency with zero client software.")


if __name__ == "__main__":
    main()
