#!/usr/bin/env python3
"""The full ScholarCloud deployment story: §2 + §3 end to end.

Covers both halves of China's bilateral censorship system:
the GFW (technical) and the agencies (regulatory) — and shows why a
registered, whitelisted service survives where a grey proxy dies.

Run:  python examples/campus_deployment.py
"""

from repro.core import ScholarCloud, evaluate_deployment
from repro.http import Browser
from repro.measure import Testbed, format_table
from repro.policy import RegulatoryEnvironment, ServiceListing
from repro.units import DAY


def main() -> None:
    testbed = Testbed(seed=7, extra_clients=5)
    environment = RegulatoryEnvironment(testbed.sim, review_days=30)

    # -- 1. deploy and legalize -------------------------------------------------
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    number = system.register_icp(environment.registry)
    print(f"ScholarCloud deployed; ICP registration filed: {number}")
    print("Visible whitelist for the regulators:",
          ", ".join(system.whitelist.domains()))

    # A grey, unregistered proxy service also pops up on campus.
    grey = ServiceListing("GreyTunnel", "grey-tunnel.example", "proxy")
    environment.security.observe_service(grey)
    environment.security.observe_service(ServiceListing(
        "ScholarCloud", "scholar.thucloud.com", "proxy"))

    # -- 2. users configure the PAC and browse -----------------------------------
    print("\nFive scholars configure the PAC and load Google Scholar:")
    for index, host in enumerate(testbed.extra_clients):
        connector = testbed.run_process(system.attach_client(host))
        browser = Browser(testbed.sim, connector, name=f"user-{index}")
        result = testbed.run_process(browser.load(testbed.scholar_page))
        status = f"{result.plt:.2f}s" if result.succeeded else result.error
        print(f"  user-{index}: {status}")

    # -- 3. time passes: review completes, investigations run ----------------------
    environment.security.sweep()
    testbed.sim.run(until=testbed.sim.now + 120 * DAY)
    print("\nAfter the TCA review and an MPS/MSS investigation sweep:")
    registration = environment.registry.lookup(number)
    print(f"  ScholarCloud registration: {registration.status}")
    for case in environment.security.investigations:
        print(f"  investigation of {case.target.domain}: {case.outcome} "
              f"({case.evidence[0]})")

    # -- 4. the books ------------------------------------------------------------------
    report = evaluate_deployment()
    print()
    print(format_table(
        ("quantity", "value"),
        [("daily cost", f"{report.daily_cost_usd:.1f} USD (paper: 2.2)"),
         ("cost per daily user", f"{report.cost_per_daily_user_usd*100:.2f} cents"),
         ("peak load vs capacity", f"{report.peak_rps:.2f} vs "
          f"{report.capacity_rps:.0f} req/s"),
         ("sustainable", str(report.sustainable))],
        title="Deployment economics"))


if __name__ == "__main__":
    main()
