#!/usr/bin/env python3
"""Quickstart: see the GFW block Google Scholar, then deploy ScholarCloud.

Run:  python examples/quickstart.py
"""

from repro.core import ScholarCloud
from repro.measure import Testbed


def main() -> None:
    # A simulated world: client at Tsinghua, Google Scholar in the US,
    # the Great Firewall on the border link between them.
    testbed = Testbed(seed=42)

    print("1. Direct access to scholar.google.com from Beijing:")
    browser = testbed.browser()
    result = testbed.run_process(browser.load(testbed.scholar_page))
    print(f"   -> {result.error or 'loaded?!'}")
    print(f"   (the GFW injected {testbed.gfw.stats.dns_injections} forged "
          "DNS answers)")

    print("\n2. Deploying ScholarCloud (domestic proxy + blinded remote "
          "proxy):")
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())
    print("   whitelist:", ", ".join(system.whitelist.domains()))

    print("\n3. The user's entire configuration — one PAC file:")
    for line in system.pac.render().splitlines()[:6]:
        print("   " + line)
    print("   ...")

    print("\n4. Loading Google Scholar through ScholarCloud:")
    scholar_browser = testbed.browser(connector=system.connector())
    first = testbed.run_process(scholar_browser.load(testbed.scholar_page))
    testbed.sim.run(until=testbed.sim.now + 60)
    second = testbed.run_process(scholar_browser.load(testbed.scholar_page))
    print(f"   first visit : {first.plt:.2f}s  (paper: 2.1s)")
    print(f"   subsequent  : {second.plt:.2f}s  (paper: 1.3s)")
    labeled = testbed.gfw.stats.flows_labeled
    print(f"   GFW classification of the blinded flows: {labeled or 'none'}")


if __name__ == "__main__":
    main()
