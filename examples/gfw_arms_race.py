#!/usr/bin/env python3
"""The arms race: active probing kills Shadowsocks; blinding agility
keeps ScholarCloud alive through a GFW classifier update.

Run:  python examples/gfw_arms_race.py
"""

from repro.core import ScholarCloud
from repro.gfw import Classifier, GfwConfig
from repro.measure import Testbed
from repro.middleware import ShadowsocksMethod
from repro.net import IPv4Address


def act_one_probing() -> None:
    print("ACT 1 — the GFW turns on active probing (Ensafi et al. 2015)")
    testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                           active_probing=True))
    method = ShadowsocksMethod(testbed)
    testbed.run_process(method.setup())
    browser = testbed.browser(connector=method.connector())
    result = testbed.run_process(browser.load(testbed.scholar_page))
    print(f"  Shadowsocks works at first: {result.plt:.2f}s")
    testbed.sim.run(until=testbed.sim.now + 120)
    for probe in testbed.prober.results:
        print(f"  GFW probe of {probe.address}:{probe.port}: "
              f"{probe.personality} -> "
              f"{'CONFIRMED PROXY' if probe.confirmed else 'inconclusive'}")
    blocked = testbed.policy.ip_blocked(
        IPv4Address(str(testbed.remote_vm.address)))
    print(f"  server IP blocked: {blocked}")
    after = testbed.run_process(browser.load(testbed.scholar_page))
    print(f"  next page load: {after.error or f'{after.plt:.2f}s'}")


def act_two_blinding_agility() -> None:
    print("\nACT 2 — the GFW learns ScholarCloud's current blinding "
          "signature")
    testbed = Testbed(gfw_config=GfwConfig(inside_name="border-cn",
                                           active_probing=True))
    system = ScholarCloud(testbed)
    testbed.run_process(system.deploy())

    class LearnedClassifier(Classifier):
        name = "learned-unclassified-443"

        def __init__(self, jitter):
            self.jitter = jitter

        def classify(self, packet, state, policy):
            if (packet.features.protocol_tag == "unclassified"
                    and getattr(packet.payload, "dport", None) == 443
                    and system.agility.codec.jitter == self.jitter):
                return ("learned-blinded", 0.8)
            return None

    browser = testbed.browser(connector=system.connector())
    before = testbed.run_process(browser.load(testbed.scholar_page))
    print(f"  baseline load: {before.plt:.2f}s")

    def learn_signature(gfw):
        gfw.classifiers.append(
            LearnedClassifier(system.agility.codec.jitter))
        gfw.policy.set_interference("learned-blinded", 0.25)

    # Audited policy path: the change lands in gfw.policy_log/the trace.
    testbed.gfw.apply_policy(learn_signature,
                             label="learned-blinded-classifier")
    testbed.sim.run(until=testbed.sim.now + 60)
    degraded = testbed.run_process(browser.load(testbed.scholar_page))
    print(f"  after the GFW update: "
          f"{degraded.error or f'{degraded.plt:.2f}s'} "
          f"(interference drops: {testbed.gfw.stats.interference_drops})")

    epoch = system.rotate_blinding()
    print(f"  operators rotate the codec to epoch {epoch} "
          "(both proxies, one deploy, no user impact)")
    testbed.sim.run(until=testbed.sim.now + 60)
    recovered = testbed.run_process(browser.load(testbed.scholar_page))
    print(f"  after rotation: {recovered.plt:.2f}s — the learned "
          "signature is stale")

    probes = testbed.prober.results
    if probes:
        for probe in probes:
            print(f"  (GFW also probed the remote proxy: "
                  f"{probe.personality} -> survives: {not probe.confirmed})")


if __name__ == "__main__":
    act_one_probing()
    act_two_blinding_agility()
