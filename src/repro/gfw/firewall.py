"""The Great Firewall middlebox: the composed inspection pipeline.

Sits on the border link (the paper notes 99% of blocking happens at
the China–US border routers).  Per packet, in order:

1. **IP blocklist** — drop traffic to/from blocked addresses.
2. **DNS poisoning** — race forged answers for blocked names.
3. **Reset penalty** — during the post-keyword-hit window, all traffic
   between the offending pair is reset.
4. **Keyword filtering** — cleartext keyword hits trigger bidirectional
   RST injection plus a penalty window.
5. **DPI classification** — stateful per-flow labeling; labels map to
   interference (random drops at the configured rate), RST treatment
   (``blocked-sni``), or active-probe dispatch.

Everything is configurable via :class:`GfwConfig`, and the policy
object can be mutated mid-simulation — both knobs the arms-race
example and the ablation benches turn.
"""

from __future__ import annotations

import random
import typing as t
from dataclasses import dataclass, field

from ..net import Direction, Link, Middlebox, Packet, Verdict
from ..sim import Simulator, TraceLog
from ..transport.tcp import ACK_SIZE, Segment
from .active_probing import ActiveProber
from .blocklist import BlockPolicy
from .dns_poisoning import DnsPoisoner
from .dpi import Classifier, default_classifiers
from .flow_table import FlowTable


@dataclass
class GfwConfig:
    """Feature switches and tunables for one firewall instance."""

    ip_blocking: bool = True
    dns_poisoning: bool = True
    keyword_filtering: bool = True
    dpi: bool = True
    active_probing: bool = False
    #: Seconds of all-traffic resets after a keyword hit.
    reset_penalty_seconds: float = 90.0
    #: Name of the node on the Chinese side of the monitored link.
    inside_name: str = "border-cn"


@dataclass
class GfwStats:
    """Observability counters."""

    packets_seen: int = 0
    ip_blocked: int = 0
    dns_injections: int = 0
    keyword_resets: int = 0
    sni_resets: int = 0
    interference_drops: int = 0
    probes_dispatched: int = 0
    flows_labeled: t.Dict[str, int] = field(default_factory=dict)


class GreatFirewall(Middlebox):
    """The composed GFW inspection pipeline."""

    name = "gfw"

    def __init__(
        self,
        sim: Simulator,
        policy: BlockPolicy,
        config: t.Optional[GfwConfig] = None,
        rng: t.Optional[random.Random] = None,
        trace: t.Optional[TraceLog] = None,
        prober: t.Optional[ActiveProber] = None,
        classifiers: t.Optional[t.List[Classifier]] = None,
        name: t.Optional[str] = None,
    ) -> None:
        # Per-instance name so multi-region deployments (one firewall
        # per border link) stay distinguishable in traces and logs.
        if name is not None:
            self.name = name
        self.sim = sim
        self.policy = policy
        self.config = config or GfwConfig()
        self.rng = rng if rng is not None else sim.rng.stream("gfw.interference")
        self.trace = trace
        self.prober = prober
        self.classifiers = classifiers if classifiers is not None else default_classifiers()
        self.flows = FlowTable()
        self.poisoner = DnsPoisoner(sim, policy)
        self.stats = GfwStats()
        #: Audit log of mid-sim policy changes: (time, label) pairs.
        self.policy_log: t.List[t.Tuple[float, str]] = []
        # Tag-indexed classifier dispatch, built lazily per protocol tag
        # and guarded by a snapshot of the classifier list so direct
        # mutations of ``self.classifiers`` (the arms-race example
        # appends mid-sim) invalidate it on the next packet.
        self._dispatch_cache: t.Dict[str, t.List[Classifier]] = {}
        self._dispatch_snapshot: t.Optional[t.List[Classifier]] = None

    # -- mid-sim policy changes --------------------------------------------------------

    def apply_policy(self, mutation: t.Callable[["GreatFirewall"], t.Any],
                     label: str = "policy-change") -> None:
        """Apply ``mutation(self)`` now, through the audited path.

        All mid-simulation :class:`GfwConfig`/:class:`BlockPolicy`
        changes — arms-race escalations, fault scripts, ablations —
        should go through here (or :meth:`schedule_policy`) so each
        change lands in ``policy_log`` and the trace.
        """
        mutation(self)
        self._dispatch_snapshot = None  # mutation may have swapped classifiers
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            # Fluidized flows were vetted against the *old* policy;
            # force them back to packet level to re-prove themselves.
            fluid.on_policy_change(label)
        caches = getattr(self.sim, "caches", None)
        if caches is not None:
            # Cached responses were fetched under the *old* policy; a
            # change in what is reachable must not be masked by a hit.
            caches.on_policy_change(label)
        self.policy_log.append((self.sim.now, label))
        self._trace_plain("gfw.policy-change", label=label)

    def schedule_policy(self, at: float,
                        mutation: t.Callable[["GreatFirewall"], t.Any],
                        label: str = "policy-change"):
        """Apply ``mutation(self)`` at simulated time ``at``.

        Returns the timer event, so callers can await the change.
        """
        from ..errors import SimulationError
        if at < self.sim.now:
            raise SimulationError(
                f"schedule_policy(at={at}) is in the past (now={self.sim.now})")
        return self.sim.schedule(
            at - self.sim.now, lambda: self.apply_policy(mutation, label))

    # -- middlebox entry point ---------------------------------------------------------

    def process(self, packet: Packet, direction: Direction, link: Link) -> Verdict:
        self.stats.packets_seen += 1

        if self.config.ip_blocking and (
                self.policy.ip_blocked(packet.src)
                or self.policy.ip_blocked(packet.dst)):
            self.stats.ip_blocked += 1
            self._trace("gfw.ip-block", packet)
            return Verdict.DROP

        if self.config.dns_poisoning:
            before = self.poisoner.injections
            self.poisoner.inspect(packet, direction, link)
            if self.poisoner.injections > before:
                self.stats.dns_injections += 1

        src, dst = str(packet.src), str(packet.dst)
        if self.config.keyword_filtering:
            if self.flows.penalized(src, dst, self.sim.now):
                self._reset_both_ways(packet, link)
                return Verdict.DROP
            keyword = self.policy.keyword_hit(packet.features.plaintext)
            if keyword is not None:
                self.stats.keyword_resets += 1
                self.flows.penalize(
                    src, dst, self.sim.now + self.config.reset_penalty_seconds)
                self._trace("gfw.keyword", packet, keyword=keyword)
                self._reset_both_ways(packet, link)
                return Verdict.DROP

        if not self.config.dpi:
            return Verdict.PASS

        state = self.flows.observe(packet.flow, packet.size, self.sim.now)
        if state is None:
            return Verdict.PASS

        if state.label is None:
            for classifier in self._classifiers_for(packet.features.protocol_tag):
                result = classifier.classify(packet, state, self.policy)
                if result is not None:
                    state.label, state.confidence = result
                    self.stats.flows_labeled[state.label] = (
                        self.stats.flows_labeled.get(state.label, 0) + 1)
                    self._trace("gfw.classified", packet, label=state.label,
                                confidence=state.confidence)
                    break

        if state.label is None:
            return Verdict.PASS

        if state.label in self.policy.rst_classes:
            self.stats.sni_resets += 1
            self._reset_both_ways(packet, link)
            return Verdict.DROP

        self._maybe_dispatch_probe(packet, direction, state)

        loss_rate = self.policy.interference_for(state.label)
        if loss_rate > 0 and self.rng.random() < loss_rate:
            self.stats.interference_drops += 1
            self._trace("gfw.interference", packet, label=state.label)
            return Verdict.DROP
        return Verdict.PASS

    def _classifiers_for(self, tag: str) -> t.List[Classifier]:
        """Classifiers whose :attr:`~.dpi.Classifier.match_tags` admit ``tag``.

        Evaluation order within the returned list matches the full
        chain's, so dispatch is order-equivalent to running every
        classifier (non-matching ones return ``None`` by contract).
        """
        if self._dispatch_snapshot != self.classifiers:
            self._dispatch_cache = {}
            self._dispatch_snapshot = list(self.classifiers)
        matched = self._dispatch_cache.get(tag)
        if matched is None:
            matched = [classifier for classifier in self.classifiers
                       if classifier.match_tags is None
                       or tag in classifier.match_tags]
            self._dispatch_cache[tag] = matched
        return matched

    # -- actions ---------------------------------------------------------------------------

    def _reset_both_ways(self, packet: Packet, link: Link) -> None:
        """Inject forged RSTs toward both endpoints of a TCP flow."""
        if packet.protocol != "tcp":
            return
        segment = packet.payload
        if not isinstance(segment, Segment):
            return
        to_receiver = Packet(
            src=packet.src, dst=packet.dst, protocol="tcp",
            payload=Segment(segment.sport, segment.dport, seq=segment.seq,
                            ack=segment.ack, flags=frozenset({"RST"})),
            size=ACK_SIZE, flow=packet.flow)
        to_sender = Packet(
            src=packet.dst, dst=packet.src, protocol="tcp",
            payload=Segment(segment.dport, segment.sport, seq=segment.ack,
                            ack=segment.seq, flags=frozenset({"RST"})),
            size=ACK_SIZE, flow=packet.flow)
        link.inject(to_receiver, toward=self._node_toward(link, packet.dst))
        link.inject(to_sender, toward=self._node_toward(link, packet.src))

    @staticmethod
    def _node_toward(link: Link, address) -> t.Any:
        """Pick the link endpoint that leads toward ``address``.

        The endpoint whose route to the address does *not* go back
        across this very link is the one on the address's side.
        """
        from ..errors import RoutingError
        for node in (link.a, link.b):
            if node.owns(address):
                return node
            try:
                out = node.route_for(address)
            except RoutingError:
                continue
            if out is not link:
                return node
        return link.b

    def _maybe_dispatch_probe(self, packet: Packet, direction: Direction,
                              state) -> None:
        if (self.prober is None or not self.config.active_probing
                or state.probed or state.confidence >= 0.95
                or state.label != "shadowsocks"):
            return
        state.probed = True
        # The server side is the destination of outbound packets.
        outbound = direction.sender == self.config.inside_name
        server_addr = packet.dst if outbound else packet.src
        segment = packet.payload
        server_port = None
        if isinstance(segment, Segment):
            server_port = segment.dport if outbound else segment.sport
        if server_port is None:
            return
        self.stats.probes_dispatched += 1
        self.prober.suspect(server_addr, server_port,
                            on_confirm=self._on_probe_confirm)

    def _on_probe_confirm(self, address: str) -> None:
        self.policy.block_ip(address)
        fluid = getattr(self.sim, "fluid", None)
        if fluid is not None:
            fluid.on_policy_change("probe-confirmed")
        caches = getattr(self.sim, "caches", None)
        if caches is not None:
            caches.on_policy_change("probe-confirmed")
        self._trace_plain("gfw.probe-confirmed", address=address)

    # -- tracing -------------------------------------------------------------------------------

    def _trace(self, category: str, packet: Packet, **fields: t.Any) -> None:
        if self.trace is not None:
            self.trace.emit(category, packet_id=packet.packet_id,
                            src=str(packet.src), dst=str(packet.dst),
                            flow=packet.flow, **fields)

    def _trace_plain(self, category: str, **fields: t.Any) -> None:
        if self.trace is not None:
            self.trace.emit(category, **fields)
