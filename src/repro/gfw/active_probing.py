"""Active probing: connect to suspected proxy servers and fingerprint
their behaviour (Ensafi et al., IMC 2015).

When DPI flags a flow as Shadowsocks-like with sub-certain confidence,
the firewall hands the *server* endpoint to the prober.  The prober
connects from its own vantage host, sends undecryptable garbage, and
watches what happens:

* a genuine web server answers with an HTTP error → benign;
* a host that resets immediately → inconclusive;
* a host that accepts the bytes and **hangs forever** → the classic
  pre-2020 Shadowsocks tell → confirmed proxy, IP gets blocked.

ScholarCloud's remote proxy survives probing because it answers
garbage exactly like a web server (a decoy response), which is the
probe-resistance design the paper's "message blinding" relies on.
"""

from __future__ import annotations

import typing as t

from ..errors import TransportError
from ..net import IPv4Address, OPAQUE_STREAM
from ..sim import Simulator
from ..transport import TransportLayer

#: How the prober labels what it observed.
PERSONALITY_HTTP = "http-like"
PERSONALITY_HANG = "hangs-on-garbage"
PERSONALITY_RST = "resets"
PERSONALITY_UNREACHABLE = "unreachable"

#: Behaviours considered proof of a circumvention proxy.
DEFAULT_FINGERPRINTS = frozenset({PERSONALITY_HANG})


class ProbeResult(t.NamedTuple):
    address: str
    port: int
    personality: str
    confirmed: bool


class ActiveProber:
    """Probes suspects from a dedicated vantage host."""

    def __init__(
        self,
        sim: Simulator,
        transport: TransportLayer,
        probe_delay: float = 10.0,
        reply_timeout: float = 5.0,
        fingerprints: t.FrozenSet[str] = DEFAULT_FINGERPRINTS,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.probe_delay = probe_delay
        self.reply_timeout = reply_timeout
        self.fingerprints = fingerprints
        self.results: t.List[ProbeResult] = []
        self._suspected: t.Set[t.Tuple[str, int]] = set()

    def suspect(self, address: t.Union[str, IPv4Address], port: int,
                on_confirm: t.Callable[[str], None]) -> bool:
        """Queue a probe; returns False if this endpoint was already probed."""
        key = (str(address), port)
        if key in self._suspected:
            return False
        self._suspected.add(key)
        self.sim.process(self._probe(str(address), port, on_confirm),
                         name=f"probe:{address}:{port}")
        return True

    def _probe(self, address: str, port: int,
               on_confirm: t.Callable[[str], None]):
        yield self.sim.timeout(self.probe_delay)
        try:
            conn = yield self.transport.connect_tcp(
                address, port, features=OPAQUE_STREAM, timeout=10.0)
        except TransportError:
            self._record(address, port, PERSONALITY_UNREACHABLE, on_confirm)
            return
        try:
            # 48 bytes of garbage that decrypts to nothing.
            conn.send_message(48, meta=("probe-garbage",),
                              features=OPAQUE_STREAM)
            outcome = yield self.sim.any_of(
                [conn.recv_message(), self.sim.timeout(self.reply_timeout,
                                                       value="timeout")])
        except TransportError:
            # A reset during the garbage send classifies the same as a
            # reset while waiting; either way the probe socket is done.
            conn.close()
            self._record(address, port, PERSONALITY_RST, on_confirm)
            return
        values = list(outcome.values())
        if values and values[0] == "timeout":
            personality = PERSONALITY_HANG
        elif values and values[0] is None:
            personality = PERSONALITY_RST  # closed without an answer
        else:
            personality = PERSONALITY_HTTP
        conn.close()
        self._record(address, port, personality, on_confirm)

    def _record(self, address: str, port: int, personality: str,
                on_confirm: t.Callable[[str], None]) -> None:
        confirmed = personality in self.fingerprints
        self.results.append(ProbeResult(address, port, personality, confirmed))
        if confirmed:
            on_confirm(address)
