"""Deep packet inspection: traffic classifiers.

Each classifier inspects one packet's wire features plus the
accumulated :class:`~repro.gfw.flow_table.FlowState` and may assign the
flow a label.  Labels map to interference policies in the
:class:`~repro.gfw.blocklist.BlockPolicy`.

The classifiers implement the publicly documented detection vectors:

* **SNI filtering** — TLS ClientHellos name their destination in
  cleartext; blocked domains are reset (how HTTPS Google dies).
* **HTTP Host/URL filtering** — plain HTTP names its destination too.
* **Protocol fingerprinting** — PPTP/L2TP/OpenVPN framing is trivially
  recognizable (and, post-2015, tolerated).
* **Meek detection** — domain-fronted TLS to a known CDN front plus
  the transport's telltale polling cadence (Ensafi et al. 2015).
* **Shadowsocks detection** — a TCP stream with no parseable framing,
  near-uniform byte entropy from the very first packet, and the
  characteristic small first-frame length (IV ‖ encrypted address).
  ScholarCloud's blinded streams defeat exactly these last two
  features: blinding destroys framing *and* pads away the length
  signature, leaving nothing for this classifier to key on.
"""

from __future__ import annotations

import typing as t

from ..net import Packet
from .blocklist import BlockPolicy
from .flow_table import FlowState

#: A classification: (label, confidence in [0,1]).
Classification = t.Tuple[str, float]

#: CDN domains commonly used as meek fronts, per the Tor bridge DB.
KNOWN_MEEK_FRONTS = frozenset({
    "ajax.aliyun.example",          # stand-ins for the real CDN fronts
    "cdn.azureedge.example",
    "d111111abcdef8.cloudfront.example",
    "www.google.com",               # meek-google (killed in 2016)
})

#: First-frame length window of a Shadowsocks request:
#: 16-byte IV plus the encrypted SOCKS-style address block.
SS_FIRST_FRAME_RANGE = (17, 120)


class Classifier:
    """Base class: inspect a packet, maybe return a classification."""

    name = "classifier"

    #: Wire-protocol tags this classifier can possibly fire on (it must
    #: return ``None`` with no side effects for every other tag).  The
    #: firewall uses this to dispatch each packet to only the relevant
    #: classifiers instead of running the whole chain; ``None`` means
    #: "inspect every packet" and is the safe default for classifiers
    #: that do not declare their tags.
    match_tags: t.Optional[t.FrozenSet[str]] = None

    def classify(self, packet: Packet, state: FlowState,
                 policy: BlockPolicy) -> t.Optional[Classification]:
        raise NotImplementedError


class SniClassifier(Classifier):
    """Reset TLS flows whose ClientHello names a blocked domain."""

    name = "sni"
    match_tags = frozenset({"tls"})

    def classify(self, packet, state, policy):
        features = packet.features
        if features.protocol_tag != "tls" or not features.handshake:
            return None
        if policy.domain_blocked(features.sni):
            return ("blocked-sni", 1.0)
        return None


class HttpHostClassifier(Classifier):
    """Reset plain-HTTP flows whose URL names a blocked domain."""

    name = "http-host"
    match_tags = frozenset({"plain-http"})

    def classify(self, packet, state, policy):
        features = packet.features
        if features.protocol_tag != "plain-http" or not features.plaintext:
            return None
        # URL filtering: the Host header / request line is cleartext.
        hostname = features.plaintext.split("://")[-1].split("/")[0]
        if policy.domain_blocked(hostname):
            return ("blocked-sni", 1.0)  # same reset treatment
        return None


class VpnProtocolClassifier(Classifier):
    """Recognize (and by 2017 policy, tolerate) VPN framing."""

    name = "vpn"

    _TAGS = {
        "pptp-gre": "vpn-pptp",
        "l2tp-udp": "vpn-l2tp",
        "openvpn": "vpn-openvpn",
    }
    match_tags = frozenset(_TAGS)

    def classify(self, packet, state, policy):
        label = self._TAGS.get(packet.features.protocol_tag)
        if label is not None:
            return (label, 1.0)
        return None


class TorTlsClassifier(Classifier):
    """Bare Tor's distinctive TLS fingerprint (no pluggable transport)."""

    name = "tor-tls"
    match_tags = frozenset({"tor-tls"})

    def classify(self, packet, state, policy):
        if packet.features.protocol_tag == "tor-tls":
            return ("tor-tls", 0.95)
        return None


class MeekClassifier(Classifier):
    """Domain-fronted meek: known front + HTTP-polling cadence.

    meek tunnels Tor cells in HTTPS POSTs to a CDN front and polls the
    bridge on a short timer even when idle.  We require both signals:
    the front SNI (on the handshake) and at least ``min_polls`` small
    upstream packets whose spacing variance is poll-like.
    """

    name = "meek"
    match_tags = frozenset({"tls"})

    def __init__(self, min_polls: int = 4) -> None:
        self.min_polls = min_polls

    def classify(self, packet, state, policy):
        features = packet.features
        if features.protocol_tag != "tls":
            return None
        if features.handshake and features.sni in KNOWN_MEEK_FRONTS:
            # Remember the front; cadence confirms later.
            state.recent_times.append(-1.0)  # sentinel: front seen
            return None
        if -1.0 not in state.recent_times:
            return None
        if 0 < packet.size <= 600:  # small upstream poll/POST
            state.recent_times.append(state.last_seen)
            polls = [ts for ts in state.recent_times if ts >= 0]
            if len(polls) >= self.min_polls:
                return ("tor-meek", 0.9)
        return None


class ShadowsocksClassifier(Classifier):
    """No framing + first-packet ciphertext + SS-shaped first frame."""

    name = "shadowsocks"
    match_tags = frozenset({"unknown-stream"})

    def __init__(self, entropy_threshold: float = 7.5) -> None:
        self.entropy_threshold = entropy_threshold

    def classify(self, packet, state, policy):
        features = packet.features
        if features.protocol_tag != "unknown-stream":
            return None
        if features.entropy < self.entropy_threshold:
            return None
        signature = features.length_signature
        if signature is None:
            return None
        low, high = SS_FIRST_FRAME_RANGE
        if low <= signature <= high:
            return ("shadowsocks", 0.75)
        return None


def default_classifiers() -> t.List[Classifier]:
    """The 2017-era classifier pipeline, in evaluation order."""
    return [
        SniClassifier(),
        HttpHostClassifier(),
        VpnProtocolClassifier(),
        TorTlsClassifier(),
        MeekClassifier(),
        ShadowsocksClassifier(),
    ]
