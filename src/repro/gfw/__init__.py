"""The Great Firewall simulator.

Compose a :class:`GreatFirewall` from a :class:`BlockPolicy` and attach
it to the border link of a :class:`~repro.net.Network`::

    from repro.gfw import GreatFirewall, GfwConfig, default_china_policy

    policy = default_china_policy()
    gfw = GreatFirewall(sim, policy, GfwConfig(inside_name="border-cn"))
    border_link.add_middlebox(gfw)
"""

from .active_probing import (
    ActiveProber,
    DEFAULT_FINGERPRINTS,
    PERSONALITY_HANG,
    PERSONALITY_HTTP,
    PERSONALITY_RST,
    PERSONALITY_UNREACHABLE,
    ProbeResult,
)
from .blocklist import BlockPolicy, default_china_policy
from .dns_poisoning import BOGUS_ADDRESSES, DnsPoisoner
from .dpi import (
    Classifier,
    HttpHostClassifier,
    KNOWN_MEEK_FRONTS,
    MeekClassifier,
    ShadowsocksClassifier,
    SniClassifier,
    SS_FIRST_FRAME_RANGE,
    TorTlsClassifier,
    VpnProtocolClassifier,
    default_classifiers,
)
from .firewall import GfwConfig, GfwStats, GreatFirewall
from .flow_table import FlowState, FlowTable, canonical_flow

__all__ = [
    "ActiveProber",
    "BOGUS_ADDRESSES",
    "BlockPolicy",
    "Classifier",
    "DEFAULT_FINGERPRINTS",
    "DnsPoisoner",
    "FlowState",
    "FlowTable",
    "GfwConfig",
    "GfwStats",
    "GreatFirewall",
    "HttpHostClassifier",
    "KNOWN_MEEK_FRONTS",
    "MeekClassifier",
    "PERSONALITY_HANG",
    "PERSONALITY_HTTP",
    "PERSONALITY_RST",
    "PERSONALITY_UNREACHABLE",
    "ProbeResult",
    "SS_FIRST_FRAME_RANGE",
    "ShadowsocksClassifier",
    "SniClassifier",
    "TorTlsClassifier",
    "VpnProtocolClassifier",
    "canonical_flow",
    "default_china_policy",
    "default_classifiers",
]
