"""Stateful flow tracking for the firewall.

The GFW is stateful: classification decisions are made from the first
packets of a flow and then remembered, so interference applies to the
whole flow.  The table also records per-flow timing used by the meek
poll-pattern detector and supports temporary penalty entries (the
post-keyword-hit connection-reset window).
"""

from __future__ import annotations

import typing as t
from collections import deque
from dataclasses import dataclass, field

FlowKey = t.Tuple[t.Any, ...]

#: Cap on per-flow timing samples.  The meek poll detector only ever
#: needs its front-seen sentinel plus ``min_polls`` recent timestamps,
#: but long-lived polling flows used to accumulate one entry per small
#: packet for the life of the connection — exactly the unbounded-queue
#: pattern reprolint polices.
RECENT_TIMES_MAX = 64


def canonical_flow(flow: t.Optional[FlowKey]) -> t.Optional[FlowKey]:
    """Direction-independent flow key."""
    if flow is None:
        return None
    if len(flow) == 5:
        proto, src, sport, dst, dport = flow
        a, b = (str(src), sport), (str(dst), dport)
        return (proto,) + (a + b if a <= b else b + a)
    return flow


@dataclass
class FlowState:
    """Firewall-side state for one flow."""

    key: FlowKey
    first_seen: float
    packets: int = 0
    bytes: int = 0
    #: Assigned traffic-class label, once a classifier fires.
    label: t.Optional[str] = None
    confidence: float = 0.0
    #: Timestamps of recent small upstream packets (poll detection);
    #: bounded — old samples fall off the left.
    recent_times: t.Deque[float] = field(
        default_factory=lambda: deque(maxlen=RECENT_TIMES_MAX))
    #: True once an active probe has been dispatched for this flow.
    probed: bool = False
    last_seen: float = 0.0


class FlowTable:
    """Bounded flow-state store with idle eviction."""

    def __init__(self, idle_timeout: float = 120.0, max_flows: int = 100_000) -> None:
        self.idle_timeout = idle_timeout
        self.max_flows = max_flows
        self._flows: t.Dict[FlowKey, FlowState] = {}
        #: (src, dst) pairs under a temporary reset penalty, with expiry.
        self._penalties: t.Dict[t.Tuple[str, str], float] = {}

    def __len__(self) -> int:
        return len(self._flows)

    def observe(self, flow: t.Optional[FlowKey], size: int, now: float) -> t.Optional[FlowState]:
        key = canonical_flow(flow)
        if key is None:
            return None
        state = self._flows.get(key)
        if state is None:
            self._evict_if_needed(now)
            state = FlowState(key=key, first_seen=now)
            self._flows[key] = state
        state.packets += 1
        state.bytes += size
        state.last_seen = now
        return state

    def observe_bulk(self, flow: t.Optional[FlowKey], packets: int,
                     size: int, now: float) -> t.Optional[FlowState]:
        """Account a fluidized burst without per-packet ``observe`` calls.

        Timing samples (``recent_times``) are deliberately not touched:
        a flow only fluidizes once cadence-based classification is
        settled, so bulk traffic carries no per-packet timestamps.
        """
        key = canonical_flow(flow)
        if key is None:
            return None
        state = self._flows.get(key)
        if state is None:
            self._evict_if_needed(now)
            state = FlowState(key=key, first_seen=now)
            self._flows[key] = state
        state.packets += packets
        state.bytes += size
        state.last_seen = now
        return state

    def get(self, flow: t.Optional[FlowKey]) -> t.Optional[FlowState]:
        key = canonical_flow(flow)
        if key is None:
            return None
        return self._flows.get(key)

    def _evict_if_needed(self, now: float) -> None:
        if len(self._flows) < self.max_flows:
            return
        cutoff = now - self.idle_timeout
        self._flows = {key: state for key, state in self._flows.items()
                       if state.last_seen >= cutoff}

    # -- penalty window ----------------------------------------------------------

    def penalize(self, src: str, dst: str, until: float) -> None:
        """All (src, dst) traffic is reset until ``until`` (keyword hit)."""
        self._penalties[(src, dst)] = until
        self._penalties[(dst, src)] = until

    def penalized(self, src: str, dst: str, now: float) -> bool:
        expiry = self._penalties.get((src, dst))
        if expiry is None:
            return False
        if expiry < now:
            del self._penalties[(src, dst)]
            self._penalties.pop((dst, src), None)
            return False
        return True

    def labeled(self, label: str) -> t.List[FlowState]:
        return [state for state in self._flows.values() if state.label == label]
