"""DNS injection: forged answers for blocked names.

The injector watches UDP/53 queries crossing the monitored link.  For a
blocked name it forges a response with a bogus address and injects it
toward the querier from the on-path vantage point, so the forgery wins
the race against the genuine answer (Anonymous, CCR 2012).  The real
query still passes — exactly how the GFW operates.
"""

from __future__ import annotations

import typing as t

from ..dns import DnsQuery, DnsResponse, RESPONSE_SIZE
from ..dns.records import DnsRecord
from ..net import Direction, Link, Packet
from ..sim import Simulator
from ..transport.sockets import Datagram
from .blocklist import BlockPolicy

#: Addresses the GFW injects; a small rotating pool of bogus IPs
#: documented by the DNS-injection measurement literature.
BOGUS_ADDRESSES = ("8.7.198.45", "59.24.3.173", "243.185.187.39")


class DnsPoisoner:
    """Forges answers for blocked names seen on a link."""

    def __init__(self, sim: Simulator, policy: BlockPolicy) -> None:
        self.sim = sim
        self.policy = policy
        self.injections = 0
        self._rotate = 0

    def inspect(self, packet: Packet, direction: Direction, link: Link) -> None:
        """Called by the firewall for every packet; injects on matches."""
        if packet.protocol != "udp":
            return
        datagram = packet.payload
        if not isinstance(datagram, Datagram):
            return
        query = datagram.payload
        if not isinstance(query, DnsQuery):
            return
        if not self.policy.domain_blocked(query.name):
            return
        bogus = BOGUS_ADDRESSES[self._rotate % len(BOGUS_ADDRESSES)]
        self._rotate += 1
        forged = DnsResponse(
            query_id=query.query_id,
            name=query.name,
            records=(DnsRecord(query.name, "A", bogus, ttl=300.0),),
            forged=True,
        )
        reply = Packet(
            src=packet.dst,  # spoofed: appears to come from the resolver
            dst=packet.src,
            protocol="udp",
            payload=Datagram(datagram.dport, datagram.sport, forged,
                             RESPONSE_SIZE),
            size=RESPONSE_SIZE + 28,
            features=forged.features(),
            flow=packet.flow,
        )
        querier = link.a if direction.sender == link.a.name else link.b
        link.inject(reply, toward=querier)
        self.injections += 1
