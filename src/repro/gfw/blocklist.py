"""Block policy: the GFW's domain, IP, and keyword lists.

The policy is mutable at runtime — the paper stresses that both the
GFW's behaviour and government policy evolve over time, and the
arms-race example exercises exactly that.

Lookups are on the firewall's per-packet path, so they are precompiled:
domain blocking walks the queried name's suffixes against a set (O(#
labels), not O(# blocked suffixes)), and keyword scanning runs one
compiled alternation instead of one ``in`` scan per keyword.  Mutators
invalidate the compiled forms, keeping the mutable-policy contract.
"""

from __future__ import annotations

import re
import typing as t

from ..net import IPv4Address, Prefix


class BlockPolicy:
    """What the GFW considers blockable."""

    def __init__(self) -> None:
        self._domain_suffixes: t.Set[str] = set()
        self._ip_prefixes: t.List[Prefix] = []
        self._ip_exact: t.Set[IPv4Address] = set()
        self._keywords: t.Set[str] = set()
        self._keyword_pattern: t.Optional[t.Pattern[str]] = None
        #: Per-traffic-class interference loss rates (0 disables).
        #: Key space = the DPI classifier label vocabulary (a handful
        #: of fixed strings), set by operator policy, not by traffic.
        self.class_interference: t.Dict[str, float] = {}  # reprolint: disable=unbounded-cache-field
        #: Traffic classes answered with forged RSTs instead of loss.
        self.rst_classes: t.Set[str] = set()

    # -- domains -----------------------------------------------------------------

    def block_domain(self, suffix: str) -> None:
        self._domain_suffixes.add(suffix.lower().rstrip("."))

    def unblock_domain(self, suffix: str) -> None:
        self._domain_suffixes.discard(suffix.lower().rstrip("."))

    def domain_blocked(self, name: t.Optional[str]) -> bool:
        if not name:
            return False
        suffixes = self._domain_suffixes
        if not suffixes:
            return False
        name = name.lower().rstrip(".")
        # Walk the name's own suffixes (scholar.google.com → google.com
        # → com): membership tests against the set cost O(# labels)
        # however long the blocklist grows.
        while True:
            if name in suffixes:
                return True
            dot = name.find(".")
            if dot < 0:
                return False
            name = name[dot + 1:]

    # -- IPs ----------------------------------------------------------------------

    def block_ip(self, address: t.Union[str, IPv4Address]) -> None:
        self._ip_exact.add(IPv4Address(address))

    def block_prefix(self, cidr: str) -> None:
        self._ip_prefixes.append(Prefix(cidr))

    def unblock_ip(self, address: t.Union[str, IPv4Address]) -> None:
        self._ip_exact.discard(IPv4Address(address))

    def ip_blocked(self, address: IPv4Address) -> bool:
        if address in self._ip_exact:
            return True
        if not self._ip_prefixes:
            return False
        return any(address in prefix for prefix in self._ip_prefixes)

    # -- keywords --------------------------------------------------------------------

    def block_keyword(self, keyword: str) -> None:
        self._keywords.add(keyword.lower())
        self._keyword_pattern = None

    def unblock_keyword(self, keyword: str) -> None:
        self._keywords.discard(keyword.lower())
        self._keyword_pattern = None

    def keyword_hit(self, plaintext: str) -> t.Optional[str]:
        if not plaintext or not self._keywords:
            return None
        pattern = self._keyword_pattern
        if pattern is None:
            # Longest-first alternation: the leftmost, longest keyword
            # wins, a deterministic rule independent of set iteration
            # order.
            pattern = re.compile("|".join(
                re.escape(k) for k in sorted(self._keywords,
                                             key=lambda k: (-len(k), k))))
            self._keyword_pattern = pattern
        match = pattern.search(plaintext.lower())
        return match.group(0) if match is not None else None

    # -- interference ---------------------------------------------------------------------

    def interference_for(self, label: str) -> float:
        return self.class_interference.get(label, 0.0)

    def set_interference(self, label: str, loss_rate: float) -> None:
        self.class_interference[label] = loss_rate


def default_china_policy() -> BlockPolicy:
    """The 2017-era policy the paper's measurements ran under.

    * ``google.com`` (and thus Google Scholar) is domain-blocked: DNS
      poisoning plus TLS-SNI resets — the "collateral damage" the paper
      describes.
    * Flows classified as Tor-meek suffer heavy interference (the paper
      measures 4.4% loss); Shadowsocks-shaped flows get milder
      interference (0.77% total including ~0.2% path loss).
    * Registered VPN protocols (PPTP/L2TP/OpenVPN) are recognized but
      tolerated — the post-2015 legal position described in §1.
    """
    policy = BlockPolicy()
    for domain in ("google.com", "googleapis.com", "gstatic.com",
                   "youtube.com", "facebook.com", "twitter.com"):
        policy.block_domain(domain)
    policy.block_keyword("falun")
    policy.block_keyword("tiananmen-incident")
    # Flow-class interference: extra loss injected on top of the ~0.2%
    # transpacific path loss, calibrated to the paper's Figure 5c.
    policy.set_interference("tor-meek", 0.042)
    policy.set_interference("shadowsocks", 0.0055)
    policy.set_interference("tor-tls", 0.30)  # bare Tor is near-unusable
    policy.rst_classes.add("blocked-sni")
    return policy
