"""Client-side resource models for Figure 6b (CPU) and 6c (memory).

CPU percentage and resident-set size of software we do not actually
run cannot be *measured* in a simulator; DESIGN.md documents this
substitution.  What we can do honestly is account for the mechanisms
that produce the paper's ordering:

* **CPU** = browser baseline + rendering + per-byte cipher work ×
  the number of encryption layers the method stacks on the client
  (Tor onion-encrypts three times; a VPN once; ScholarCloud's client
  side does nothing beyond the browser's own TLS), plus the cost of
  any extra client process.
* **Memory** = browser baseline (the Tor Browser baseline is ~70%
  above Chrome's, per the paper's "Before" bars) + per-connection
  buffers + the method runtime's working set.

The models consume *measured* per-load traffic and connection counts
from the simulation, so they respond to workload changes; only the
unit costs are calibrated constants.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..errors import MeasurementError
from ..units import MiB

#: Chrome 56 baseline CPU while driving the measurement page (percent).
BROWSER_BASE_CPU = 2.95
#: CPU percent per client-side encryption layer per KB/s of traffic,
#: calibrated so the model lands on the paper's 3.07%..3.62% band at
#: the measured traffic volumes.
CPU_PER_LAYER_PER_KBPS = 0.063
#: Chrome 56 resident set before navigating (bytes).
CHROME_BASE_MEMORY = MiB(100)
#: Tor Browser 6.5 resident set before navigating (~70% above Chrome).
TOR_BROWSER_BASE_MEMORY = MiB(170)
#: Buffer cost per open connection.
MEMORY_PER_CONNECTION = MiB(1.5)
#: Page cache and DOM of the loaded page.
PAGE_WORKING_SET = MiB(14)


@dataclass(frozen=True)
class ResourceProfile:
    """Static per-method parameters of the cost models."""

    method: str
    #: Encryption layers applied on the client per payload byte.
    client_crypto_layers: int
    #: CPU percent consumed by the extra client process (0 if none).
    extra_client_cpu: float
    #: Resident set of the extra client process / method runtime.
    runtime_memory: int
    #: Uses the Tor Browser instead of Chrome.
    dedicated_browser: bool = False


#: Calibrated profiles for the five methods (+ the direct baseline).
PROFILES: t.Dict[str, ResourceProfile] = {
    "direct": ResourceProfile("direct", 0, 0.0, 0),
    "native-vpn": ResourceProfile(
        # MPPE in the OS network stack; no userspace client.
        "native-vpn", 1, 0.0, MiB(10)),
    "openvpn": ResourceProfile(
        "openvpn", 1, 0.12, MiB(24)),
    "tor": ResourceProfile(
        # Three onion layers plus the meek TLS in the tor client.
        "tor", 4, 0.0, MiB(58), dedicated_browser=True),
    "shadowsocks": ResourceProfile(
        "shadowsocks", 1, 0.10, MiB(32)),
    "scholarcloud": ResourceProfile(
        # Nothing runs on the client; the proxies do the blinding.
        "scholarcloud", 0, 0.0, MiB(12)),
}


@dataclass(frozen=True)
class ClientLoadSample:
    """Measured inputs from the simulation for one page-load cycle."""

    method: str
    wire_bytes: int          # client access-link bytes over the cycle
    cycle_seconds: float     # measurement cycle length (60 s)
    connections: int         # connections the load opened


def profile_for(method: str) -> ResourceProfile:
    profile = PROFILES.get(method)
    if profile is None:
        raise MeasurementError(f"no resource profile for method {method!r}")
    return profile


def browser_cpu_percent(sample: ClientLoadSample) -> float:
    """Figure 6b, 'Browser' bars."""
    profile = profile_for(sample.method)
    if sample.cycle_seconds <= 0:
        raise MeasurementError("cycle must be positive")
    kbps = sample.wire_bytes / sample.cycle_seconds / 1000.0
    # The browser always runs one TLS layer itself; tunnel layers are
    # the method's addition.
    layers = 1 + profile.client_crypto_layers
    render_overhead = 0.35 if profile.dedicated_browser else 0.0
    return BROWSER_BASE_CPU + render_overhead + CPU_PER_LAYER_PER_KBPS * layers * kbps


def extra_client_cpu_percent(method: str) -> float:
    """Figure 6b, 'Extra Client' bars."""
    return profile_for(method).extra_client_cpu


def memory_before_bytes(method: str) -> int:
    """Figure 6c, 'Before' bars: browser at rest."""
    profile = profile_for(method)
    return TOR_BROWSER_BASE_MEMORY if profile.dedicated_browser else CHROME_BASE_MEMORY


def memory_after_extra_bytes(sample: ClientLoadSample) -> int:
    """Figure 6c, 'After' minus 'Before': the method's added memory."""
    profile = profile_for(sample.method)
    return (PAGE_WORKING_SET
            + sample.connections * MEMORY_PER_CONNECTION
            + profile.runtime_memory)
