"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep that output aligned and greppable.
"""

from __future__ import annotations

import typing as t

Row = t.Sequence[t.Any]


def format_table(headers: t.Sequence[str], rows: t.Iterable[Row],
                 title: t.Optional[str] = None) -> str:
    """Fixed-width table with a rule under the header."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: t.Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def paper_vs_measured(title: str, rows: t.Iterable[t.Tuple[str, str, str]]) -> str:
    """Three-column comparison used by EXPERIMENTS.md and the benches."""
    return format_table(("quantity", "paper", "measured"), rows, title=title)


def banner(text: str) -> str:
    bar = "#" * (len(text) + 4)
    return f"{bar}\n# {text} #\n{bar}"
