"""The canonical measurement testbed.

Rebuilds the paper's §4.2 setup in simulation:

* a client laptop at Tsinghua University, inside CERNET;
* the campus recursive resolver;
* the CERNET backbone and the China–US border link — with the
  :class:`~repro.gfw.GreatFirewall` attached to it;
* the Aliyun ECS VM in San Mateo (remote endpoint for every method);
* a second VM inside the campus (ScholarCloud's domestic proxy);
* the Google Scholar origin + authoritative DNS, and a non-blocked
  US control site (for the paper's Amazon-style baseline).

Link latencies are calibrated to a ≈190 ms Beijing↔San-Mateo RTT and
≈0.2% baseline transpacific loss, the anchors reported in §4.3.
"""

from __future__ import annotations

import typing as t

from ..dns import AuthoritativeServer, RecursiveResolver, StubResolver, Zone
from ..gfw import ActiveProber, BlockPolicy, GfwConfig, GreatFirewall, default_china_policy
from ..http import Browser, DirectConnector, Page, WebServer, google_scholar_home
from ..net import Host, Link, Network, PacketCapture
from ..sim import ProcessorSharingServer, Simulator, TraceLog
from ..transport import TransportLayer, install_transport
from ..units import Mbps, ms

#: Well-known testbed addresses.
CLIENT_ADDR = "59.66.1.10"
CAMPUS_DNS_ADDR = "59.66.1.53"
DOMESTIC_VM_ADDR = "59.66.2.100"
PROBER_ADDR = "202.112.99.99"
REMOTE_VM_ADDR = "47.88.1.100"
SCHOLAR_ADDR = "172.217.194.80"
GOOGLE_DNS_ADDR = "172.217.194.53"
CONTROL_SITE_ADDR = "93.184.216.34"

DOMESTIC_SITE_ADDR = "59.66.3.50"
CN_DNS_ADDR = "59.66.1.54"

#: Hostnames.
SCHOLAR_HOST = "scholar.google.com"
CONTROL_HOST = "www.uscontrol.example"
REMOTE_VM_HOST = "vm.scholarcloud.example"
DOMESTIC_HOST = "www.tsinghua.example"

#: TCP port of the plain echo service used for RTT probes.
ECHO_PORT = 7


class Testbed:
    """One assembled world: topology, DNS, GFW, origin, client."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        seed: int = 0,
        policy: t.Optional[BlockPolicy] = None,
        gfw_config: t.Optional[GfwConfig] = None,
        baseline_loss: float = 0.002,
        pacific_one_way: float = ms(75),
        extra_clients: int = 0,
        gfw_enabled: bool = True,
        remote_replicas: int = 0,
        fluid: t.Optional[t.Any] = None,
    ) -> None:
        """``fluid`` accepts a :class:`~repro.perf.fluid.FluidConfig`
        (or a mode string from :data:`~repro.perf.fluid.MODES`); None
        keeps the simulation purely packet-level."""
        self.sim = Simulator(seed=seed)
        self.fluid = None
        if fluid is not None:
            from ..perf.fluid import FluidRegistry, fluid_config_for_mode
            config = (fluid_config_for_mode(fluid)
                      if isinstance(fluid, str) else fluid)
            if config is not None:
                self.fluid = FluidRegistry(self.sim, config).install()
        self.rng = self.sim.rng
        self.trace = TraceLog(self.sim)
        self.net = Network(self.sim, rng=self.rng, trace=self.trace)
        net = self.net

        # -- China side -------------------------------------------------------
        self.client = net.add_host("client", address=CLIENT_ADDR)
        self.campus = net.add_router("campus", address="59.66.1.1")
        self.campus_dns = net.add_host("campus-dns", address=CAMPUS_DNS_ADDR)
        self.domestic_vm = net.add_host("domestic-vm", address=DOMESTIC_VM_ADDR)
        self.cernet = net.add_router("cernet", address="101.4.0.1")
        self.border_cn = net.add_router("border-cn", address="202.112.1.1")
        self.prober_host = net.add_host("prober", address=PROBER_ADDR)

        self.domestic_site = net.add_host("domestic-site", address=DOMESTIC_SITE_ADDR)
        self.cn_dns = net.add_host("cn-dns", address=CN_DNS_ADDR)

        # -- US side ----------------------------------------------------------
        self.border_us = net.add_router("border-us", address="198.32.1.1")
        self.us_core = net.add_router("us-core", address="198.32.2.1")
        self.remote_vm = net.add_host("remote-vm", address=REMOTE_VM_ADDR)
        self.scholar_origin = net.add_host("scholar-origin", address=SCHOLAR_ADDR)
        self.google_dns = net.add_host("google-dns", address=GOOGLE_DNS_ADDR)
        self.control_site = net.add_host("control-site", address=CONTROL_SITE_ADDR)

        # -- links --------------------------------------------------------------
        net.connect(self.client, self.campus, latency=ms(1), bandwidth=Mbps(100),
                    loss=0.0002)
        net.connect(self.campus_dns, self.campus, latency=ms(1), bandwidth=Mbps(100))
        net.connect(self.domestic_vm, self.campus, latency=ms(1), bandwidth=Mbps(100),
                    loss=0.0002)
        net.connect(self.domestic_site, self.campus, latency=ms(2),
                    bandwidth=Mbps(1000))
        net.connect(self.cn_dns, self.campus, latency=ms(1), bandwidth=Mbps(100))
        net.connect(self.campus, self.cernet, latency=ms(4), bandwidth=Mbps(1000),
                    loss=0.0002)
        net.connect(self.cernet, self.border_cn, latency=ms(6), bandwidth=Mbps(1000))
        net.connect(self.prober_host, self.border_cn, latency=ms(2),
                    bandwidth=Mbps(100))
        self.border_link: Link = net.connect(
            self.border_cn, self.border_us, latency=pacific_one_way,
            bandwidth=Mbps(1000), loss=baseline_loss, name="border")
        net.connect(self.border_us, self.us_core, latency=ms(5), bandwidth=Mbps(1000))
        net.connect(self.us_core, self.remote_vm, latency=ms(2), bandwidth=Mbps(100),
                    loss=0.0002)

        # -- replica remote VMs (failover targets; none by default) ---------------
        self.remote_vms: t.List[Host] = [self.remote_vm]
        for index in range(remote_replicas):
            replica = net.add_host(f"remote-vm-{index + 2}",
                                   address=f"47.88.1.{101 + index}")
            net.connect(replica, self.us_core, latency=ms(2),
                        bandwidth=Mbps(100), loss=0.0002)
            self.remote_vms.append(replica)
        net.connect(self.us_core, self.scholar_origin, latency=ms(2),
                    bandwidth=Mbps(1000))
        net.connect(self.us_core, self.google_dns, latency=ms(2), bandwidth=Mbps(1000))
        net.connect(self.us_core, self.control_site, latency=ms(2),
                    bandwidth=Mbps(1000))

        # -- extra client population (Figure 7) -----------------------------------
        self.extra_clients: t.List[Host] = []
        for index in range(extra_clients):
            extra = net.add_host(f"client-{index}",
                                 address=f"59.66.{10 + index // 200}.{index % 200 + 11}")
            net.connect(extra, self.campus, latency=ms(1), bandwidth=Mbps(100),
                        loss=0.0002)
            self.extra_clients.append(extra)

        net.build_routes()

        # -- transports -------------------------------------------------------------
        for host in [self.client, self.campus_dns, self.domestic_vm,
                     self.prober_host, self.scholar_origin,
                     self.google_dns, self.control_site, self.domestic_site,
                     self.cn_dns] + self.remote_vms + self.extra_clients:
            install_transport(self.sim, host)

        # -- DNS ----------------------------------------------------------------------
        google_zone = Zone("google.com")
        google_zone.add_a(SCHOLAR_HOST, SCHOLAR_ADDR)
        google_zone.add_a("www.google.com", SCHOLAR_ADDR)
        misc_zone = Zone("example")
        misc_zone.add_a(CONTROL_HOST, CONTROL_SITE_ADDR)
        misc_zone.add_a(REMOTE_VM_HOST, REMOTE_VM_ADDR)
        self.misc_zone = misc_zone
        domestic_zone = Zone("tsinghua.example")
        domestic_zone.add_a(DOMESTIC_HOST, DOMESTIC_SITE_ADDR)
        # google-dns stands in for a globally-knowledgeable resolver
        # (what a VPN-provided 8.8.8.8 would answer), so it carries the
        # domestic zone as well.
        AuthoritativeServer(self.sim, self.google_dns,
                            [google_zone, misc_zone, domestic_zone])
        AuthoritativeServer(self.sim, self.cn_dns, [domestic_zone])
        self.recursive = RecursiveResolver(self.sim, self.campus_dns)
        self.recursive.add_authority("google.com", GOOGLE_DNS_ADDR)
        self.recursive.add_authority("example", GOOGLE_DNS_ADDR)
        self.recursive.add_authority("tsinghua.example", CN_DNS_ADDR)
        self.resolver = StubResolver(self.sim, self.client,
                                     upstream=CAMPUS_DNS_ADDR)

        # -- origins ---------------------------------------------------------------------
        self.scholar_server = WebServer(self.sim, self.scholar_origin)
        self.scholar_page: Page = google_scholar_home()
        self.scholar_server.add_page(self.scholar_page)
        self.control_server = WebServer(self.sim, self.control_site)
        from ..http import plain_site_page
        self.control_page = plain_site_page(CONTROL_HOST)
        self.control_server.add_page(self.control_page)
        self.domestic_server = WebServer(self.sim, self.domestic_site,
                                         https_only=False)
        self.domestic_page = plain_site_page(DOMESTIC_HOST)
        self.domestic_server.add_page(self.domestic_page)

        # -- shared server resources + echo services ------------------------------------
        # The single-core Aliyun ECS VM: every server-side middleware
        # component submits its CPU demand here (Figure 7's bottleneck).
        self.remote_cpu = ProcessorSharingServer(self.sim, capacity=1.0,
                                                 name="remote-vm-cpu")
        self.remote_cpus: t.List[ProcessorSharingServer] = [self.remote_cpu]
        for replica in self.remote_vms[1:]:
            self.remote_cpus.append(ProcessorSharingServer(
                self.sim, capacity=1.0, name=f"{replica.name}-cpu"))
        self.domestic_cpu = ProcessorSharingServer(self.sim, capacity=1.0,
                                                   name="domestic-vm-cpu")
        _install_echo(self.sim, self.transport_of(self.scholar_origin))
        _install_echo(self.sim, self.transport_of(self.control_site))

        # -- the GFW ------------------------------------------------------------------------
        self.policy = policy if policy is not None else default_china_policy()
        self.gfw_config = gfw_config or GfwConfig(inside_name="border-cn")
        self.prober = ActiveProber(
            self.sim, t.cast(TransportLayer, self.prober_host.transport))
        self.gfw: t.Optional[GreatFirewall] = None
        if gfw_enabled:
            self.gfw = GreatFirewall(
                self.sim, self.policy, self.gfw_config,
                rng=self.rng.stream("gfw.interference"), trace=self.trace,
                prober=self.prober)
            self.border_link.add_middlebox(self.gfw)

    # -- conveniences -----------------------------------------------------------------------

    def transport_of(self, host: Host) -> TransportLayer:
        return t.cast(TransportLayer, host.transport)

    def direct_connector(self, host: t.Optional[Host] = None,
                         resolver: t.Optional[StubResolver] = None) -> DirectConnector:
        client = host or self.client
        return DirectConnector(self.sim, self.transport_of(client),
                               resolver or self.resolver)

    def browser(self, connector=None, host: t.Optional[Host] = None) -> Browser:
        if connector is None:
            connector = self.direct_connector(host)
        return Browser(self.sim, connector)

    def capture_client_link(self) -> PacketCapture:
        return PacketCapture(self.sim).attach(
            self.net.link_between("client", "campus"))

    def capture_border(self) -> PacketCapture:
        return PacketCapture(self.sim).attach(self.border_link)

    def run_process(self, generator, name: t.Optional[str] = None):
        """Run one process to completion and return its value."""
        return self.sim.run(until=self.sim.process(generator, name=name))

    def start_background_traffic(self, interval: float = 2.0,
                                 size: int = 120) -> None:
        """A light domestic flow from the client (IM heartbeats etc.).

        Native VPN's full-tunnel routing drags this traffic through the
        tunnel too — the paper's explanation for why it adds the most
        traffic overhead in Figure 6a.
        """
        transport = self.transport_of(self.client)

        def heartbeat(sim):
            while True:
                transport.send_udp(DOMESTIC_SITE_ADDR, 5005,
                                   payload="heartbeat", length=size)
                yield sim.timeout(interval)

        self.transport_of(self.domestic_site).listen_udp(
            5005, lambda *args: None)
        self.sim.process(heartbeat(self.sim), name="background-traffic")


def _install_echo(sim: Simulator, transport: TransportLayer) -> None:
    """TCP echo service on port 7, used by the RTT probes (Figure 5b)."""

    def acceptor(conn):
        def server(sim, conn):
            while True:
                meta = yield conn.recv_message()
                if meta is None:
                    return
                conn.send_message(64, meta=("echo", meta))
        sim.process(server(sim, conn), name="echo")
    transport.listen_tcp(ECHO_PORT, acceptor)
