"""The §4.1 user survey (Figure 3).

371 responses collected on Tsinghua's BBS in July 2015.  The published
marginals are encoded as data; a seeded sampler draws synthetic
respondent populations whose empirical distribution converges to them
(useful for resampling-style confidence intervals on the figure).
"""

from __future__ import annotations

import random
import typing as t
from dataclasses import dataclass

from ..errors import MeasurementError
from ..sim import RngRegistry

#: Published marginals.
TOTAL_RESPONDENTS = 371
BYPASS_SHARE = 0.26
#: Of those who bypass:
METHOD_SHARES: t.Dict[str, float] = {
    "vpn": 0.43,
    "shadowsocks": 0.21,
    "tor": 0.02,
    "other": 0.34,
}
#: Of VPN users:
VPN_FLAVOR_SHARES: t.Dict[str, float] = {
    "native-vpn": 0.93,
    "openvpn": 0.07,
}


@dataclass(frozen=True)
class Respondent:
    """One synthetic survey answer."""

    bypasses: bool
    method: t.Optional[str]  # None when not bypassing


def expected_counts(total: int = TOTAL_RESPONDENTS) -> t.Dict[str, float]:
    """Expected respondent counts per category."""
    bypassers = total * BYPASS_SHARE
    counts: t.Dict[str, float] = {"no-bypass": total - bypassers}
    for method, share in METHOD_SHARES.items():
        if method == "vpn":
            for flavor, flavor_share in VPN_FLAVOR_SHARES.items():
                counts[flavor] = bypassers * share * flavor_share
        else:
            counts[method] = bypassers * share
    return counts


def sample_population(total: int = TOTAL_RESPONDENTS,
                      seed: int = 2015,
                      rng: t.Optional[random.Random] = None) -> t.List[Respondent]:
    """Draw a synthetic population matching the published marginals.

    Sampling draws from the ``"survey.population"`` registry stream, so
    regeneration is seed-stable with the rest of the testbed; pass
    ``rng=testbed.rng.stream("survey.population")`` to tie a survey to a
    running experiment, or a private ``random.Random`` in tests.
    """
    if total <= 0:
        raise MeasurementError("population must be positive")
    if rng is None:
        # Standalone Figure-3 harness: no Simulator (and hence no
        # kernel-owned registry) exists here, so a private registry
        # seeded from the explicit argument is the deterministic choice.
        rng = RngRegistry(seed).stream("survey.population")  # reprolint: disable=rng-stream-registry
    population: t.List[Respondent] = []
    methods = list(METHOD_SHARES)
    weights = [METHOD_SHARES[m] for m in methods]
    for _ in range(total):
        if rng.random() >= BYPASS_SHARE:
            population.append(Respondent(bypasses=False, method=None))
            continue
        method = rng.choices(methods, weights=weights)[0]
        if method == "vpn":
            flavors = list(VPN_FLAVOR_SHARES)
            flavor_weights = [VPN_FLAVOR_SHARES[f] for f in flavors]
            method = rng.choices(flavors, weights=flavor_weights)[0]
        population.append(Respondent(bypasses=True, method=method))
    return population


def tabulate(population: t.Sequence[Respondent]) -> t.Dict[str, int]:
    """Counts per category, Figure 3 style."""
    counts: t.Dict[str, int] = {}
    for respondent in population:
        key = respondent.method if respondent.bypasses else "no-bypass"
        counts[key] = counts.get(key, 0) + 1
    return counts


def figure3_distribution(population: t.Sequence[Respondent]) -> t.Dict[str, float]:
    """The figure's reported fractions, from a (synthetic) population."""
    counts = tabulate(population)
    total = len(population)
    bypassers = total - counts.get("no-bypass", 0)
    if bypassers == 0:
        raise MeasurementError("no bypassers in population")
    vpn = counts.get("native-vpn", 0) + counts.get("openvpn", 0)
    return {
        "bypass-share": bypassers / total,
        "vpn": vpn / bypassers,
        "native-vpn-within-vpn": (counts.get("native-vpn", 0) / vpn) if vpn else 0.0,
        "openvpn-within-vpn": (counts.get("openvpn", 0) / vpn) if vpn else 0.0,
        "shadowsocks": counts.get("shadowsocks", 0) / bypassers,
        "tor": counts.get("tor", 0) / bypassers,
        "other": counts.get("other", 0) / bypassers,
    }
