"""Canonical experiment scenarios — one per figure of the paper.

Each function builds a fresh :class:`Testbed`, installs one access
method, and reproduces the corresponding measurement of §4.2/4.3:
60 s-spaced page loads of the Google Scholar home page from a client
at Tsinghua, against the Aliyun VM in San Mateo.

The benches in ``benchmarks/`` call these functions and print the
same rows/series the paper reports.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..core import ScholarCloud
from ..errors import MeasurementError
from ..http import Browser
from ..middleware import (
    DirectMethod,
    NativeVpn,
    OpenVpn,
    ShadowsocksMethod,
    TorMethod,
)
from ..cache import CacheConfig
from ..faults import FaultSchedule, standard_fault_script
from ..overload import OverloadConfig
from .metrics import (
    Availability,
    CacheReport,
    OverloadReport,
    Summary,
    availability,
    loss_rate,
    summarize,
)
from .testbed import ECHO_PORT, SCHOLAR_HOST, Testbed

#: Methods measured in the paper's Figures 5–7.
METHOD_NAMES = ("native-vpn", "openvpn", "tor", "shadowsocks", "scholarcloud")
#: Interval between measurements (§4.2: one access per 60 s).
MEASUREMENT_INTERVAL = 60.0


def build_method(testbed: Testbed, name: str,
                 overload: t.Optional[OverloadConfig] = None,
                 cache: t.Optional[CacheConfig] = None):
    """Instantiate (but not set up) an access method by name."""
    factories = {
        "direct": DirectMethod,
        "native-vpn": NativeVpn,
        "openvpn": OpenVpn,
        "tor": TorMethod,
        "shadowsocks": ShadowsocksMethod,
        "scholarcloud": ScholarCloud,
    }
    factory = factories.get(name)
    if factory is None:
        raise MeasurementError(f"unknown access method {name!r}")
    if name == "scholarcloud":
        return ScholarCloud(testbed, overload=overload, cache=cache)
    if overload is not None:
        raise MeasurementError(
            f"{name} has no overload-protection layer to configure")
    if cache is not None:
        raise MeasurementError(
            f"{name} has no edge-cache layer to configure")
    return factory(testbed)


@dataclass
class MethodWorld:
    """A testbed with one access method installed and set up."""

    testbed: Testbed
    method: t.Any
    browser: Browser
    setup_time: float


def prepare(name: str, seed: int = 0,
            overload: t.Optional[OverloadConfig] = None,
            cache: t.Optional[CacheConfig] = None,
            **testbed_kwargs) -> MethodWorld:
    """Fresh testbed + method, set up and ready to measure."""
    testbed = Testbed(seed=seed, **testbed_kwargs)
    method = build_method(testbed, name, overload=overload, cache=cache)
    started = testbed.sim.now
    testbed.run_process(method.setup(), name=f"setup:{name}")
    setup_time = testbed.sim.now - started
    browser = testbed.browser(connector=method.connector())
    return MethodWorld(testbed, method, browser, setup_time)


# -- Figure 5a: page load time ---------------------------------------------------------

@dataclass
class PltResult:
    method: str
    #: First-time PLT including method bootstrap (the paper's framing
    #: for Tor: "connection setup ... involves interactions with
    #: multiple bridges and relays").
    first_time: float
    subsequent: Summary
    errors: int = 0


def run_plt_experiment(method: str, samples: int = 20,
                       seed: int = 0) -> PltResult:
    """First-time and subsequent PLTs, 60 s apart (Figure 5a)."""
    world = prepare(method, seed=seed)
    testbed, browser = world.testbed, world.browser
    first = testbed.run_process(browser.load(testbed.scholar_page))
    first_time = world.setup_time + first.plt
    subsequent: t.List[float] = []
    errors = 0 if first.succeeded else 1
    for _ in range(samples):
        testbed.sim.run(until=testbed.sim.now + MEASUREMENT_INTERVAL)
        result = testbed.run_process(browser.load(testbed.scholar_page))
        if result.succeeded:
            subsequent.append(result.plt)
        else:
            errors += 1
    if not subsequent:
        raise MeasurementError(f"{method}: every load failed")
    return PltResult(method, first_time, summarize(subsequent), errors)


# -- Figure 5b: round-trip time -----------------------------------------------------------

def run_rtt_experiment(method: str, probes: int = 20,
                       seed: int = 0) -> Summary:
    """Application-level echo RTT to the Scholar origin (Figure 5b).

    A 64-byte request/response on an established stream through the
    method's full path — the network-level efficiency measure that the
    paper correlates with PLT.
    """
    world = prepare(method, seed=seed)
    testbed = world.testbed
    connector = world.method.connector()
    rtts: t.List[float] = []

    def probe_process(sim):
        stream = yield from connector.open(SCHOLAR_HOST, ECHO_PORT,
                                           use_tls=False)
        for _ in range(probes):
            started = sim.now
            stream.send(64, meta=("ping", started))
            reply = yield stream.recv()
            if reply is None:
                break
            rtts.append(sim.now - started)
            yield sim.timeout(1.0)
        stream.close()

    testbed.run_process(probe_process(testbed.sim), name=f"rtt:{method}")
    if not rtts:
        raise MeasurementError(f"{method}: no RTT samples")
    return summarize(rtts)


# -- Figure 5c: packet loss rate -------------------------------------------------------------

@dataclass
class PlrResult:
    method: str
    sent: int
    dropped: int

    @property
    def rate(self) -> float:
        return loss_rate(self.dropped, self.sent)


def run_plr_experiment(method: str, loads: int = 15, seed: int = 0) -> PlrResult:
    """Packet loss on the border link during page loads (Figure 5c)."""
    world = prepare(method, seed=seed)
    testbed, browser = world.testbed, world.browser
    link = testbed.border_link
    base_sent = sum(link.packets_sent.values())
    base_dropped = sum(link.packets_dropped.values())
    for _ in range(loads):
        testbed.run_process(browser.load(testbed.scholar_page))
        testbed.sim.run(until=testbed.sim.now + MEASUREMENT_INTERVAL)
    sent = sum(link.packets_sent.values()) - base_sent
    dropped = sum(link.packets_dropped.values()) - base_dropped
    return PlrResult(method, sent, dropped)


def run_us_baseline_plr(loads: int = 15, seed: int = 0) -> PlrResult:
    """The paper's control: the same methods from the US stay <0.1%.

    Modeled as direct access with the GFW absent — the loss that
    remains is pure path noise.
    """
    testbed = Testbed(seed=seed, gfw_enabled=False)
    browser = testbed.browser()
    link = testbed.border_link
    for _ in range(loads):
        testbed.run_process(browser.load(testbed.scholar_page))
        testbed.sim.run(until=testbed.sim.now + MEASUREMENT_INTERVAL)
    return PlrResult("us-baseline",
                     sum(link.packets_sent.values()),
                     sum(link.packets_dropped.values()))


# -- Figure 6a: traffic -------------------------------------------------------------------------

@dataclass
class TrafficResult:
    method: str
    #: Bytes on the client access link over one 60 s measurement cycle
    #: containing one page load.
    cycle_bytes: int
    connections: int


def run_traffic_experiment(method: str, seed: int = 0,
                           background: bool = True) -> TrafficResult:
    """Client access-link bytes per measurement cycle (Figure 6a).

    Includes everything the method makes the client emit: tunnel
    headers, handshakes, keepalives — and, for full-tunnel native VPN,
    the re-routed background domestic traffic.
    """
    world = prepare(method, seed=seed)
    testbed, browser = world.testbed, world.browser
    if background:
        testbed.start_background_traffic()
    if isinstance(world.method, NativeVpn):
        world.method.start_keepalives()
    # Settle into steady state, then measure one cycle containing a
    # cold page access (the paper measures a full visit's traffic).
    testbed.sim.run(until=testbed.sim.now + MEASUREMENT_INTERVAL)
    browser.clear_caches()
    capture = testbed.capture_client_link()
    start = testbed.sim.now
    result = testbed.run_process(browser.load(testbed.scholar_page))
    testbed.sim.run(until=start + MEASUREMENT_INTERVAL)
    return TrafficResult(method, capture.bytes_total(), result.connections_opened)


def run_direct_us_traffic(seed: int = 0, background: bool = True) -> TrafficResult:
    """The dotted 19 KB line: a direct access with no GFW.

    Measured identically to the method cycles (same background noise,
    same cold access) so the difference is purely method overhead.
    """
    testbed = Testbed(seed=seed, gfw_enabled=False)
    browser = testbed.browser()
    if background:
        testbed.start_background_traffic()
    testbed.sim.run(until=testbed.sim.now + MEASUREMENT_INTERVAL)
    capture = testbed.capture_client_link()
    start = testbed.sim.now
    result = testbed.run_process(browser.load(testbed.scholar_page))
    testbed.sim.run(until=start + MEASUREMENT_INTERVAL)
    return TrafficResult("direct-us", capture.bytes_total(),
                         result.connections_opened)


# -- Fault matrix: availability under a scripted fault timeline ------------------------

@dataclass
class AvailabilityResult:
    """One method's session availability under a fault script."""

    method: str
    availability: Availability
    #: Raw ``(started_at, succeeded)`` session samples.
    samples: t.List[t.Tuple[float, bool]]
    #: The injector's applied/reverted fault timeline.
    timeline: t.List[t.Tuple[float, str, str, str]]
    #: ScholarCloud only: transpacific failovers and exhausted dials.
    failovers: int = 0
    dials_failed: int = 0


def run_fault_experiment(method: str, attempts: int = 18,
                         interval: float = 30.0, seed: int = 0,
                         script: t.Optional[FaultSchedule] = None,
                         remote_replicas: int = 1,
                         retries: int = 1,
                         read_timeout: float = 20.0) -> AvailabilityResult:
    """Repeated page-load sessions while a fault script runs.

    Every method faces the same timeline (same seed → byte-identical
    faults); the browser is configured with one transport retry and a
    response deadline so transient failures are absorbed rather than
    stalled through, and the testbed carries ``remote_replicas``
    standby remote VMs for methods that can use them (ScholarCloud's
    failover pool).
    """
    world = prepare(method, seed=seed, remote_replicas=remote_replicas)
    testbed = world.testbed
    browser = Browser(testbed.sim, world.method.connector(),
                      name=f"fault-{method}", retries=retries,
                      read_timeout=read_timeout)
    if script is None:
        script = standard_fault_script(testbed.rng.stream("faults.schedule"))
    injector = script.install(testbed)
    samples: t.List[t.Tuple[float, bool]] = []

    def driver(sim):
        for _ in range(attempts):
            result = yield sim.process(browser.load(testbed.scholar_page))
            samples.append((round(result.started_at, 6), result.succeeded))
            yield sim.timeout(interval)

    testbed.run_process(driver(testbed.sim), name=f"faults:{method}")
    failovers = dials_failed = 0
    domestic = getattr(world.method, "domestic", None)
    if domestic is not None:
        failovers = domestic.pool.failovers
        dials_failed = domestic.dials_failed
    return AvailabilityResult(
        method=method,
        availability=availability(samples),
        samples=samples,
        timeline=list(injector.timeline),
        failovers=failovers,
        dials_failed=dials_failed,
    )


# -- Figure 7: scalability --------------------------------------------------------------------------

#: The paper's x-axis.
CONCURRENCY_LEVELS = (5, 15, 30, 60, 90, 120, 150, 180)


def run_scalability_point(method: str, clients: int, cycles: int = 3,
                          seed: int = 0, mode: str = "packet") -> Summary:
    """Mean PLT with ``clients`` concurrent browsers (one Figure 7 point).

    ``mode`` selects the simulation mode (``packet``/``hybrid``/
    ``fluid``, see :mod:`repro.perf.fluid`); ``packet`` is the
    byte-identical default.
    """
    world = prepare(method, seed=seed, extra_clients=clients, fluid=mode)
    testbed = world.testbed
    plts: t.List[float] = []
    done: t.List[t.Any] = []

    def client_loop(sim, host, offset):
        connector = yield from world.method.attach_client(host)
        browser = Browser(sim, connector, name=f"browser-{host.name}")
        yield sim.timeout(offset)
        # Warm-up: populate caches, then measure.
        yield sim.process(browser.load(testbed.scholar_page))
        for _ in range(cycles):
            yield sim.timeout(MEASUREMENT_INTERVAL)
            result = yield sim.process(browser.load(testbed.scholar_page))
            if result.succeeded:
                plts.append(result.plt)

    rng = testbed.rng.stream("scalability-offsets")
    processes = []
    for index, host in enumerate(testbed.extra_clients[:clients]):
        offset = rng.uniform(0, MEASUREMENT_INTERVAL)
        processes.append(testbed.sim.process(
            client_loop(testbed.sim, host, offset), name=f"load-{index}"))
    testbed.sim.run(until=testbed.sim.all_of(processes))
    if not plts:
        raise MeasurementError(f"{method}: no scalability samples")
    return summarize(plts)


# -- Overload: the Figure 7 sweep past its knee -----------------------------------------------

@dataclass
class OverloadResult:
    """One overload experiment point (Figure 7 extended past 180)."""

    method: str
    clients: int
    #: Measured (non-warm-up) loads that succeeded / failed.
    completed: int
    failed: int
    #: Failed loads whose error was an admission shed.
    client_sheds: int
    #: PLT summary of the successful loads (None if none succeeded).
    plt: t.Optional[Summary]
    #: Server-side degradation counters (admission + queue delays).
    report: OverloadReport
    #: The admission controller's full decision log, for
    #: seed-robustness assertions (empty with overload off).
    decisions: t.List[t.Tuple[float, str, str, int]]
    #: Edge-cache report (None when the method has no cache deployed).
    cache: t.Optional[CacheReport] = None
    #: Total bytes that crossed the transpacific border link (both
    #: directions) over the whole run, cache or no cache.
    transpacific_bytes: int = 0

    @property
    def goodput(self) -> float:
        return self.report.goodput

    @property
    def shed_rate(self) -> float:
        return self.report.shed_rate


def run_overload_point(method: str = "scholarcloud", clients: int = 60,
                       cycles: int = 3, seed: int = 0,
                       overload: t.Optional[OverloadConfig] = None,
                       total_deadline: t.Optional[float] = None,
                       mode: str = "packet",
                       workload: str = "home",
                       ) -> OverloadResult:
    """One extended-Figure-7 point, optionally with overload knobs on.

    The client driver is event-for-event identical to
    :func:`run_scalability_point` — same rng stream, same process
    names, same warm-up — so with ``overload=None``,
    ``total_deadline=None``, and the defaults ``mode="packet"`` /
    ``workload="home"`` the PLT summary is byte-identical to the
    untouched Figure 7 harness (a regression test holds this).

    ``mode`` selects the simulation mode (see :mod:`repro.perf.fluid`);
    ``workload`` picks the page each client loads: ``"home"`` (the
    19 KB Scholar home page) or ``"pdf"`` (a 1.2 MB paper download,
    the bulk steady-state traffic the fluid fast path collapses).
    """
    world = prepare(method, seed=seed, overload=overload,
                    extra_clients=clients, fluid=mode)
    testbed = world.testbed
    if workload == "home":
        work_page = testbed.scholar_page
    elif workload == "pdf":
        from ..http import scholar_pdf
        work_page = scholar_pdf()
        testbed.scholar_server.add_page(work_page)
    else:
        raise MeasurementError(f"unknown workload {workload!r}")
    plts: t.List[float] = []
    outcomes: t.List[t.Tuple[bool, t.Optional[str]]] = []

    def client_loop(sim, host, offset):
        connector = yield from world.method.attach_client(host)
        browser = Browser(sim, connector, name=f"browser-{host.name}",
                          total_deadline=total_deadline)
        yield sim.timeout(offset)
        # Warm-up: populate caches, then measure.
        yield sim.process(browser.load(work_page))
        for _ in range(cycles):
            yield sim.timeout(MEASUREMENT_INTERVAL)
            result = yield sim.process(browser.load(work_page))
            outcomes.append((result.succeeded, result.error))
            if result.succeeded:
                plts.append(result.plt)

    rng = testbed.rng.stream("scalability-offsets")
    processes = []
    for index, host in enumerate(testbed.extra_clients[:clients]):
        offset = rng.uniform(0, MEASUREMENT_INTERVAL)
        processes.append(testbed.sim.process(
            client_loop(testbed.sim, host, offset), name=f"load-{index}"))
    testbed.sim.run(until=testbed.sim.all_of(processes))

    completed = sum(1 for succeeded, _ in outcomes if succeeded)
    failed = len(outcomes) - completed
    client_sheds = sum(1 for succeeded, error in outcomes
                       if not succeeded and error is not None
                       and error.startswith("OverloadError"))
    offered = admitted = shed = deadline_drops = 0
    queue_delays: t.Tuple[float, ...] = ()
    decisions: t.List[t.Tuple[float, str, str, int]] = []
    domestic = getattr(world.method, "domestic", None)
    if domestic is not None:
        # domestic.deadline_drops mirrors admission.record_expired, so
        # one counter covers both (no double counting).
        deadline_drops = domestic.deadline_drops
        if domestic.admission is not None:
            admission = domestic.admission
            offered = admission.offered
            admitted = admission.admitted
            shed = admission.shed
            queue_delays = tuple(admission.queue_delays)
            decisions = list(admission.decisions)
    report = OverloadReport(
        offered=offered, admitted=admitted, shed=shed,
        deadline_drops=deadline_drops, completed=completed,
        duration=testbed.sim.now, queue_delays=queue_delays)
    return OverloadResult(
        method=method, clients=clients, completed=completed, failed=failed,
        client_sheds=client_sheds,
        plt=summarize(plts) if plts else None,
        report=report, decisions=decisions,
        transpacific_bytes=sum(testbed.border_link.bytes_sent.values()))


def run_repeated_query_point(method: str = "scholarcloud", clients: int = 60,
                             cycles: int = 3, seed: int = 0,
                             overload: t.Optional[OverloadConfig] = None,
                             cache: t.Optional[CacheConfig] = None,
                             total_deadline: t.Optional[float] = None,
                             mode: str = "packet",
                             corpus_size: t.Optional[int] = None,
                             zipf_s: t.Optional[float] = None,
                             ) -> OverloadResult:
    """One repeated-query (scraper-shaped) workload point.

    Models the deployment's dominant traffic per ROADMAP §4b: a small
    corpus of popular Scholar queries hit over and over.  Each client
    warms up on the home page, then per measurement cycle issues a
    *burst* of 1–4 result-page loads (scraper sessions re-query in
    runs), each page drawn Zipf-distributed from the corpus — so the
    head queries repeat across clients and an edge cache can pay off.

    The client driver keeps :func:`run_overload_point`'s discipline —
    same ``scalability-offsets`` stream, same ``load-{index}`` process
    names, same warm-up and 60 s cycle cadence — and draws all workload
    randomness from the dedicated ``cache.zipf`` stream, so the arrival
    schedule is comparable across ``cache=None`` / ``cache=...`` runs
    and fully seed-deterministic.

    Returns an :class:`OverloadResult` whose ``cache`` field carries
    the edge :class:`~repro.measure.metrics.CacheReport` (with PLT
    split into hit/miss loads) and whose ``transpacific_bytes`` counts
    both directions of the border link.
    """
    from ..cache import DEFAULT_CORPUS, DEFAULT_ZIPF_S, ZipfSampler, query_corpus
    world = prepare(method, seed=seed, overload=overload, cache=cache,
                    extra_clients=clients, fluid=mode)
    testbed = world.testbed
    corpus = query_corpus(corpus_size if corpus_size is not None
                          else DEFAULT_CORPUS)
    for page in corpus:
        testbed.scholar_server.add_page(page)
    sampler = ZipfSampler(len(corpus), s=(zipf_s if zipf_s is not None
                                          else DEFAULT_ZIPF_S))
    zipf_rng = testbed.rng.stream("cache.zipf")
    plts: t.List[float] = []
    hit_plts: t.List[float] = []
    miss_plts: t.List[float] = []
    outcomes: t.List[t.Tuple[bool, t.Optional[str]]] = []

    def client_loop(sim, host, offset):
        connector = yield from world.method.attach_client(host)
        browser = Browser(sim, connector, name=f"browser-{host.name}",
                          total_deadline=total_deadline)
        yield sim.timeout(offset)
        # Warm-up: home page populates pools and session tickets.
        yield sim.process(browser.load(testbed.scholar_page))
        for _ in range(cycles):
            yield sim.timeout(MEASUREMENT_INTERVAL)
            for _query in range(sampler.burst_length(zipf_rng)):
                page = corpus[sampler.sample(zipf_rng)]
                result = yield sim.process(browser.load(page))
                outcomes.append((result.succeeded, result.error))
                if result.succeeded:
                    plts.append(result.plt)
                    if result.all_from_cache:
                        hit_plts.append(result.plt)
                    else:
                        miss_plts.append(result.plt)
                # Scraper think time between queries in a burst.
                yield sim.timeout(1.0)

    rng = testbed.rng.stream("scalability-offsets")
    processes = []
    for index, host in enumerate(testbed.extra_clients[:clients]):
        offset = rng.uniform(0, MEASUREMENT_INTERVAL)
        processes.append(testbed.sim.process(
            client_loop(testbed.sim, host, offset), name=f"load-{index}"))
    testbed.sim.run(until=testbed.sim.all_of(processes))

    completed = sum(1 for succeeded, _ in outcomes if succeeded)
    failed = len(outcomes) - completed
    client_sheds = sum(1 for succeeded, error in outcomes
                       if not succeeded and error is not None
                       and error.startswith("OverloadError"))
    offered = admitted = shed = deadline_drops = 0
    queue_delays: t.Tuple[float, ...] = ()
    decisions: t.List[t.Tuple[float, str, str, int]] = []
    domestic = getattr(world.method, "domestic", None)
    if domestic is not None:
        deadline_drops = domestic.deadline_drops
        if domestic.admission is not None:
            admission = domestic.admission
            offered = admission.offered
            admitted = admission.admitted
            shed = admission.shed
            queue_delays = tuple(admission.queue_delays)
            decisions = list(admission.decisions)
    cache_report: t.Optional[CacheReport] = None
    edge_cache = getattr(world.method, "cache", None)
    if edge_cache is not None:
        cache_report = edge_cache.report(
            plt_hit=summarize(hit_plts) if hit_plts else None,
            plt_miss=summarize(miss_plts) if miss_plts else None)
    report = OverloadReport(
        offered=offered, admitted=admitted, shed=shed,
        deadline_drops=deadline_drops, completed=completed,
        duration=testbed.sim.now, queue_delays=queue_delays)
    return OverloadResult(
        method=method, clients=clients, completed=completed, failed=failed,
        client_sheds=client_sheds,
        plt=summarize(plts) if plts else None,
        report=report, decisions=decisions,
        cache=cache_report,
        transpacific_bytes=sum(testbed.border_link.bytes_sent.values()))
