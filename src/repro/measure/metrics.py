"""Summary statistics for measurement series."""

from __future__ import annotations

import math
import typing as t
from dataclasses import dataclass

from ..errors import MeasurementError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    stdev: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.3f} "
                f"[{self.minimum:.3f}, {self.maximum:.3f}] "
                f"p50={self.p50:.3f} p95={self.p95:.3f}")


def percentile(sorted_values: t.Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        raise MeasurementError("percentile of an empty series")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    interpolated = (sorted_values[lower] * (1 - weight)
                    + sorted_values[upper] * weight)
    # Clamp: float interpolation of near-equal neighbours can land a
    # ULP outside the sample range.
    return min(max(interpolated, sorted_values[0]), sorted_values[-1])


def summarize(values: t.Iterable[float]) -> Summary:
    """Summary statistics of a series."""
    series = sorted(float(v) for v in values)
    if not series:
        raise MeasurementError("cannot summarize an empty series")
    n = len(series)
    # Clamp: float summation of near-equal values can land the mean a
    # ULP outside the sample range (e.g. mean([0.95] * 3) < 0.95).
    mean = min(max(sum(series) / n, series[0]), series[-1])
    variance = sum((v - mean) ** 2 for v in series) / n if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        minimum=series[0],
        maximum=series[-1],
        p50=percentile(series, 0.50),
        p95=percentile(series, 0.95),
        stdev=math.sqrt(variance),
    )


def goodput(completed: int, duration: float) -> float:
    """Useful completions per second over ``duration``.

    Goodput — not throughput — is the degradation metric that matters
    under overload: bytes moved for requests that ultimately failed or
    were abandoned count for nothing.
    """
    if completed < 0:
        raise MeasurementError(f"negative completion count: {completed}")
    if duration < 0:
        raise MeasurementError(f"negative duration: {duration}")
    if duration == 0:
        return 0.0
    return completed / duration


def shed_rate(shed: int, offered: int) -> float:
    """Fraction of offered work shed by admission control, in [0,1]."""
    if shed < 0 or offered < 0:
        raise MeasurementError("negative shed/offered counts")
    if offered == 0:
        return 0.0
    return min(1.0, shed / offered)


def queue_delay_percentiles(
    delays: t.Iterable[float],
    fractions: t.Sequence[float] = (0.50, 0.95, 0.99),
) -> t.Dict[float, float]:
    """Percentiles of a queueing-delay series; all-zero when empty.

    An empty series means nothing ever queued, for which "zero delay"
    is the honest summary — raising would force every caller to
    special-case the healthy, unqueued system.
    """
    series = sorted(float(d) for d in delays)
    if not series:
        return {fraction: 0.0 for fraction in fractions}
    return {fraction: percentile(series, fraction)
            for fraction in fractions}


@dataclass(frozen=True)
class OverloadReport:
    """Degradation summary of one overload experiment point."""

    offered: int
    admitted: int
    shed: int
    deadline_drops: int
    completed: int
    duration: float
    queue_delays: t.Tuple[float, ...] = ()

    @property
    def goodput(self) -> float:
        return goodput(self.completed, self.duration)

    @property
    def shed_rate(self) -> float:
        return shed_rate(self.shed, self.offered)

    def queue_delay(self, fraction: float) -> float:
        return queue_delay_percentiles(self.queue_delays,
                                       (fraction,))[fraction]

    def __str__(self) -> str:
        return (f"offered={self.offered} admitted={self.admitted} "
                f"shed={self.shed} ({self.shed_rate:.0%}) "
                f"drops={self.deadline_drops} "
                f"goodput={self.goodput:.3f}/s "
                f"qdelay p95={self.queue_delay(0.95):.3f}s")


@dataclass(frozen=True)
class CacheReport:
    """One edge-cache tier's hit/miss/coherence summary.

    Built by :meth:`repro.cache.ResponseCache.report`; the optional
    PLT summaries split page loads by whether every object came from
    the cache (the headline hit-vs-miss latency comparison).
    """

    hits: int
    misses: int
    insertions: int
    evictions: int
    expirations: int
    invalidations: int
    #: Live occupancy at report time.
    entries: int
    bytes_in_cache: int
    #: Response bytes served from the cache (browser-leg wire bytes).
    bytes_served: int
    #: Blinded transpacific bytes (request + response frames) that hits
    #: did not put on the border link.
    transpacific_bytes_avoided: int
    #: PLT of loads served entirely from cache / with at least one miss.
    plt_hit: t.Optional[Summary] = None
    plt_miss: t.Optional[Summary] = None
    #: Streaming digest of the event sequence (determinism assertions).
    event_digest: str = ""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 when nothing was looked up."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        line = (f"lookups={self.lookups} hits={self.hits} "
                f"({self.hit_rate:.0%}) evict={self.evictions} "
                f"expire={self.expirations} "
                f"invalidate={self.invalidations} "
                f"served={self.bytes_served}B "
                f"transpacific_avoided={self.transpacific_bytes_avoided}B")
        if self.plt_hit is not None and self.plt_miss is not None:
            line += (f" plt(hit)p50={self.plt_hit.p50:.3f}s"
                     f" plt(miss)p50={self.plt_miss.p50:.3f}s")
        return line


#: Region-health component weights.  Breaker state dominates: an open
#: breaker means live dials are failing *now*, while shed and
#: interference rates are leading indicators of pressure.  A full
#: blackout (every breaker open) lands the score at 0.40 — firmly below
#: the 0.5 degradation threshold even with zero shed/interference.
HEALTH_WEIGHT_SHED = 0.25
HEALTH_WEIGHT_INTERFERENCE = 0.15
HEALTH_WEIGHT_BREAKERS = 0.60
#: A region scoring below this is degraded (survival migrates away).
HEALTH_DEGRADED_BELOW = 0.5


@dataclass(frozen=True)
class RegionHealth:
    """One region's composite health sample.

    Three normalized pressure signals — admission shed rate, firewall
    interference rate, and the fraction of transpacific circuit
    breakers currently open — fold into a single ``score`` in [0, 1]
    (1.0 = fully healthy).  The survival layer samples this per region
    to decide when a whole region is degraded enough to drain.
    """

    region: str
    shed_rate: float
    interference_rate: float
    breaker_open_fraction: float

    @property
    def score(self) -> float:
        penalty = (HEALTH_WEIGHT_SHED * self.shed_rate
                   + HEALTH_WEIGHT_INTERFERENCE * self.interference_rate
                   + HEALTH_WEIGHT_BREAKERS * self.breaker_open_fraction)
        return max(0.0, 1.0 - min(1.0, penalty))

    def degraded(self, threshold: float = HEALTH_DEGRADED_BELOW) -> bool:
        return self.score < threshold

    def __str__(self) -> str:
        return (f"{self.region}: score={self.score:.2f} "
                f"(shed={self.shed_rate:.0%} "
                f"interference={self.interference_rate:.0%} "
                f"breakers={self.breaker_open_fraction:.0%})")


def region_health(
    region: str,
    shed: int = 0,
    offered: int = 0,
    interference_drops: int = 0,
    packets_seen: int = 0,
    breakers_open: int = 0,
    breakers_total: int = 0,
) -> RegionHealth:
    """Fold raw counters (usually interval deltas) into a health sample.

    Zero-denominator inputs read as "no evidence of trouble": a region
    that offered nothing shed nothing.
    """
    if min(shed, offered, interference_drops, packets_seen,
           breakers_open, breakers_total) < 0:
        raise MeasurementError("negative region-health counters")
    interference = (min(1.0, interference_drops / packets_seen)
                    if packets_seen else 0.0)
    breakers = (min(1.0, breakers_open / breakers_total)
                if breakers_total else 0.0)
    return RegionHealth(
        region=region,
        shed_rate=shed_rate(shed, offered),
        interference_rate=interference,
        breaker_open_fraction=breakers)


def loss_rate(dropped: int, sent: int) -> float:
    """Packet loss rate in [0,1]; zero traffic counts as zero loss."""
    if sent < 0 or dropped < 0:
        raise MeasurementError("negative packet counts")
    if sent == 0:
        return 0.0
    return min(1.0, dropped / sent)


@dataclass(frozen=True)
class Availability:
    """Session availability under faults.

    Computed from a series of timestamped session attempts: the success
    rate, the number of distinct outages the method recovered from, and
    the worst observed time-to-recovery (first failure of an outage to
    the next success; ``inf`` if the series ends mid-outage — the
    method never came back).
    """

    attempts: int
    successes: int
    recoveries: int
    worst_time_to_recovery: float

    @property
    def success_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.successes / self.attempts

    def __str__(self) -> str:
        ttr = ("-" if self.worst_time_to_recovery == 0.0
               else f"{self.worst_time_to_recovery:.1f}s"
               if math.isfinite(self.worst_time_to_recovery) else "never")
        return (f"{self.successes}/{self.attempts} "
                f"({self.success_rate:.0%}), worst TTR {ttr}")


@dataclass(frozen=True)
class AvailabilitySeries:
    """Availability over time: fixed buckets of session outcomes.

    ``attempts[i]``/``successes[i]`` cover simulated time
    ``[i * bucket, (i+1) * bucket)``.  Buckets with no attempts report
    a rate of ``None`` (no evidence, rather than a fake 0% or 100%).
    """

    bucket: float
    attempts: t.Tuple[int, ...]
    successes: t.Tuple[int, ...]

    @property
    def rates(self) -> t.Tuple[t.Optional[float], ...]:
        return tuple(
            (ok / n) if n else None
            for ok, n in zip(self.successes, self.attempts))

    def worst_rate(self) -> float:
        """Lowest observed bucket rate (1.0 if nothing was observed)."""
        observed = [rate for rate in self.rates if rate is not None]
        return min(observed) if observed else 1.0

    def __str__(self) -> str:
        cells = ["-" if rate is None else f"{rate:.0%}"
                 for rate in self.rates]
        return f"bucket={self.bucket:g}s [{' '.join(cells)}]"


def availability_over_time(
    samples: t.Sequence[t.Tuple[float, bool]],
    bucket: float,
    horizon: t.Optional[float] = None,
) -> AvailabilitySeries:
    """Fold ``(timestamp, succeeded)`` samples into fixed time buckets.

    ``horizon`` pads the series with empty buckets out to a common
    length, so per-region series from separate simulations align when a
    fleet report merges them.
    """
    if bucket <= 0:
        raise MeasurementError(f"bucket must be positive, got {bucket}")
    last = max((when for when, _ in samples), default=0.0)
    if horizon is not None:
        last = max(last, horizon)
    count = int(last // bucket) + 1
    attempts = [0] * count
    successes = [0] * count
    for when, succeeded in samples:
        if when < 0:
            raise MeasurementError(f"negative sample timestamp: {when}")
        index = int(when // bucket)
        attempts[index] += 1
        if succeeded:
            successes[index] += 1
    return AvailabilitySeries(bucket=bucket, attempts=tuple(attempts),
                              successes=tuple(successes))


def merge_series(series: t.Sequence[AvailabilitySeries]) -> AvailabilitySeries:
    """Sum aligned availability series (e.g. one per fleet region)."""
    if not series:
        raise MeasurementError("cannot merge zero availability series")
    buckets = {s.bucket for s in series}
    if len(buckets) != 1:
        raise MeasurementError(f"mismatched bucket widths: {sorted(buckets)}")
    length = max(len(s.attempts) for s in series)
    attempts = [0] * length
    successes = [0] * length
    for s in series:
        for index, (n, ok) in enumerate(zip(s.attempts, s.successes)):
            attempts[index] += n
            successes[index] += ok
    return AvailabilitySeries(bucket=series[0].bucket,
                              attempts=tuple(attempts),
                              successes=tuple(successes))


def availability(samples: t.Sequence[t.Tuple[float, bool]]) -> Availability:
    """Fold ``(timestamp, succeeded)`` session samples into Availability.

    Timestamps must be non-decreasing (they come straight out of a
    simulation run, so they are).
    """
    attempts = 0
    successes = 0
    recoveries = 0
    worst_ttr = 0.0
    outage_started: t.Optional[float] = None
    last_time: t.Optional[float] = None
    for when, succeeded in samples:
        if last_time is not None and when < last_time:
            raise MeasurementError("availability samples out of order")
        last_time = when
        attempts += 1
        if succeeded:
            successes += 1
            if outage_started is not None:
                recoveries += 1
                worst_ttr = max(worst_ttr, when - outage_started)
                outage_started = None
        elif outage_started is None:
            outage_started = when
    if outage_started is not None:
        worst_ttr = math.inf
    return Availability(attempts=attempts, successes=successes,
                        recoveries=recoveries,
                        worst_time_to_recovery=worst_ttr)
