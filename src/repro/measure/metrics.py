"""Summary statistics for measurement series."""

from __future__ import annotations

import math
import typing as t
from dataclasses import dataclass

from ..errors import MeasurementError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    stdev: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.3f} "
                f"[{self.minimum:.3f}, {self.maximum:.3f}] "
                f"p50={self.p50:.3f} p95={self.p95:.3f}")


def percentile(sorted_values: t.Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        raise MeasurementError("percentile of an empty series")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    interpolated = (sorted_values[lower] * (1 - weight)
                    + sorted_values[upper] * weight)
    # Clamp: float interpolation of near-equal neighbours can land a
    # ULP outside the sample range.
    return min(max(interpolated, sorted_values[0]), sorted_values[-1])


def summarize(values: t.Iterable[float]) -> Summary:
    """Summary statistics of a series."""
    series = sorted(float(v) for v in values)
    if not series:
        raise MeasurementError("cannot summarize an empty series")
    n = len(series)
    mean = sum(series) / n
    variance = sum((v - mean) ** 2 for v in series) / n if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        minimum=series[0],
        maximum=series[-1],
        p50=percentile(series, 0.50),
        p95=percentile(series, 0.95),
        stdev=math.sqrt(variance),
    )


def loss_rate(dropped: int, sent: int) -> float:
    """Packet loss rate in [0,1]; zero traffic counts as zero loss."""
    if sent < 0 or dropped < 0:
        raise MeasurementError("negative packet counts")
    if sent == 0:
        return 0.0
    return min(1.0, dropped / sent)
