"""DNS records and zones."""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..errors import DnsError
from ..net import IPv4Address


@dataclass(frozen=True)
class DnsRecord:
    """A single resource record (A or CNAME)."""

    name: str
    rtype: str  # "A" or "CNAME"
    value: str  # dotted quad for A, target name for CNAME
    ttl: float = 300.0

    def address(self) -> IPv4Address:
        if self.rtype != "A":
            raise DnsError(f"{self.name}: not an A record")
        return IPv4Address(self.value)


class Zone:
    """An authoritative zone: name -> records."""

    def __init__(self, origin: str) -> None:
        self.origin = origin.lower().rstrip(".")
        self._records: t.Dict[str, t.List[DnsRecord]] = {}

    def add(self, name: str, rtype: str, value: str, ttl: float = 300.0) -> DnsRecord:
        record = DnsRecord(name.lower().rstrip("."), rtype.upper(), value, ttl)
        self._records.setdefault(record.name, []).append(record)
        return record

    def add_a(self, name: str, address: t.Union[str, IPv4Address], ttl: float = 300.0) -> DnsRecord:
        return self.add(name, "A", str(IPv4Address(address)), ttl)

    def add_cname(self, name: str, target: str, ttl: float = 300.0) -> DnsRecord:
        return self.add(name, "CNAME", target.lower().rstrip("."), ttl)

    def lookup(self, name: str) -> t.List[DnsRecord]:
        """Records for ``name``, following at most 8 CNAME hops in-zone."""
        name = name.lower().rstrip(".")
        out: t.List[DnsRecord] = []
        for _ in range(8):
            records = self._records.get(name, [])
            out.extend(records)
            cnames = [r for r in records if r.rtype == "CNAME"]
            if not cnames:
                break
            name = cnames[0].value
        return out

    def covers(self, name: str) -> bool:
        name = name.lower().rstrip(".")
        return name == self.origin or name.endswith("." + self.origin)
