"""DNS query/response payloads carried over simulated UDP.

A query exposes the looked-up name in plaintext on the wire — exactly
the observable the GFW's DNS poisoner keys on.
"""

from __future__ import annotations

import itertools
import typing as t
from dataclasses import dataclass, field

from ..net import WireFeatures
from .records import DnsRecord

#: UDP payload size of a typical query / response.
QUERY_SIZE = 45
RESPONSE_SIZE = 90

_query_ids = itertools.count(1)


@dataclass(frozen=True)
class DnsQuery:
    name: str
    rtype: str = "A"
    query_id: int = field(default_factory=lambda: next(_query_ids))

    def features(self) -> WireFeatures:
        return WireFeatures(
            protocol_tag="dns", plaintext=self.name, entropy=3.5)


@dataclass(frozen=True)
class DnsResponse:
    query_id: int
    name: str
    records: t.Tuple[DnsRecord, ...]
    rcode: str = "NOERROR"  # or "NXDOMAIN"
    #: True on answers forged by an on-path injector; endpoints cannot
    #: see this flag (it is not part of wire features) — it exists so
    #: tests and analysis can audit poisoning after the fact.
    forged: bool = False

    def features(self) -> WireFeatures:
        return WireFeatures(
            protocol_tag="dns", plaintext=self.name, entropy=3.5)
