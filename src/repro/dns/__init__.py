"""Simulated DNS: zones, authoritative servers, stub/recursive resolvers."""

from .message import DnsQuery, DnsResponse, QUERY_SIZE, RESPONSE_SIZE
from .records import DnsRecord, Zone
from .resolver import RecursiveResolver, StubResolver
from .server import AuthoritativeServer, DNS_PORT

__all__ = [
    "AuthoritativeServer",
    "DNS_PORT",
    "DnsQuery",
    "DnsRecord",
    "DnsResponse",
    "QUERY_SIZE",
    "RESPONSE_SIZE",
    "RecursiveResolver",
    "StubResolver",
    "Zone",
]
