"""Stub and recursive resolvers with caches.

The resolution chain mirrors a campus setup: the client's
:class:`StubResolver` asks the campus :class:`RecursiveResolver`, which
asks the authoritative servers — and, when the authority sits outside
the border, the recursive query crosses the GFW, where the DNS poisoner
races the genuine answer.  Resolvers accept the *first* response whose
query id matches, which is the vulnerability DNS injection exploits.
"""

from __future__ import annotations

import typing as t

from ..errors import NameResolutionError
from ..net import Host, IPv4Address
from ..sim import Event, Simulator
from .message import DnsQuery, DnsResponse, QUERY_SIZE
from .records import DnsRecord
from .server import DNS_PORT

#: Stub resolver retry schedule (seconds between retries).
RETRY_INTERVALS = (1.0, 2.0, 4.0)


class _CacheEntry:
    __slots__ = ("records", "expires", "rcode")

    def __init__(self, records: t.Tuple[DnsRecord, ...], expires: float, rcode: str) -> None:
        self.records = records
        self.expires = expires
        self.rcode = rcode


class _ResolverCore:
    """Shared query/cache machinery for stub and recursive resolvers."""

    def __init__(self, sim: Simulator, host: Host, upstream: IPv4Address,
                 client_port: int) -> None:
        self.sim = sim
        self.host = host
        self.upstream = upstream
        self.cache: t.Dict[str, _CacheEntry] = {}
        self._pending: t.Dict[int, Event] = {}
        self._port = client_port
        host.transport.listen_udp(client_port, self._on_response)
        self.queries_sent = 0
        self.cache_hits = 0

    def flush_cache(self) -> None:
        self.cache.clear()

    def cached(self, name: str) -> t.Optional[_CacheEntry]:
        name = name.lower().rstrip(".")
        entry = self.cache.get(name)
        if entry is None:
            return None
        if entry.expires < self.sim.now:
            del self.cache[name]
            return None
        return entry

    def resolve(self, name: str,
                upstream: t.Optional[IPv4Address] = None) -> Event:
        """Event that fires with an :class:`IPv4Address` for ``name``.

        Fails with :class:`NameResolutionError` on NXDOMAIN or timeout.
        """
        name = name.lower().rstrip(".")
        result = self.sim.event()
        entry = self.cached(name)
        if entry is not None:
            self.cache_hits += 1
            self._finish(result, name, entry.records, entry.rcode)
            return result
        self.sim.process(
            self._query_process(name, result, upstream or self.upstream),
            name=f"dns:{name}")
        return result

    def _query_process(self, name: str, result: Event, upstream: IPv4Address):
        last_error: t.Optional[Exception] = None
        for interval in RETRY_INTERVALS:
            query = DnsQuery(name)
            waiter = self.sim.event()
            self._pending[query.query_id] = waiter
            self.queries_sent += 1
            self.host.transport.send_udp(
                upstream, DNS_PORT, payload=query, length=QUERY_SIZE,
                sport=self._port, features=query.features())
            outcome = yield self.sim.any_of([waiter, self.sim.timeout(interval)])
            self._pending.pop(query.query_id, None)
            responses = [v for v in outcome.values() if isinstance(v, DnsResponse)]
            if responses:
                response = responses[0]
                self._cache_and_finish(result, name, response)
                return
            last_error = NameResolutionError(f"{name}: DNS query timed out")
        result.fail(last_error or NameResolutionError(f"{name}: resolution failed"))

    def _cache_and_finish(self, result: Event, name: str, response: DnsResponse) -> None:
        ttl = min((r.ttl for r in response.records), default=60.0)
        self.cache[name] = _CacheEntry(response.records, self.sim.now + ttl,
                                       response.rcode)
        self._finish(result, name, response.records, response.rcode)

    def _finish(self, result: Event, name: str,
                records: t.Tuple[DnsRecord, ...], rcode: str) -> None:
        if rcode != "NOERROR":
            result.fail(NameResolutionError(f"{name}: {rcode}"))
            return
        a_records = [r for r in records if r.rtype == "A"]
        if not a_records:
            result.fail(NameResolutionError(f"{name}: no A records"))
            return
        result.succeed(a_records[0].address())

    def _on_response(self, payload: t.Any, length: int,
                     src: IPv4Address, sport: int) -> None:
        if not isinstance(payload, DnsResponse):
            return
        waiter = self._pending.pop(payload.query_id, None)
        if waiter is not None and not waiter.triggered:
            # First matching answer wins — forged answers that arrive
            # early are accepted, which is exactly how DNS poisoning
            # defeats stub resolvers.
            waiter.succeed(payload)


class StubResolver(_ResolverCore):
    """Client-side resolver: cache + retries against one upstream.

    ``port`` must differ between multiple resolvers on one host (a VPN
    method installs its own tunnel-side resolver next to the system
    one, exactly as a real VPN client rewrites resolv.conf).
    """

    def __init__(self, sim: Simulator, host: Host,
                 upstream: t.Union[str, IPv4Address], port: int = 5353) -> None:
        super().__init__(sim, host, IPv4Address(upstream), client_port=port)


class RecursiveResolver(_ResolverCore):
    """Campus recursive resolver: answers stubs, queries authorities.

    Resolution strategy is simplified: one configured authoritative
    address per suffix, consulted directly (no root/TLD walk) — the
    paper's mechanisms need the border crossing, not the full
    delegation tree.
    """

    def __init__(self, sim: Simulator, host: Host) -> None:
        # ``upstream`` is unused for the recursive resolver; it picks
        # the authority per query.  Use a placeholder address.
        super().__init__(sim, host, IPv4Address("0.0.0.0"), client_port=5354)
        self._authorities: t.List[t.Tuple[str, IPv4Address]] = []
        host.transport.listen_udp(DNS_PORT, self._on_client_query)
        self.client_queries = 0

    def add_authority(self, suffix: str, address: t.Union[str, IPv4Address]) -> None:
        """Route queries for ``*.suffix`` to the authority at ``address``."""
        self._authorities.append((suffix.lower().rstrip("."), IPv4Address(address)))
        # Longest suffix first.
        self._authorities.sort(key=lambda pair: -len(pair[0]))

    def authority_for(self, name: str) -> t.Optional[IPv4Address]:
        name = name.lower().rstrip(".")
        for suffix, address in self._authorities:
            if name == suffix or name.endswith("." + suffix):
                return address
        return None

    def _on_client_query(self, payload: t.Any, length: int,
                         src: IPv4Address, sport: int) -> None:
        if not isinstance(payload, DnsQuery):
            return
        self.client_queries += 1
        self.sim.process(self._serve(payload, src, sport),
                         name=f"recurse:{payload.name}")

    def _serve(self, query: DnsQuery, src: IPv4Address, sport: int):
        from .message import RESPONSE_SIZE
        authority = self.authority_for(query.name)
        if authority is None:
            response = DnsResponse(query.query_id, query.name, (), rcode="NXDOMAIN")
        else:
            result = self.resolve(query.name, upstream=authority)
            entry_records: t.Tuple[DnsRecord, ...] = ()
            rcode = "NOERROR"
            try:
                yield result
            except NameResolutionError:
                rcode = "NXDOMAIN"
            else:
                cached = self.cached(query.name)
                if cached is not None:
                    entry_records = cached.records
            response = DnsResponse(query.query_id, query.name,
                                   entry_records, rcode=rcode)
        self.host.transport.send_udp(
            src, sport, payload=response, length=RESPONSE_SIZE,
            sport=DNS_PORT, features=response.features())
