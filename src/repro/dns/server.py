"""Authoritative DNS server over simulated UDP."""

from __future__ import annotations

import typing as t

from ..net import Host, IPv4Address
from ..sim import Simulator
from ..transport import TransportLayer
from .message import DnsQuery, DnsResponse, RESPONSE_SIZE
from .records import Zone

DNS_PORT = 53


class AuthoritativeServer:
    """Serves one or more zones on UDP port 53 of its host."""

    def __init__(self, sim: Simulator, host: Host, zones: t.Iterable[Zone]) -> None:
        self.sim = sim
        self.host = host
        self.zones = list(zones)
        self.queries_served = 0
        transport = t.cast(TransportLayer, host.transport)
        transport.listen_udp(DNS_PORT, self._on_query)

    def add_zone(self, zone: Zone) -> None:
        self.zones.append(zone)

    def _on_query(self, payload: t.Any, length: int,
                  src: IPv4Address, sport: int) -> None:
        if not isinstance(payload, DnsQuery):
            return
        self.queries_served += 1
        response = self._answer(payload)
        transport = t.cast(TransportLayer, self.host.transport)
        transport.send_udp(
            src, sport, payload=response, length=RESPONSE_SIZE,
            sport=DNS_PORT, features=response.features())

    def _answer(self, query: DnsQuery) -> DnsResponse:
        # Most-specific zone wins (a delegated child zone shadows its
        # parent), exactly like real zone cuts.
        covering = sorted((z for z in self.zones if z.covers(query.name)),
                          key=lambda z: -len(z.origin))
        for zone in covering:
            records = tuple(zone.lookup(query.name))
            if records:
                return DnsResponse(query.query_id, query.name, records)
        return DnsResponse(query.query_id, query.name, (), rcode="NXDOMAIN")
