"""Canonical fault scripts for the availability experiments.

:func:`standard_fault_script` is the repo's reference failure scenario:
a ~10-minute window containing one of every fault class the paper's
measurement period plausibly saw.  Timing is jittered from an injected
rng stream (use ``testbed.rng.stream("faults.schedule")``) so the
schedule is seed-stable but not metronomic.
"""

from __future__ import annotations

import random
import typing as t

from .schedule import FaultSchedule

if t.TYPE_CHECKING:  # pragma: no cover
    from ..gfw import GreatFirewall


def _escalate(gfw: "GreatFirewall") -> None:
    """The GFW turns the screws mid-session (paper §2.1, Fig. 5c).

    * meek's domain-fronted flows graduate from heavy loss to forged
      RSTs — the 2016-era escalation that made bare meek unusable;
    * Shadowsocks-shaped flows get ~4x the interference drop rate;
    * the keyword reset-penalty window doubles.
    """
    gfw.policy.rst_classes.add("tor-meek")
    gfw.policy.set_interference("shadowsocks", 0.02)
    gfw.config.reset_penalty_seconds *= 2.0


def _block_remote_vm(gfw: "GreatFirewall") -> None:
    from ..measure.testbed import REMOTE_VM_ADDR
    gfw.policy.block_ip(REMOTE_VM_ADDR)


def _unblock_remote_vm(gfw: "GreatFirewall") -> None:
    from ..measure.testbed import REMOTE_VM_ADDR
    gfw.policy.unblock_ip(REMOTE_VM_ADDR)


def overload_storm(rng: random.Random, clients: int = 24,
                   spike_at: float = 60.0, spike_duration: float = 90.0,
                   crash_at: float = 120.0, crash_downtime: float = 40.0,
                   hostname: str = "scholar.google.com") -> FaultSchedule:
    """Overload composed with faults: a flash crowd, then a crash in it.

    1. a flash crowd of ``clients`` held sessions floods the domestic
       proxy — with admission control on, the excess is shed rather
       than queued;
    2. mid-storm, the remote VM crashes and restarts — the failover
       pool's breaker opens under the combined pressure and must
       recover once the VM returns;
    3. a border-link brownout overlaps the tail, so the recovery
       happens on a degraded path.

    Timing is jittered from ``rng`` like :func:`standard_fault_script`,
    so one seed yields one byte-identical storm.
    """
    def jittered(base: float, spread: float) -> float:
        return max(0.0, base + rng.uniform(-spread, spread))

    script = FaultSchedule()
    script.load_spike("domestic-vm", at=jittered(spike_at, 5.0),
                      duration=spike_duration, clients=clients,
                      hostname=hostname)
    script.proxy_crash("remote-vm", at=jittered(crash_at, 8.0),
                       downtime=crash_downtime)
    script.link_degrade("border", at=jittered(crash_at + 30.0, 5.0),
                        duration=jittered(40.0, 5.0), loss=0.05)
    return script


def standard_fault_script(rng: random.Random) -> FaultSchedule:
    """The reference scenario used by the fault-matrix bench.

    1. a border-link brownout (8% loss) early on — pure path noise;
    2. the shared remote VM crashes and restarts ~1 minute later —
       per-endpoint services vanish, the GFW is not involved;
    3. a permanent GFW policy escalation (see :func:`_escalate`);
    4. an Ensafi-style spatiotemporal IP-block burst of the remote VM's
       address, lifted after ~2 minutes;
    5. a DNS-poison burst for the US control site — which every
       tunneled method should absorb, since none resolve through the
       poisoned campus path.
    """
    def jittered(base: float, spread: float) -> float:
        return max(0.0, base + rng.uniform(-spread, spread))

    script = FaultSchedule()
    script.link_degrade("border", at=jittered(45.0, 5.0),
                        duration=jittered(25.0, 5.0), loss=0.08)
    script.proxy_crash("remote-vm", at=jittered(150.0, 10.0),
                       downtime=jittered(55.0, 8.0))
    script.gfw_policy(jittered(255.0, 10.0), "escalation", _escalate)
    script.gfw_policy(jittered(330.0, 10.0), "ip-block-burst",
                      _block_remote_vm, revert=_unblock_remote_vm,
                      duration=jittered(110.0, 10.0))
    script.dns_poison_burst(jittered(470.0, 10.0), jittered(50.0, 5.0),
                            domain="uscontrol.example")
    return script
