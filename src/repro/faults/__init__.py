"""Deterministic fault injection and the resilience layer that survives it.

Two halves:

* :mod:`repro.faults.schedule` — scripts timed, seeded fault events
  (link flaps, proxy crashes, GFW escalations, DNS-poison bursts)
  against a running :class:`~repro.measure.testbed.Testbed`;
* :mod:`repro.faults.resilience` — retry with capped jittered backoff,
  per-remote circuit breakers, and a health-checked failover pool, used
  by the ScholarCloud connector and domestic proxy.
"""

from .resilience import CircuitBreaker, Endpoint, FailoverPool, RetryPolicy
from .schedule import FaultEvent, FaultInjector, FaultSchedule
from .scripts import overload_storm, standard_fault_script

__all__ = [
    "CircuitBreaker",
    "Endpoint",
    "FailoverPool",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "RetryPolicy",
    "overload_storm",
    "standard_fault_script",
]
