"""Resilience primitives: retry policy, circuit breaker, failover pool.

The paper's availability story (§4, Fig. 5c/7) is not that ScholarCloud's
path never fails — the transpacific leg is as lossy and censorable as
anyone's — but that the *service* absorbs failures: the domestic proxy
re-dials with backoff, fails over to a replica remote proxy, and stops
hammering a dead endpoint until it recovers.  These three classes are
that machinery, kept deliberately generic so connectors and proxies can
share them.

Everything here is deterministic: backoff jitter draws from a named
:class:`~repro.sim.rng.RngRegistry` stream, and breaker transitions are
timestamped with simulated time, so one seed yields one byte-identical
recovery trace.
"""

from __future__ import annotations

import random
import typing as t
from dataclasses import dataclass, field

from ..errors import TransportError
from ..net import IPv4Address
from ..sim import Simulator

if t.TYPE_CHECKING:  # pragma: no cover
    from ..overload import Deadline
    from ..transport import TransportLayer


@dataclass(frozen=True)
class Endpoint:
    """One dialable (address, port) pair in a failover pool.

    ``name`` is a display label only — identity (equality, hashing) is
    the (address, port) pair, so a labelled endpoint handed out by a
    router compares equal to the pool's own unlabelled one.
    """

    address: IPv4Address
    port: int
    name: str = field(default="", compare=False)

    def __str__(self) -> str:
        return self.name or f"{self.address}:{self.port}"


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delays()`` yields the pre-attempt delay for each attempt: 0.0 for
    the first try, then ``base * multiplier**k`` capped at ``cap``, each
    multiplied by a jitter factor in ``[1-jitter, 1+jitter]`` drawn from
    the injected rng stream.  Jitter draws are lazy — a dial that
    succeeds on its first attempt consumes no randomness — which keeps
    the fast path's rng trace identical to a world with no retries.

    A total budget bounds the *sum* of attempts: with ``budget`` set
    (and a ``clock`` supplied to :meth:`delays`), the iterator stops
    once the next nominal backoff would start an attempt past
    ``start + budget``; an explicit ``deadline`` (absolute time) does
    the same against the caller's deadline.  Retries stopping early
    never amplify an overload past what the caller will wait for.
    """

    def __init__(
        self,
        attempts: int = 4,
        base: float = 0.5,
        multiplier: float = 2.0,
        cap: float = 8.0,
        jitter: float = 0.1,
        rng: t.Optional[random.Random] = None,
        budget: t.Optional[float] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0,1), got {jitter}")
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.attempts = attempts
        self.base = base
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self.rng = rng
        self.budget = budget

    def delays(self, clock: t.Optional[t.Callable[[], float]] = None,
               deadline: t.Optional[float] = None) -> t.Iterator[float]:
        """Yield the delay to sleep *before* each attempt.

        ``clock`` (a zero-arg now() callable) enables the time bounds:
        the total ``budget`` counted from the first yield, and/or an
        absolute ``deadline``.  The bound is tested against the
        *un-jittered* backoff before any jitter is drawn, so stopping
        early consumes no randomness — the rng trace stays identical
        whether or not a bound was the reason the iterator ended.
        """
        limit: t.Optional[float] = None
        if clock is not None:
            if self.budget is not None:
                limit = clock() + self.budget
            if deadline is not None:
                limit = deadline if limit is None else min(limit, deadline)
        yield 0.0
        for exponent in range(self.attempts - 1):
            delay = min(self.cap, self.base * self.multiplier ** exponent)
            if limit is not None and clock() + delay >= limit:
                return
            if self.rng is not None and self.jitter > 0.0:
                delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
            yield delay

    def scaled(self, factor: float) -> "RetryPolicy":
        """A copy with attempts and budget scaled by observed health.

        ``factor`` is in (0, 1]: 1.0 returns an equivalent policy, and
        lower health shrinks both the attempt count and the time budget
        proportionally — the adaptive-budget half of hedged dialing,
        where retries against a degraded region must never amplify its
        outage into a fleet-wide storm.  The rng stream is *shared*
        with the parent so jitter draws stay on one per-seed trace.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        budget = (None if self.budget is None
                  else max(self.base, self.budget * factor))
        return RetryPolicy(
            attempts=max(1, int(round(self.attempts * factor))),
            base=self.base, multiplier=self.multiplier, cap=self.cap,
            jitter=self.jitter, rng=self.rng, budget=budget)


class CircuitBreaker:
    """Per-endpoint breaker: CLOSED -> OPEN -> HALF_OPEN -> CLOSED.

    Opens after ``failure_threshold`` consecutive failures; after
    ``reset_timeout`` simulated seconds the next :meth:`allow` call
    flips it to HALF_OPEN, admitting exactly *one* in-flight trial —
    success closes the breaker, failure re-opens it.  While that trial
    is outstanding every other :meth:`allow` call is refused, so a
    recovering endpoint sees a single probe instead of the thundering
    herd that re-overloads it the moment the window elapses.  Every
    transition is recorded as ``(sim.now, from_state, to_state)`` so
    tests can assert the exact recovery trace.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, sim: Simulator, failure_threshold: int = 3,
                 reset_timeout: float = 30.0, name: str = "breaker") -> None:
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: t.Optional[float] = None
        #: True while the single HALF_OPEN trial is outstanding.
        self.trial_in_flight = False
        self.transitions: t.List[t.Tuple[float, str, str]] = []

    def _transition(self, to_state: str) -> None:
        self.transitions.append((self.sim.now, self.state, to_state))
        self.state = to_state

    def allow(self) -> bool:
        """May a request be attempted right now?

        In HALF_OPEN exactly one caller is admitted as the trial; the
        rest are refused until :meth:`record_success` or
        :meth:`record_failure` lands the trial's verdict.
        """
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if self.sim.now - self.opened_at >= self.reset_timeout:
                self._transition(self.HALF_OPEN)
                self.trial_in_flight = True
                return True
            return False
        if self.state == self.HALF_OPEN:
            if self.trial_in_flight:
                return False
            self.trial_in_flight = True
            return True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.trial_in_flight = False
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)
            self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.trial_in_flight = False
        if self.state == self.HALF_OPEN or (
                self.state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._transition(self.OPEN)
            self.opened_at = self.sim.now


class FailoverPool:
    """Priority-ordered endpoints, each guarded by a circuit breaker.

    :meth:`pick` returns the first endpoint whose breaker admits a
    request — the primary while it is healthy, a replica while the
    primary's breaker is open.  An optional health-check process dials
    each admissible endpoint on a timer so an open breaker is re-probed
    (and closed) without waiting for live traffic to gamble on it.
    """

    def __init__(self, sim: Simulator, endpoints: t.Sequence[Endpoint],
                 failure_threshold: int = 3,
                 reset_timeout: float = 30.0,
                 probe_timeout: float = 3.0) -> None:
        if not endpoints:
            raise ValueError("failover pool needs at least one endpoint")
        if probe_timeout <= 0:
            raise ValueError(f"probe timeout must be positive, got {probe_timeout}")
        self.sim = sim
        self.endpoints = list(endpoints)
        #: Default dial timeout for health probes (:meth:`probe` and
        #: :meth:`start_health_checks`); a caller's Deadline clamps it.
        self.probe_timeout = probe_timeout
        self.breakers: t.Dict[Endpoint, CircuitBreaker] = {
            endpoint: CircuitBreaker(
                sim, failure_threshold=failure_threshold,
                reset_timeout=reset_timeout, name=str(endpoint))
            for endpoint in self.endpoints
        }
        #: Endpoint-*change* events: bumped only when :meth:`pick`
        #: returns a different endpoint than the previous pick (failover
        #: to a replica, or failback to a recovered primary) — not on
        #: every pick made while the primary happens to be down, so
        #: "6 failovers" means six actual switches.
        self.failovers = 0
        self.probes_sent = 0
        self._current: Endpoint = self.endpoints[0]

    @property
    def primary(self) -> Endpoint:
        return self.endpoints[0]

    def pick(self) -> t.Optional[Endpoint]:
        """First endpoint whose breaker admits traffic; None if all open."""
        for endpoint in self.endpoints:
            if self.breakers[endpoint].allow():
                if endpoint is not self._current:
                    self.failovers += 1
                    self._current = endpoint
                return endpoint
        return None

    def record_success(self, endpoint: Endpoint) -> None:
        self.breakers[endpoint].record_success()

    def record_failure(self, endpoint: Endpoint) -> None:
        self.breakers[endpoint].record_failure()

    # -- health checks ---------------------------------------------------------

    def probe(self, transport: "TransportLayer", endpoint: Endpoint,
              deadline: t.Optional["Deadline"] = None, features=None):
        """Generator: one health-probe dial of ``endpoint``, True if up.

        The probe's verdict lands on the endpoint's breaker either way.
        With a ``deadline`` (the session the probe gates), the dial
        timeout is clamped to the deadline's remaining budget — a probe
        must never outlive the work it gates — and an already-expired
        deadline fails the probe without dialing at all.
        """
        breaker = self.breakers.get(endpoint)
        if breaker is None:
            raise ValueError(f"{endpoint} is not a pool member")
        dial_timeout = self.probe_timeout
        if deadline is not None:
            if deadline.expired(self.sim.now):
                return False
            dial_timeout = deadline.clamp(self.probe_timeout, self.sim.now)
        self.probes_sent += 1
        try:
            conn = yield transport.connect_tcp(
                endpoint.address, endpoint.port,
                features=features, timeout=dial_timeout)
        except TransportError:
            breaker.record_failure()
            return False
        breaker.record_success()
        conn.close()
        return True

    def start_health_checks(self, transport: "TransportLayer",
                            interval: float = 15.0, timeout: float = 3.0,
                            features=None, rng=None,
                            deadline: t.Optional["Deadline"] = None):
        """Start one staggered probe process per endpoint.

        Each endpoint gets its own phase offset in ``[0, interval)``
        drawn from the ``failover.health`` rng stream (in endpoint
        order, so the stagger is seed-stable) instead of every endpoint
        being probed in the same tick of one fixed-interval timer —
        which would synchronize probe bursts across the pool exactly
        when a shared outage makes every breaker half-open at once.
        With a ``deadline``, each probe dial is clamped to the
        deadline's remaining budget and the loops end once it expires.
        Returns the list of probe processes, in endpoint order.
        """
        if rng is None:
            rng = self.sim.rng.stream("failover.health")
        processes = []
        for endpoint in self.endpoints:
            offset = rng.uniform(0.0, interval)
            processes.append(self.sim.process(
                self._health_loop(endpoint, transport, offset, interval,
                                  timeout, features, deadline),
                name=f"failover-health:{endpoint}"))
        return processes

    def _health_loop(self, endpoint: Endpoint, transport: "TransportLayer",
                     offset: float, interval: float, timeout: float,
                     features, deadline: t.Optional["Deadline"] = None):
        breaker = self.breakers[endpoint]
        yield self.sim.timeout(offset)
        while True:
            yield self.sim.timeout(interval)
            if deadline is not None and deadline.expired(self.sim.now):
                return  # the work these probes gate is already over
            if not breaker.allow():
                continue  # open and inside its reset window
            dial_timeout = timeout
            if deadline is not None:
                dial_timeout = deadline.clamp(timeout, self.sim.now)
            self.probes_sent += 1
            try:
                conn = yield transport.connect_tcp(
                    endpoint.address, endpoint.port,
                    features=features, timeout=dial_timeout)
            except TransportError:
                breaker.record_failure()
                continue
            breaker.record_success()
            conn.close()
