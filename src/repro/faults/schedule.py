"""Deterministic fault injection against a running testbed.

A :class:`FaultSchedule` is a declarative list of timed fault events —
link flaps and degradations, proxy crashes with restarts, mid-session
GFW policy escalations, DNS-poison bursts.  ``install(testbed)``
returns a :class:`FaultInjector` whose processes apply each event at
its simulated time and revert the ones with a duration, appending every
action to a ``timeline`` of ``(time, kind, target, phase)`` tuples.

The schedule itself contains no randomness; scripts that want jittered
timing (see :mod:`repro.faults.scripts`) draw offsets from a named
:class:`~repro.sim.rng.RngRegistry` stream *while building* the
schedule, so one seed yields one byte-identical fault timeline.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..errors import FaultError, TransportError

if t.TYPE_CHECKING:  # pragma: no cover
    from ..gfw import GreatFirewall
    from ..measure.testbed import Testbed

#: Phases recorded in the injector timeline.
APPLY = "apply"
REVERT = "revert"


@dataclass
class FaultEvent:
    """One scripted fault: what, when, for how long, against whom."""

    at: float
    kind: str
    target: str
    duration: float = 0.0
    #: Kind-specific parameters (link loss, policy label, ...).
    params: t.Dict[str, t.Any] = field(default_factory=dict)

    def describe(self) -> str:
        tail = f" for {self.duration:.3f}s" if self.duration else ""
        return f"{self.kind}({self.target}) at {self.at:.3f}s{tail}"


class FaultSchedule:
    """A scripted, ordered set of fault events."""

    def __init__(self) -> None:
        self.events: t.List[FaultEvent] = []

    def add(self, event: FaultEvent) -> FaultEvent:
        if event.at < 0:
            raise FaultError(f"fault scheduled in the past: {event.describe()}")
        self.events.append(event)
        return event

    # -- builders ---------------------------------------------------------------

    def link_down(self, link: str, at: float, duration: float) -> FaultEvent:
        """Hard outage: the named link drops every packet while down."""
        return self.add(FaultEvent(at, "link-down", link, duration))

    def link_degrade(self, link: str, at: float, duration: float,
                     loss: t.Optional[float] = None,
                     latency_scale: t.Optional[float] = None) -> FaultEvent:
        """Soft failure: raised loss and/or scaled latency, then revert."""
        if loss is None and latency_scale is None:
            raise FaultError("link_degrade needs loss and/or latency_scale")
        return self.add(FaultEvent(
            at, "link-degrade", link, duration,
            {"loss": loss, "latency_scale": latency_scale}))

    def proxy_crash(self, host: str, at: float, downtime: float) -> FaultEvent:
        """Crash every service on ``host``; restart after ``downtime``.

        Models a process/VM crash: listeners vanish (new dials are
        refused), established connections are aborted with RSTs, and
        the restart re-registers the same services.
        """
        return self.add(FaultEvent(at, "proxy-crash", host, downtime))

    def gfw_policy(self, at: float, label: str,
                   mutation: t.Callable[["GreatFirewall"], t.Any],
                   revert: t.Optional[t.Callable[["GreatFirewall"], t.Any]] = None,
                   duration: float = 0.0) -> FaultEvent:
        """Mid-session policy escalation through the firewall's audited path."""
        if revert is None and duration:
            raise FaultError(f"gfw_policy {label!r} has a duration but no revert")
        return self.add(FaultEvent(
            at, "gfw-policy", label, duration,
            {"mutation": mutation, "revert": revert}))

    def dns_poison_burst(self, at: float, duration: float,
                         domain: str) -> FaultEvent:
        """Temporarily add ``domain`` to the poisoned-domain list."""
        return self.add(FaultEvent(at, "dns-poison", domain, duration))

    def load_spike(self, target: str, at: float, duration: float,
                   clients: int = 20, hostname: str = "scholar.google.com",
                   port: int = 443, proxy_port: int = 8080,
                   hold: t.Optional[float] = None) -> FaultEvent:
        """A flash crowd against the proxy listening on ``target``.

        ``clients`` extra sessions arrive evenly spread over
        ``duration``, each opening a proxied stream for ``hostname``
        and holding it for ``hold`` seconds (default: until the spike
        window ends).  Composes with the other fault kinds so overload
        and faults can hit simultaneously.
        """
        if clients < 1:
            raise FaultError(f"load_spike needs clients >= 1, got {clients}")
        if duration <= 0:
            raise FaultError("load_spike needs a positive duration")
        return self.add(FaultEvent(
            at, "load-spike", target, duration,
            {"clients": clients, "hostname": hostname, "port": port,
             "proxy_port": proxy_port, "hold": hold}))

    # -- installation ------------------------------------------------------------

    def install(self, testbed: "Testbed") -> "FaultInjector":
        """Bind this schedule to a testbed and start its processes."""
        injector = FaultInjector(testbed, self)
        injector.start()
        return injector


class FaultInjector:
    """Executes a :class:`FaultSchedule` against one testbed."""

    def __init__(self, testbed: "Testbed", schedule: FaultSchedule) -> None:
        self.testbed = testbed
        self.schedule = schedule
        #: (time, kind, target, phase) tuples, in application order.
        self.timeline: t.List[t.Tuple[float, str, str, str]] = []
        self._started = False

    def start(self) -> None:
        """Spawn one process per event (idempotent)."""
        if self._started:
            return
        self._started = True
        sim = self.testbed.sim
        # Stable order: schedule ties resolve by insertion order.
        for index, event in enumerate(
                sorted(self.schedule.events, key=lambda e: e.at)):
            sim.process(self._run_event(event),
                        name=f"fault-{index}:{event.kind}")

    def _record(self, event: FaultEvent, phase: str) -> None:
        self.timeline.append(
            (round(self.testbed.sim.now, 9), event.kind, event.target, phase))
        trace = self.testbed.trace
        if trace is not None:
            trace.emit("fault." + phase, kind=event.kind,
                       target=event.target, duration=event.duration)

    def _run_event(self, event: FaultEvent):
        sim = self.testbed.sim
        if event.at > sim.now:
            yield sim.timeout(event.at - sim.now)
        revert = self._apply(event)
        self._record(event, APPLY)
        if revert is None:
            return
        yield sim.timeout(event.duration)
        revert()
        self._record(event, REVERT)

    # -- per-kind handlers -----------------------------------------------------

    def _apply(self, event: FaultEvent) -> t.Optional[t.Callable[[], None]]:
        handler = getattr(self, "_apply_" + event.kind.replace("-", "_"), None)
        if handler is None:
            raise FaultError(f"unknown fault kind {event.kind!r}")
        return handler(event)

    def _apply_link_down(self, event: FaultEvent):
        link = self.testbed.net.link_by_name(event.target)
        link.set_up(False)

        def revert() -> None:
            link.set_up(True)
        return revert

    def _apply_link_degrade(self, event: FaultEvent):
        link = self.testbed.net.link_by_name(event.target)
        saved_loss, saved_latency = link.loss, link.latency
        loss = event.params.get("loss")
        scale = event.params.get("latency_scale")
        link.set_conditions(
            loss=loss if loss is not None else saved_loss,
            latency=saved_latency * scale if scale is not None else saved_latency)

        def revert() -> None:
            link.set_conditions(loss=saved_loss, latency=saved_latency)
        return revert

    def _apply_proxy_crash(self, event: FaultEvent):
        host = self.testbed.net.node(event.target)
        transport = host.transport
        if transport is None:
            raise FaultError(f"{event.target} has no transport to crash")
        snapshot = transport.crash()

        def revert() -> None:
            transport.restore(snapshot)
        if not event.duration:
            return None  # a crash with no downtime never restarts
        return revert

    def _apply_gfw_policy(self, event: FaultEvent):
        gfw = self.testbed.gfw
        if gfw is None:
            raise FaultError("gfw-policy fault on a testbed with no firewall")
        gfw.apply_policy(event.params["mutation"], label=event.target)
        revert_mutation = event.params.get("revert")
        if revert_mutation is None:
            return None

        def revert() -> None:
            gfw.apply_policy(revert_mutation,
                             label=event.target + ":revert")
        return revert

    def _apply_load_spike(self, event: FaultEvent):
        testbed = self.testbed
        proxy_host = testbed.net.node(event.target)
        sources = list(getattr(testbed, "extra_clients", ())) or [testbed.client]
        clients = event.params["clients"]
        spacing = event.duration / clients
        for index in range(clients):
            source = sources[index % len(sources)]
            offset = index * spacing
            hold = event.params["hold"]
            if hold is None:
                hold = max(0.0, event.duration - offset)
            self.testbed.sim.process(
                self._spike_session(source, proxy_host.address,
                                    event.params["proxy_port"],
                                    event.params["hostname"],
                                    event.params["port"], offset, hold),
                name=f"spike-{index}")

        def spike_window_closed() -> None:
            return None  # sessions end on their own; this marks the timeline
        return spike_window_closed

    def _spike_session(self, source, address, proxy_port: int,
                       hostname: str, port: int, offset: float, hold: float):
        """One flash-crowd session: open a proxied stream, hold, leave."""
        sim = self.testbed.sim
        if offset > 0:
            yield sim.timeout(offset)
        transport = self.testbed.transport_of(source)
        try:
            conn = yield transport.connect_tcp(address, proxy_port,
                                               timeout=5.0)
        except TransportError:
            return
        try:
            conn.send_message(48, meta=("sc-connect", hostname, port))
            yield conn.recv_message()
        except TransportError:
            conn.close()
            return
        if hold > 0:
            yield sim.timeout(hold)
        conn.close()

    def _apply_dns_poison(self, event: FaultEvent):
        policy = self.testbed.policy
        policy.block_domain(event.target)

        def revert() -> None:
            policy.unblock_domain(event.target)
        return revert
