"""Overload protection: bounded queues, admission control, deadlines.

The paper's Figure 7 shows ScholarCloud degrading gently where
Shadowsocks collapses; this package supplies the mechanism behind a
gentle knee — shed a little excess load early and deterministically so
everything admitted still completes fast.  All of it is opt-in: no
proxy constructs any of these objects unless handed an
:class:`OverloadConfig`, so calibrated paper traces are untouched.
"""

from .admission import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    AdmissionController,
    AdmissionPolicy,
    AimdPolicy,
    OverloadConfig,
    QueueDelayPolicy,
    StaticCapPolicy,
)
from .deadline import Deadline, deadline_from_wire
from .queues import BoundedQueue, ConcurrencyLimiter

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AimdPolicy",
    "BoundedQueue",
    "ConcurrencyLimiter",
    "Deadline",
    "OverloadConfig",
    "PRIORITY_BULK",
    "PRIORITY_INTERACTIVE",
    "QueueDelayPolicy",
    "StaticCapPolicy",
    "deadline_from_wire",
]
