"""Bounded queueing primitives for overload protection.

Two primitives, built on the same event machinery as
:mod:`repro.sim.resources` but with *bounds* and *rejection* as
first-class outcomes:

* :class:`BoundedQueue` — a FIFO of items with a hard capacity.  A full
  queue rejects new items immediately (``offer`` returns False, ``put``
  raises :class:`~repro.errors.OverloadError`) instead of growing
  without limit.  Sojourn times are recorded so callers can reason
  about queueing delay.
* :class:`ConcurrencyLimiter` — a counted semaphore with a *bounded*
  waiting room, priority-aware shedding, and per-waiter delay caps.
  Where :class:`repro.sim.resources.Resource` queues forever, the
  limiter fails a waiter's event with :class:`OverloadError` the moment
  it decides the work will not be served in time.

Both are deterministic: grant order is (priority band, arrival
sequence) and every decision is driven by simulated time only.
"""

from __future__ import annotations

import typing as t
from collections import deque

from ..errors import OverloadError, SimulationError
from ..sim import Event, Simulator


class BoundedQueue:
    """FIFO of items with a hard capacity and fast rejection.

    Unlike :class:`repro.sim.resources.Store`, a full queue never grows:
    ``offer`` returns False and ``put`` raises
    :class:`~repro.errors.OverloadError`.  Each dequeued item's sojourn
    time (enqueue to dequeue) is appended to :attr:`delays`.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 name: str = "bounded-queue") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: t.Deque[t.Tuple[float, t.Any]] = deque()
        self._getters: t.Deque[Event] = deque()
        #: Counters for degradation metrics.
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        #: Sojourn time of every dequeued item, in arrival order.
        self.delays: t.List[float] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, item: t.Any) -> bool:
        """Enqueue ``item`` if there is room; return whether it was taken."""
        self.offered += 1
        if self._getters:
            self.accepted += 1
            self.delays.append(0.0)
            self._getters.popleft().succeed(item)
            return True
        if len(self._items) >= self.capacity:
            self.rejected += 1
            return False
        self.accepted += 1
        self._items.append((self.sim.now, item))
        return True

    def put(self, item: t.Any) -> None:
        """Enqueue ``item`` or raise :class:`OverloadError` if full."""
        if not self.offer(item):
            raise OverloadError(
                f"{self.name}: queue full ({self.capacity} items)")

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.sim.event()
        if self._items:
            enqueued_at, item = self._items.popleft()
            self.delays.append(self.sim.now - enqueued_at)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event


class _Waiter:
    __slots__ = ("priority", "seq", "enqueued_at", "deadline", "event", "timer")

    def __init__(self, priority: int, seq: int, enqueued_at: float,
                 deadline: t.Optional[float], event: Event) -> None:
        self.priority = priority
        self.seq = seq
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.event = event
        self.timer: t.Optional[Event] = None


class ConcurrencyLimiter:
    """Counted concurrency limit with a bounded, priority-aware wait queue.

    * ``try_acquire`` admits or rejects immediately (never queues).
    * ``acquire`` admits immediately when a slot is free; otherwise the
      caller joins a waiting room of at most ``max_waiting`` entries.
      When the room is full, the *worst* waiter — lowest priority
      (highest number), then youngest — is evicted to make space for a
      strictly higher-priority newcomer; otherwise the newcomer itself
      is rejected.  A waiter still queued after ``max_wait`` seconds is
      shed.  Rejection in every case means the acquire event *fails*
      with :class:`~repro.errors.OverloadError`.
    * ``release`` grants the freed slot to the best live waiter
      (lowest priority number, then oldest), skipping any whose
      deadline has already expired.

    The acquire event's value is the queueing delay in seconds, which
    is also appended to :attr:`queue_delays` on every grant.
    """

    def __init__(self, sim: Simulator, capacity: int, max_waiting: int = 0,
                 max_wait: t.Optional[float] = None,
                 name: str = "limiter") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        if max_waiting < 0:
            raise SimulationError(f"max_waiting must be >= 0, got {max_waiting}")
        self.sim = sim
        self.capacity = capacity
        self.max_waiting = max_waiting
        self.max_wait = max_wait
        self.name = name
        self._in_use = 0
        self._seq = 0
        self._waiters: t.List[_Waiter] = []
        #: Counters for degradation metrics.
        self.admitted = 0
        self.rejected = 0
        self.evicted = 0
        self.timed_out = 0
        self.deadline_drops = 0
        #: Queueing delay of every admission, in grant order.
        self.queue_delays: t.List[float] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Admit immediately if a slot is free; never queues."""
        if self._in_use < self.capacity:
            self._grant_now()
            return True
        self.rejected += 1
        return False

    def acquire(self, priority: int = 0,
                deadline: t.Optional[float] = None) -> Event:
        """Event that fires with the queueing delay once a slot is held.

        Fails with :class:`OverloadError` when the caller is shed —
        rejected outright, evicted by a higher-priority newcomer, or
        still waiting after ``max_wait`` seconds.
        """
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._grant_now()
            event.succeed(0.0)
            return event
        if self.max_waiting <= 0:
            self.rejected += 1
            event.fail(OverloadError(f"{self.name}: at capacity"))
            return event
        if len(self._waiters) >= self.max_waiting:
            victim = self._worst_waiter()
            if victim is None or victim.priority <= priority:
                self.rejected += 1
                event.fail(OverloadError(f"{self.name}: waiting room full"))
                return event
            self._shed(victim, "evicted by higher-priority arrival")
            self.evicted += 1
        self._seq += 1
        waiter = _Waiter(priority, self._seq, self.sim.now, deadline, event)
        self._waiters.append(waiter)
        if self.max_wait is not None:
            waiter.timer = self.sim.schedule(
                self.max_wait, lambda w=waiter: self._on_wait_expired(w))
        return event

    def release(self) -> None:
        """Release one slot, granting it to the best live waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        while self._waiters:
            best = min(self._waiters, key=lambda w: (w.priority, w.seq))
            self._waiters.remove(best)
            if best.deadline is not None and self.sim.now >= best.deadline:
                self.deadline_drops += 1
                self._fail_waiter(best, OverloadError(
                    f"{self.name}: deadline expired while queued"))
                continue
            delay = self.sim.now - best.enqueued_at
            self.admitted += 1
            self.queue_delays.append(delay)
            self._fire_waiter(best, delay)
            return
        self._in_use -= 1

    # -- internals ---------------------------------------------------------

    def _grant_now(self) -> None:
        self._in_use += 1
        self.admitted += 1
        self.queue_delays.append(0.0)

    def _worst_waiter(self) -> t.Optional[_Waiter]:
        if not self._waiters:
            return None
        return max(self._waiters, key=lambda w: (w.priority, w.seq))

    def _shed(self, waiter: _Waiter, reason: str) -> None:
        self._waiters.remove(waiter)
        self._fail_waiter(waiter, OverloadError(f"{self.name}: {reason}"))

    def _on_wait_expired(self, waiter: _Waiter) -> None:
        if waiter not in self._waiters:
            return  # already granted or shed
        self.timed_out += 1
        self._shed(waiter, f"queued longer than {self.max_wait:g}s")

    def _fail_waiter(self, waiter: _Waiter, exc: OverloadError) -> None:
        waiter.timer = None
        waiter.event.fail(exc)

    def _fire_waiter(self, waiter: _Waiter, delay: float) -> None:
        waiter.timer = None
        waiter.event.succeed(delay)
