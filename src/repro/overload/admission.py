"""Admission control: who gets in when the proxy is saturated.

The domestic proxy admits *sessions* (one browser connection each).
Admission is sticky per source address: a client that already holds a
session is never shed mid-page-load — rejecting one subresource stream
of an otherwise-admitted page wastes everything the page already
fetched, which is exactly the congestion collapse admission control
exists to prevent.  Only *new* sources consume capacity.

Three policies, selected by :attr:`OverloadConfig.policy`:

* ``static`` — a fixed session cap with a small waiting room; waiters
  shed on occupancy.
* ``codel`` — the same cap, but shedding is driven by *queueing delay*:
  a generous waiting room where any waiter that has queued longer than
  ``queue_delay_threshold`` is dropped, CoDel-style ("if the standing
  queue is older than the target, the server is overloaded").
* ``aimd`` — an adaptive cap: multiplicative decrease on every shed,
  additive increase on every clean session completion, bounded below
  by ``aimd_min`` and above by ``max_sessions``.

Priority comes from the PAC whitelist (Scholar traffic preferred over
bulk); lower numbers are better.  ``bulk_share`` reserves headroom for
interactive traffic by refusing *new* bulk sessions once occupancy
passes that fraction of the cap.

Every decision is appended to :attr:`AdmissionController.decisions`
so tests can assert seed-robustness of the full admit/shed sequence.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..errors import ConfigurationError, OverloadError
from ..sim import Simulator
from .deadline import Deadline
from .queues import ConcurrencyLimiter

#: Priority bands (lower is better).  Scholar document traffic is
#: interactive; whitelisted CDN/bulk fetches are shed first.
PRIORITY_INTERACTIVE = 0
PRIORITY_BULK = 1

_POLICIES = ("static", "codel", "aimd")


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for the overload-protection layer.  All default off-ish:
    the layer only exists when a config is passed at all, so calibrated
    paper traces never see it.
    """

    #: Concurrent admitted sessions at the domestic proxy.
    max_sessions: int = 128
    #: Admission waiting-room depth (0 = reject immediately at the cap).
    max_waiting: int = 0
    #: Longest a waiter may queue before being shed; also the bound the
    #: benchmark asserts every *admitted* request stayed under.
    queue_delay_threshold: t.Optional[float] = None
    #: Admission policy: ``static``, ``codel`` or ``aimd``.
    policy: str = "static"
    #: Fraction of the cap open to new bulk-priority sessions.
    bulk_share: float = 1.0
    #: AIMD floor / additive step / multiplicative factor.
    aimd_min: int = 4
    aimd_increase: float = 1.0
    aimd_decrease: float = 0.5
    #: Remote-proxy in-flight stream cap (None = unlimited).
    remote_max_streams: t.Optional[int] = None
    #: Remote-proxy accept-backlog bound (None = dispatch inline).
    remote_backlog: t.Optional[int] = None
    #: Edge-cache bypass: when an edge cache is deployed, defer
    #: admission until a session actually needs the transpacific leg —
    #: cache hits skip the waiting room entirely.  Off by default like
    #: every other knob; without a cache it has no effect.
    cache_bypass: bool = False

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.max_waiting < 0:
            raise ConfigurationError(
                f"max_waiting must be >= 0, got {self.max_waiting}")
        if self.max_waiting > 0 and self.queue_delay_threshold is None:
            raise ConfigurationError(
                "a waiting room (max_waiting > 0) requires a "
                "queue_delay_threshold, or waiters could queue forever")
        if (self.queue_delay_threshold is not None
                and self.queue_delay_threshold <= 0):
            raise ConfigurationError(
                f"queue_delay_threshold must be positive, "
                f"got {self.queue_delay_threshold}")
        if self.policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {self.policy!r}; "
                f"expected one of {_POLICIES}")
        if not 0.0 < self.bulk_share <= 1.0:
            raise ConfigurationError(
                f"bulk_share must be in (0, 1], got {self.bulk_share}")
        if self.policy == "aimd":
            if self.aimd_min < 1 or self.aimd_min > self.max_sessions:
                raise ConfigurationError(
                    f"aimd_min must be in [1, max_sessions], "
                    f"got {self.aimd_min}")
            if self.aimd_increase <= 0 or not 0.0 < self.aimd_decrease < 1.0:
                raise ConfigurationError("aimd_increase must be positive and "
                                         "aimd_decrease in (0, 1)")

    def make_policy(self) -> "AdmissionPolicy":
        if self.policy == "aimd":
            return AimdPolicy(self.max_sessions, floor=self.aimd_min,
                              increase=self.aimd_increase,
                              decrease=self.aimd_decrease)
        if self.policy == "codel":
            return QueueDelayPolicy(self.max_sessions)
        return StaticCapPolicy(self.max_sessions)


class AdmissionPolicy:
    """Decides the current session limit; observes sheds and successes."""

    def limit(self) -> int:
        raise NotImplementedError

    def on_shed(self) -> None:
        """A session was shed (rejected, evicted, or timed out)."""

    def on_success(self) -> None:
        """A session completed and released its slot cleanly."""


class StaticCapPolicy(AdmissionPolicy):
    """Fixed session cap; occupancy is the only shedding signal."""

    def __init__(self, cap: int) -> None:
        self.cap = cap

    def limit(self) -> int:
        return self.cap


class QueueDelayPolicy(StaticCapPolicy):
    """CoDel-style: the cap is fixed, but shedding is driven by sojourn
    time in the waiting room rather than occupancy.  The controller
    sizes the waiting room generously for this policy so queue delay —
    not queue length — is what sheds."""


class AimdPolicy(AdmissionPolicy):
    """Adaptive cap: multiplicative decrease on shed, additive increase
    on clean completion (congestion-avoidance style)."""

    def __init__(self, ceiling: int, floor: int = 4,
                 increase: float = 1.0, decrease: float = 0.5) -> None:
        self.ceiling = ceiling
        self.floor = floor
        self.increase = increase
        self.decrease = decrease
        self._limit = float(ceiling)

    def limit(self) -> int:
        return max(self.floor, int(self._limit))

    def on_shed(self) -> None:
        self._limit = max(float(self.floor), self._limit * self.decrease)

    def on_success(self) -> None:
        grown = self._limit + self.increase / max(1.0, self._limit)
        self._limit = min(float(self.ceiling), grown)


#: Waiting-room depth used for the codel policy, where queue *delay*
#: (not length) is the shedding signal.
_CODEL_WAITING_ROOM = 1024


class AdmissionController:
    """Sticky per-source session admission in front of a proxy."""

    def __init__(self, sim: Simulator, config: OverloadConfig,
                 name: str = "admission") -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.policy = config.make_policy()
        if config.policy == "codel":
            max_waiting = _CODEL_WAITING_ROOM
        else:
            max_waiting = config.max_waiting
        self.limiter = ConcurrencyLimiter(
            sim, config.max_sessions, max_waiting=max_waiting,
            max_wait=config.queue_delay_threshold, name=f"{name}-sessions")
        #: Active session count per source address.
        self._sessions: t.Dict[str, int] = {}
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.deadline_drops = 0
        #: ``(time, source, outcome, priority)`` per decision, in order.
        #: Outcomes: ``admit``, ``admit-sticky``, ``shed``, ``expired``.
        self.decisions: t.List[t.Tuple[float, str, str, int]] = []

    @property
    def in_use(self) -> int:
        return self.limiter.in_use

    def admit(self, source: str, priority: int = PRIORITY_INTERACTIVE,
              deadline: t.Optional[Deadline] = None):
        """Generator: admit one session from ``source``.

        Returns the queueing delay in seconds.  Raises
        :class:`~repro.errors.OverloadError` when the session is shed.
        """
        self.offered += 1
        if self._sessions.get(source, 0) > 0:
            # Sticky: the source already holds a session; shedding one
            # stream of an in-flight page load only wastes the rest.
            self._sessions[source] += 1
            self.admitted += 1
            self.decisions.append((self.sim.now, source, "admit-sticky",
                                   priority))
            return 0.0
        self.limiter.capacity = self.policy.limit()
        if (priority > PRIORITY_INTERACTIVE
                and self.limiter.in_use >=
                self.config.bulk_share * self.limiter.capacity):
            self._record_shed(source, priority)
            raise OverloadError(
                f"{self.name}: bulk traffic shed at "
                f"{self.config.bulk_share:.0%} occupancy")
        try:
            wire_deadline = None if deadline is None else deadline.at
            delay = yield self.limiter.acquire(priority, wire_deadline)
        except OverloadError:
            self._record_shed(source, priority)
            raise
        self._sessions[source] = self._sessions.get(source, 0) + 1
        self.admitted += 1
        self.decisions.append((self.sim.now, source, "admit", priority))
        return delay

    def release(self, source: str, succeeded: bool = True) -> None:
        """Release one session held by ``source``."""
        count = self._sessions.get(source, 0)
        if count <= 0:
            raise ConfigurationError(
                f"{self.name}: release for {source!r} without an admit")
        if count == 1:
            del self._sessions[source]
            self.limiter.release()
            if succeeded:
                self.policy.on_success()
        else:
            self._sessions[source] = count - 1

    def record_expired(self, source: str, priority: int) -> None:
        """Count a request dropped because its deadline already passed."""
        self.deadline_drops += 1
        self.decisions.append((self.sim.now, source, "expired", priority))

    def _record_shed(self, source: str, priority: int) -> None:
        self.shed += 1
        self.policy.on_shed()
        self.decisions.append((self.sim.now, source, "shed", priority))

    @property
    def queue_delays(self) -> t.List[float]:
        """Queueing delay of every admitted session, in grant order."""
        return self.limiter.queue_delays
