"""Request deadlines, propagated hop by hop.

A :class:`Deadline` is an absolute simulated-time instant after which
the request's answer is worthless to the caller.  The browser stamps
it, the connector carries it on the wire (one extra float in the
``sc-connect`` / ``sc-open`` metadata), and each proxy drops expired
work instead of spending cycles on an answer nobody is waiting for.

Absolute time — not a remaining-duration — is the right wire form in a
simulation with a single global clock: every hop can test expiry
without clock-skew bookkeeping.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass


@dataclass(frozen=True)
class Deadline:
    """An absolute point in simulated time."""

    at: float

    def remaining(self, now: float) -> float:
        """Seconds left before expiry (negative once past)."""
        return self.at - now

    def expired(self, now: float) -> bool:
        return now >= self.at

    def clamp(self, timeout: t.Optional[float], now: float) -> float:
        """Shrink ``timeout`` so it never outlives the deadline.

        ``None`` (wait forever) becomes the remaining budget.  The
        result is floored at a hair above zero so expiry surfaces as an
        immediate timeout rather than a negative-delay error.
        """
        budget = max(1e-9, self.remaining(now))
        if timeout is None:
            return budget
        return min(timeout, budget)


def deadline_from_wire(value: t.Optional[float]) -> t.Optional[Deadline]:
    """Decode the optional deadline slot of a wire metadata tuple."""
    if value is None:
        return None
    return Deadline(float(value))
