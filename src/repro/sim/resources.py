"""Shared-resource models for the kernel.

Three resources cover everything the reproduction needs:

* :class:`Resource` — a counted semaphore with a FIFO wait queue
  (e.g. a proxy's connection-slot limit).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (e.g. a NIC receive queue feeding a protocol process).
* :class:`ProcessorSharingServer` — an egalitarian processor-sharing
  CPU, the queueing model behind the paper's Figure 7 scalability
  experiment: every in-flight request receives ``capacity / n`` service
  rate, so response time inflates smoothly with load and saturates when
  demand exceeds capacity.
"""

from __future__ import annotations

import typing as t
from collections import deque

from ..errors import SimulationError
from .events import Event
from .kernel import Simulator


class Resource:
    """Counted resource with FIFO queueing.

    Usage from a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: t.Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: t.Deque[t.Any] = deque()
        self._getters: t.Deque[Event] = deque()
        self._watchers: t.List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: t.Any) -> None:
        """Deposit ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
            watchers, self._watchers = self._watchers, []
            for watcher in watchers:
                if not watcher.triggered:
                    watcher.succeed(None)

    def watch(self) -> Event:
        """Event that fires once an item is *queued* (without taking it).

        Unlike :meth:`get`, abandoning a watch event loses nothing —
        useful for long-poll patterns that race a timeout against
        item availability.
        """
        event = self.sim.event()
        if self._items:
            event.succeed(None)
        else:
            self._watchers.append(event)
        return event

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> t.Tuple[bool, t.Any]:
        """Take the next item without blocking.

        Returns ``(True, item)`` if one was queued, ``(False, None)``
        otherwise.  The fluid fast path uses this to drain a batch of
        already-delivered messages in a single process resumption
        instead of one event round-trip per item.
        """
        if self._items:
            return True, self._items.popleft()
        return False, None


class _PsJob:
    __slots__ = ("remaining", "event", "last_update")

    def __init__(self, demand: float, event: Event, now: float) -> None:
        self.remaining = demand
        self.event = event
        self.last_update = now


class ProcessorSharingServer:
    """An M/G/1-PS style CPU: all jobs share ``capacity`` equally.

    ``capacity`` is in work-units per second; a job submitted with
    ``demand`` work-units completes after ``demand * n / capacity``
    seconds when ``n`` jobs are continuously present.  Completion times
    are recomputed on every arrival and departure, which is exact for
    egalitarian processor sharing.
    """

    def __init__(self, sim: Simulator, capacity: float = 1.0, name: str = "cpu") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._jobs: t.List[_PsJob] = []
        self._wakeup: t.Optional[Event] = None
        self._busy_time = 0.0
        self._last_busy_update = 0.0

    @property
    def load(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` during which the CPU was busy."""
        self._account_busy()
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / horizon)

    def submit(self, demand: float) -> Event:
        """Submit a job of ``demand`` work-units; event fires at completion."""
        if demand < 0:
            raise SimulationError(f"negative demand: {demand}")
        event = self.sim.event()
        if demand == 0:
            event.succeed(None)
            return event
        self._drain_progress()
        self._jobs.append(_PsJob(demand, event, self.sim.now))
        self._reschedule()
        return event

    # -- internals ---------------------------------------------------------

    def _account_busy(self) -> None:
        now = self.sim.now
        if self._jobs:
            self._busy_time += now - self._last_busy_update
        self._last_busy_update = now

    def _drain_progress(self) -> None:
        """Apply service accrued since the last event to every job."""
        self._account_busy()
        now = self.sim.now
        if not self._jobs:
            return
        rate = self.capacity / len(self._jobs)
        for job in self._jobs:
            job.remaining -= rate * (now - job.last_update)
            job.last_update = now

    def _reschedule(self) -> None:
        """Re-arm the wakeup timer for the next completion."""
        if self._wakeup is not None:
            # A stale timer may still fire; _on_wakeup tolerates that.
            self._wakeup = None
        if not self._jobs:
            return
        rate = self.capacity / len(self._jobs)
        shortest = min(job.remaining for job in self._jobs)
        delay = max(0.0, shortest / rate)
        timer = self.sim.timeout(delay)
        self._wakeup = timer
        timer.add_callback(self._on_wakeup)

    def _on_wakeup(self, timer: Event) -> None:
        if self._wakeup is not timer:
            return  # superseded by a later arrival
        self._drain_progress()
        finished = [job for job in self._jobs if job.remaining <= 1e-12]
        self._jobs = [job for job in self._jobs if job.remaining > 1e-12]
        self._reschedule()
        for job in finished:
            job.event.succeed(None)
