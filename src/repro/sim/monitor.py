"""Trace recording and time-series probes.

:class:`TraceLog` collects timestamped structured records during a
simulation run; the measurement harness and the Figure 4 session-trace
bench both read from it.  :class:`Counter` and :class:`Gauge` are tiny
metric helpers for components that only need aggregates.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from .kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    category: str
    fields: t.Mapping[str, t.Any]

    def __getitem__(self, key: str) -> t.Any:
        return self.fields[key]


class TraceLog:
    """Append-only structured trace with category filtering."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.records: t.List[TraceRecord] = []
        self._subscribers: t.List[t.Callable[[TraceRecord], None]] = []

    def emit(self, category: str, **fields: t.Any) -> TraceRecord:
        """Record an entry at the current simulated time."""
        record = TraceRecord(self.sim.now, category, dict(fields))
        self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback: t.Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequent record."""
        self._subscribers.append(callback)

    def select(self, category: str, **match: t.Any) -> t.List[TraceRecord]:
        """Records of ``category`` whose fields equal all of ``match``."""
        out = []
        for record in self.records:
            if record.category != category:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                out.append(record)
        return out

    def clear(self) -> None:
        """Drop all records (subscribers are kept)."""
        self.records.clear()


@dataclass
class Counter:
    """Monotonic counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-value gauge with min/max tracking."""

    name: str
    value: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.samples += 1
