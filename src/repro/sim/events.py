"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.
It moves through three states: *pending* (created, not yet decided),
*triggered* (scheduled to fire), and *processed* (callbacks have run).
Events may succeed with a value or fail with an exception; a process
waiting on a failed event has the exception thrown into its generator.

This mirrors the SimPy event model closely enough that anyone who has
used SimPy can read the scenario code, without pulling in a dependency.
"""

from __future__ import annotations

import typing as t

from ..errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

#: Priority band for events that must fire before ordinary events at the
#: same timestamp (e.g. interrupts).
PRIORITY_URGENT = 0
#: Default priority band.
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.  An event can only be waited on by
        processes of the same simulator.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_decided", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        # Waiter storage is adaptive: None (no waiters), a bare callable
        # (the overwhelmingly common single-waiter case — one process
        # awaiting one event), or a list once a second waiter appears.
        # Most events never pay for a list allocation.
        self._callbacks: t.Union[None, t.Callable[["Event"], None],
                                 t.List[t.Callable[["Event"], None]]] = None
        self._value: t.Any = None
        self._ok: t.Optional[bool] = None
        self._decided = False
        self._processed = False

    @classmethod
    def _prompt(cls, sim: "Simulator", callback: t.Callable[["Event"], None],
                ok: bool = True, value: t.Any = None,
                priority: int = PRIORITY_NORMAL) -> "Event":
        """A pre-decided single-waiter event, scheduled in one step.

        Used by the kernel for process bootstrap and interrupts: one
        allocation and one heap push, consuming exactly one sequence
        number — the same queue footprint as ``Event().succeed()`` plus
        ``add_callback`` took, so event ordering is unchanged.
        """
        event = cls(sim)
        event._decided = True
        event._ok = ok
        event._value = value
        event._callbacks = callback
        sim._schedule_event(event, priority, 0.0)
        return event

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been decided (succeed/fail called)."""
        return self._decided

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been decided yet")
        return self._ok

    @property
    def value(self) -> t.Any:
        """The success value or failure exception."""
        if not self._decided:
            raise SimulationError("event has not been decided yet")
        return self._value

    # -- state transitions -----------------------------------------------

    def succeed(self, value: t.Any = None) -> "Event":
        """Decide the event successfully and schedule its callbacks."""
        self._decide(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Decide the event with a failure and schedule its callbacks."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._decide(False, exception)
        return self

    def _decide(self, ok: bool, value: t.Any) -> None:
        if self._decided:
            raise SimulationError(f"{self!r} has already been decided")
        self._decided = True
        self._ok = ok
        self._value = value
        self.sim._schedule_event(self, PRIORITY_NORMAL, 0.0)

    def _run_callbacks(self) -> None:
        """Invoked by the kernel when the event is popped from the queue."""
        callbacks, self._callbacks = self._callbacks, None
        self._processed = True
        if callbacks is None:
            return
        if type(callbacks) is list:
            for callback in callbacks:
                callback(self)
        else:
            callbacks(self)

    def add_callback(self, callback: t.Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event has already been processed the callback runs
        immediately, so late subscribers do not deadlock.
        """
        if self._processed:
            callback(self)
            return
        current = self._callbacks
        if current is None:
            self._callbacks = callback
        elif type(current) is list:
            current.append(callback)
        else:
            self._callbacks = [current, callback]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._decided else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule_event(self, PRIORITY_NORMAL, delay)

    def _run_callbacks(self) -> None:
        # A timeout is decided at the moment it fires, not at creation,
        # so `triggered` correctly reads False while it is still pending.
        self._decided = True
        self._ok = True
        super()._run_callbacks()


class FlowEvent(Timeout):
    """A coarse-grained flow-level event (fluid fast path).

    Where a packet-mode transfer schedules one :class:`Timeout` per
    segment hop, a fluidized transfer schedules a single ``FlowEvent``
    for the whole message: ``flow`` identifies the connection 5-tuple
    and ``kind`` the milestone (``"deliver"``, ``"fin"``, ...).  It is
    an ordinary :class:`Timeout` underneath — same ``(time, priority,
    seq)`` ordering, same queue — so flow events interleave
    deterministically with packet events in hybrid runs.
    """

    __slots__ = ("flow", "kind")

    def __init__(self, sim: "Simulator", delay: float, flow: t.Any,
                 kind: str, value: t.Any = None) -> None:
        super().__init__(sim, delay, value)
        self.flow = flow
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowEvent {self.kind!r} flow={self.flow!r} delay={self.delay}>"


class AnyOf(Event):
    """Fires as soon as any child event fires.

    Succeeds with a dict mapping each already-fired child to its value.
    If the first child to fire failed, this event fails with the same
    exception.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._decided:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())

    def _collect(self) -> t.Dict[Event, t.Any]:
        return {
            event: event.value
            for event in self.events
            if event.triggered and event.ok
        }


class AllOf(Event):
    """Fires once every child event has fired.

    Succeeds with a dict mapping every child to its value; fails fast if
    any child fails.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._decided:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})
