"""Seeded, named random-number streams.

Every stochastic component draws from its own named stream derived from
a single experiment seed.  This gives two properties the measurement
harness relies on:

* **Reproducibility** — the same seed yields the same trace.
* **Variance isolation** — adding a new random component (say, a new
  DPI classifier that flips coins) does not perturb the draws seen by
  existing components, because streams are independent.
"""

from __future__ import annotations

import hashlib
import random
import typing as t


class RngRegistry:
    """Factory for independent named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: t.Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The stream seed is derived by hashing (experiment seed, name),
        so streams are stable regardless of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per concurrent client)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def reset(self) -> None:
        """Drop all streams so the next access reseeds them."""
        self._streams.clear()
