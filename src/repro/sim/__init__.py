"""Discrete-event simulation kernel.

Public surface::

    from repro.sim import Simulator

    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.5)
        return "done"

    result = sim.run(until=sim.process(proc(sim)))
"""

from .events import AllOf, AnyOf, Event, FlowEvent, Timeout
from .kernel import Process, Simulator
from .monitor import Counter, Gauge, TraceLog, TraceRecord
from .resources import ProcessorSharingServer, Resource, Store
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "FlowEvent",
    "Gauge",
    "Process",
    "ProcessorSharingServer",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Store",
    "Timeout",
    "TraceLog",
    "TraceRecord",
]
