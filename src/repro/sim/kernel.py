"""The discrete-event simulation kernel: clock, queue, and processes.

A :class:`Simulator` owns a priority queue of (time, priority, seq,
event) entries.  :class:`Process` wraps a Python generator; the
generator yields :class:`~repro.sim.events.Event` objects and is resumed
with each event's value once it fires.  A process is itself an event
that succeeds with the generator's return value, so processes compose:

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        assert value == 42

The kernel is single-threaded and deterministic: ties in time are broken
by priority band, then by insertion order.
"""

from __future__ import annotations

import heapq
import typing as t

from ..errors import ProcessKilled, SimulationError
from .events import AllOf, AnyOf, Event, FlowEvent, Timeout, PRIORITY_URGENT
from .rng import RngRegistry

ProcessGenerator = t.Generator[Event, t.Any, t.Any]


class Process(Event):
    """A running coroutine process, itself awaitable as an event."""

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: t.Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}; "
                "did you forget to call the generator function?")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: t.Optional[Event] = None
        # Kick-start the generator at the current simulated time.
        Event._prompt(sim, self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`ProcessKilled` into the process.

        The interrupt is delivered as an urgent event at the current
        time, so it wins ties against ordinary events.  Interrupting a
        finished process is a silent no-op, which makes watchdog timers
        safe to leave running.
        """
        if self.triggered:
            return
        Event._prompt(self.sim, self._resume, ok=False,
                      value=ProcessKilled(cause), priority=PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return  # finished before a stale callback arrived
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            # The process chose not to handle its interrupt; propagate
            # as a failure of the process event.
            self.fail(exc)
            return
        except Exception as exc:
            # An unhandled exception terminates *this process*, failing
            # its event for anyone awaiting it — it must not take the
            # whole simulation down (orphaned processes may fail long
            # after their parents stopped caring).
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances")
        if target.sim is not self.sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from a different simulator")
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    The simulator owns the experiment's :class:`RngRegistry`: every
    stochastic component defaults to a named stream from ``sim.rng``
    (``"link.loss"``, ``"gfw.interference"``, ...), so one ``seed``
    fixes the entire trace.  Components still accept an injected
    ``rng=`` for tests that want a private stream.
    """

    def __init__(self, seed: int = 0,
                 rng: t.Optional[RngRegistry] = None) -> None:
        self._now = 0.0
        self._queue: t.List[t.Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self.rng = rng if rng is not None else RngRegistry(seed)
        #: Optional fluid-flow registry (see :mod:`repro.perf.fluid`).
        #: ``None`` means pure packet mode; components must treat that
        #: as "no fast path" so packet-mode traces are bit-unchanged.
        self.fluid: t.Optional[t.Any] = None
        #: Optional edge-cache registry (see :mod:`repro.cache`).
        #: ``None`` means no caches are deployed; policy-change hooks
        #: must treat that as "nothing to invalidate".
        self.caches: t.Optional[t.Any] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create an undecided event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def flow_event(self, delay: float, flow: t.Any, kind: str,
                   value: t.Any = None) -> FlowEvent:
        """Create a coarse-grained flow event ``delay`` seconds from now."""
        return FlowEvent(self, delay, flow, kind, value)

    def process(
        self,
        generator: ProcessGenerator,
        name: t.Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: t.Sequence[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: t.Sequence[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule_event(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule(
        self,
        delay: float,
        callback: t.Callable[[], None],
    ) -> Event:
        """Run a plain callback after ``delay`` seconds; returns its event."""
        timer = self.timeout(delay)
        timer.add_callback(lambda _event: callback())
        return timer

    # -- execution -----------------------------------------------------------

    def step(self) -> float:
        """Process the next scheduled event; returns its timestamp."""
        if not self._queue:
            raise SimulationError("simulation queue is empty")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")  # pragma: no cover
        self._now = when
        event._run_callbacks()
        return when

    def peek(self) -> float:
        """Timestamp of the next event, or ``float('inf')`` if idle."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def run(
        self,
        until: t.Union[None, float, Event] = None,
        max_events: t.Optional[int] = None,
    ) -> t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the queue drains.  A float runs until
            that simulated time.  An :class:`Event` runs until the event
            fires and returns its value (raising its exception if the
            event failed).
        max_events:
            Safety valve for tests; raise if exceeded.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            return self._run_inner(until, max_events)
        finally:
            self._running = False

    def _run_inner(
        self,
        until: t.Union[None, float, Event],
        max_events: t.Optional[int],
    ) -> t.Any:
        stop_event: t.Optional[Event] = None
        stop_time: t.Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})")
        processed = 0
        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                break
            self.step()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() ended before its target event fired (deadlock?)")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_time is not None and self._now < stop_time:
            self._now = stop_time
        return None
