"""The deterministic edge response cache.

A bounded, TTL'd, LRU response cache clocked off *simulated* time —
no wall clock, no ambient randomness, so a cached sweep replays
byte-identically under one seed.  The proxies key entries by
``(method, canonical request, blinding epoch)``: the epoch in the key
makes blinding-table rotation structurally coherent (a rotated proxy
*cannot* address a stale entry), and explicit invalidation hooks purge
eagerly on rotation and on audited GFW policy changes so stale bytes
do not even linger until TTL.

Sizing is in bytes with a high/low watermark: inserts that push the
cache past ``capacity_bytes`` evict least-recently-used entries until
occupancy falls to ``low_watermark * capacity_bytes``, so eviction
runs in deterministic batches instead of thrashing one entry per
insert at the boundary.
"""

from __future__ import annotations

import hashlib
import typing as t
from collections import OrderedDict
from dataclasses import dataclass

if t.TYPE_CHECKING:  # pragma: no cover
    from ..measure.metrics import CacheReport, Summary


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for one edge cache tier (all conservative defaults).

    ``ttl``
        Seconds a response stays fresh, measured on the sim clock.
    ``capacity_bytes`` / ``low_watermark``
        Byte budget and the occupancy fraction eviction drains to.
    ``remote_tier``
        Also run a second-tier cache inside each remote proxy
        (intercepting relayed requests); saves origin round trips for
        queries shared across regions.
    """

    ttl: float = 120.0
    capacity_bytes: int = 8 * 1024 * 1024
    low_watermark: float = 0.75
    remote_tier: bool = False

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise ValueError("cache ttl must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("cache capacity_bytes must be positive")
        if not 0.0 < self.low_watermark <= 1.0:
            raise ValueError("cache low_watermark must be in (0, 1]")


@dataclass
class _Entry:
    """One cached response plus its accounting metadata."""

    response: t.Any
    #: Wire length of the response frame as forwarded to the browser.
    wire_length: int
    #: Bytes this entry charges against ``capacity_bytes``.
    charged_bytes: int
    #: Transpacific bytes one hit avoids (blinded request + response).
    avoided_bytes: int
    #: Sim time after which the entry is stale.
    expires_at: float
    #: Blinding epoch the entry was inserted under (defense in depth:
    #: the epoch is already part of the key).
    epoch: int


def canonical_key(request: t.Any, port: int) -> t.Tuple:
    """The canonical request key: ``(method, host, port, scheme, path,
    first_visit)``.

    ``first_visit`` is part of the identity because the origin's
    response *differs* on it (first visits trigger the account-record
    side channel); everything else that matters to this reproduction's
    responses is host + path.
    """
    return ("GET", request.host, port, request.scheme, request.path,
            bool(request.first_visit))


class ResponseCache:
    """Deterministic LRU-with-TTL response cache for one proxy tier."""

    def __init__(self, sim, config: CacheConfig, agility,
                 name: str = "edge") -> None:
        self.sim = sim
        self.config = config
        self.agility = agility
        self.name = name
        #: LRU order: oldest first.  Bounded by the watermark eviction
        #: in ``_make_room`` (insert never returns with occupancy above
        #: ``capacity_bytes``).
        self._entries: "OrderedDict[t.Tuple, _Entry]" = OrderedDict()
        self.bytes_in_cache = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.bytes_served = 0
        self.transpacific_bytes_avoided = 0
        #: Streaming digest of every hit/miss/insert/evict/invalidate,
        #: in event order — O(1) memory, byte-comparable across runs
        #: for the determinism tests.
        self._digest = hashlib.blake2b(digest_size=16)

    # -- key helpers -----------------------------------------------------------

    def _full_key(self, key: t.Tuple) -> t.Tuple:
        return key + (self.agility.epoch,)

    def _note(self, op: str, key: t.Tuple) -> None:
        self._digest.update(
            f"{op}|{key!r}|{self.sim.now:.9f}\n".encode("utf-8"))

    @property
    def event_digest(self) -> str:
        """Hex digest of the hit/miss/evict/invalidate event stream."""
        return self._digest.hexdigest()

    @property
    def entries(self) -> int:
        return len(self._entries)

    # -- lookup / insert -------------------------------------------------------

    def lookup(self, key: t.Tuple) -> t.Optional[t.Any]:
        """The cached response for ``key`` at the current epoch, or None.

        A hit refreshes LRU recency and books the served/avoided byte
        counters; an expired entry is removed and counted as a miss.
        """
        full = self._full_key(key)
        entry = self._entries.get(full)
        if entry is not None and entry.expires_at < self.sim.now:
            self._drop(full, entry)
            self.expirations += 1
            self._note("expire", full)
            entry = None
        if entry is None:
            self.misses += 1
            self._note("miss", full)
            return None
        if entry.epoch != self.agility.epoch:  # pragma: no cover - keyed out
            raise AssertionError(
                f"{self.name}: stale-epoch entry addressed: {full!r}")
        self._entries.move_to_end(full)
        self.hits += 1
        self.bytes_served += entry.wire_length
        self.transpacific_bytes_avoided += entry.avoided_bytes
        self._note("hit", full)
        return entry.response

    def wire_length_of(self, key: t.Tuple) -> int:
        """Wire length recorded for a cached entry (0 when absent)."""
        entry = self._entries.get(self._full_key(key))
        return 0 if entry is None else entry.wire_length

    def insert(self, key: t.Tuple, response: t.Any, wire_length: int,
               avoided_bytes: int) -> bool:
        """Cache ``response``; False if it alone exceeds the capacity."""
        charged = max(1, wire_length)
        if charged > self.config.capacity_bytes:
            return False
        full = self._full_key(key)
        previous = self._entries.pop(full, None)
        if previous is not None:
            self.bytes_in_cache -= previous.charged_bytes
        self._make_room(charged)
        # Bounded: _make_room just drained occupancy below the low
        # watermark, so this insert stays within capacity_bytes.
        self._entries[full] = _Entry(
            response=response, wire_length=wire_length,
            charged_bytes=charged, avoided_bytes=avoided_bytes,
            expires_at=self.sim.now + self.config.ttl,
            epoch=self.agility.epoch)
        self.bytes_in_cache += charged
        self.insertions += 1
        self._note("insert", full)
        return True

    def _make_room(self, incoming: int) -> None:
        """Watermark eviction: drain LRU-first until the insert fits
        and occupancy is at or below the low watermark."""
        if self.bytes_in_cache + incoming <= self.config.capacity_bytes:
            return
        target = int(self.config.low_watermark * self.config.capacity_bytes)
        target = min(target, self.config.capacity_bytes - incoming)
        while self._entries and self.bytes_in_cache > target:
            full, entry = self._entries.popitem(last=False)
            self.bytes_in_cache -= entry.charged_bytes
            self.evictions += 1
            self._note("evict", full)

    def _drop(self, full: t.Tuple, entry: _Entry) -> None:
        del self._entries[full]
        self.bytes_in_cache -= entry.charged_bytes

    # -- coherence -------------------------------------------------------------

    def invalidate_all(self, reason: str) -> int:
        """Purge everything (blinding rotation, GFW policy change)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.bytes_in_cache = 0
        self.invalidations += dropped
        self._note(f"invalidate:{reason}", ("*",))
        return dropped

    def on_policy_change(self, label: str) -> None:
        """An audited GFW policy escalation may change what is
        reachable; cached responses fetched under the old policy must
        not mask it."""
        self.invalidate_all(f"policy:{label}")

    # -- reporting -------------------------------------------------------------

    def report(self, plt_hit: "t.Optional[Summary]" = None,
               plt_miss: "t.Optional[Summary]" = None) -> "CacheReport":
        from ..measure.metrics import CacheReport
        return CacheReport(
            hits=self.hits, misses=self.misses,
            insertions=self.insertions, evictions=self.evictions,
            expirations=self.expirations, invalidations=self.invalidations,
            entries=len(self._entries), bytes_in_cache=self.bytes_in_cache,
            bytes_served=self.bytes_served,
            transpacific_bytes_avoided=self.transpacific_bytes_avoided,
            plt_hit=plt_hit, plt_miss=plt_miss,
            event_digest=self.event_digest)


class CacheRegistry:
    """Every live cache tier in one sim, for broadcast invalidation.

    Installed on the simulator as ``sim.caches`` (mirroring
    ``sim.fluid``); the GFW's audited ``apply_policy`` path notifies it
    so escalations invalidate coherently across every PoP and tier.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._caches: t.List[ResponseCache] = []

    def install(self) -> "CacheRegistry":
        self.sim.caches = self
        return self

    def register(self, cache: ResponseCache) -> ResponseCache:
        self._caches.append(cache)
        return cache

    def __iter__(self) -> t.Iterator[ResponseCache]:
        return iter(self._caches)

    def on_policy_change(self, label: str) -> None:
        for cache in self._caches:
            cache.on_policy_change(label)

    def invalidate_all(self, reason: str) -> int:
        return sum(cache.invalidate_all(reason) for cache in self._caches)
