"""Edge cache & content-delivery layer for the proxy pair.

ROADMAP item 3: a deterministic, bounded, TTL'd response cache wired
into the domestic proxy (and optionally the remote proxy as a second
tier), keyed by ``(method, canonical request, blinding epoch)`` so
blinding rotation and GFW policy escalations invalidate coherently.
Everything is opt-in: with no :class:`CacheConfig` the proxies are
event-for-event identical to the uncached system.
"""

from .store import CacheConfig, CacheRegistry, ResponseCache, canonical_key
from .workload import (
    DEFAULT_CORPUS,
    DEFAULT_ZIPF_S,
    ZipfSampler,
    query_corpus,
    scholar_query_page,
)

__all__ = [
    "CacheConfig",
    "CacheRegistry",
    "ResponseCache",
    "canonical_key",
    "DEFAULT_CORPUS",
    "DEFAULT_ZIPF_S",
    "ZipfSampler",
    "query_corpus",
    "scholar_query_page",
]
