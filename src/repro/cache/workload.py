"""The repeated-query Scholar workload.

Real Scholar traffic is not a uniform page fetch: query popularity is
heavy-tailed (a few hot queries dominate), and scraper-shaped clients
(ROADMAP item 4b, modeled on the citation-crawl scrapers in the
related repos) page through several result sets back-to-back.  This
module builds the deterministic query corpus and the Zipf sampler the
``repeated-query`` scenario drives through the edge cache.

Query-result documents are marked proxy-cacheable: the same query
returns the same result page within the cache TTL, which is precisely
the content-delivery bet the edge cache makes (ROADMAP item 3).
"""

from __future__ import annotations

import typing as t

from ..http.page import Page, PageObject

#: Default corpus size (distinct queries clients draw from).
DEFAULT_CORPUS = 24
#: Default Zipf exponent; ~1.1 matches measured web-query popularity.
DEFAULT_ZIPF_S = 1.1
#: Scraper burst cap: one client loads at most this many result pages
#: back-to-back per measurement cycle.
MAX_BURST = 4

#: Topics seeding the deterministic query corpus (cycled with an index
#: suffix past their count).
_TOPICS = (
    "internet+censorship", "great+firewall", "dns+poisoning",
    "active+probing", "traffic+analysis", "domain+fronting",
    "tls+fingerprinting", "proxy+detection", "bridge+distribution",
    "decoy+routing", "meek+transport", "shadowsocks",
)


def scholar_query_page(rank: int) -> Page:
    """The result page of the rank-``rank`` most popular query.

    Sizes follow :func:`~repro.http.page.google_scholar_results`
    (48 KB document, shared static assets) with a small deterministic
    per-rank spread so ranks are distinguishable in byte accounting.
    ``document_cacheable=True`` is the edge-cache contract: result
    pages may be served from the proxy within the TTL.
    """
    topic = _TOPICS[rank % len(_TOPICS)]
    suffix = "" if rank < len(_TOPICS) else f"+{rank // len(_TOPICS)}"
    return Page(
        host="scholar.google.com",
        path=f"/scholar?q={topic}{suffix}&rank={rank}",
        document_size=48_000 + 250 * (rank % 7),
        objects=[
            PageObject("/scholar.css", 3600),
            PageObject("/scholar.js", 4100),
        ],
        document_cacheable=True,
        records_account=False,
        parse_time=0.05,
    )


def query_corpus(size: int = DEFAULT_CORPUS) -> t.List[Page]:
    """The ``size`` distinct query-result pages, hottest first."""
    return [scholar_query_page(rank) for rank in range(size)]


class ZipfSampler:
    """Deterministic Zipf(``s``) rank sampler over ``size`` items.

    Draws come from an injected named RNG stream (the caller owns the
    stream; see the rng manifest), via inverse-CDF lookup on the
    precomputed mass table — no state beyond the table, so samples are
    a pure function of the stream's draw sequence.
    """

    def __init__(self, size: int, s: float = DEFAULT_ZIPF_S) -> None:
        if size < 1:
            raise ValueError("corpus size must be >= 1")
        weights = [1.0 / (rank + 1) ** s for rank in range(size)]
        total = sum(weights)
        self._cdf: t.List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0

    def sample(self, rng) -> int:
        """Draw one rank in ``[0, size)`` using ``rng.uniform``."""
        draw = rng.uniform(0.0, 1.0)
        for rank, edge in enumerate(self._cdf):
            if draw <= edge:
                return rank
        return len(self._cdf) - 1  # pragma: no cover - cdf[-1] == 1.0

    def burst_length(self, rng, cap: int = MAX_BURST) -> int:
        """Scraper burst size in ``[1, cap]``, heavy-tailed.

        Reuses the Zipf shape over burst sizes so most sessions load
        one page and a minority page through several result sets.
        """
        weights = [1.0 / (k ** 2) for k in range(1, cap + 1)]
        total = sum(weights)
        draw = rng.uniform(0.0, 1.0)
        running = 0.0
        for index, weight in enumerate(weights):
            running += weight / total
            if draw <= running:
                return index + 1
        return cap
