"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems define narrower types
here rather than ad-hoc ``ValueError`` subclasses scattered through the
code base, which keeps ``except`` clauses meaningful.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class ProcessKilled(SimulationError):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.kernel.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class NetworkError(ReproError):
    """Errors raised by the network substrate (links, nodes, routing)."""


class AddressError(NetworkError):
    """Malformed or unroutable network address."""


class RoutingError(NetworkError):
    """No route exists toward the requested destination."""


class TransportError(ReproError):
    """Errors raised by the simulated transport layer."""


class ConnectionRefused(TransportError):
    """No listener on the destination port."""


class ConnectionReset(TransportError):
    """The connection was torn down by a RST segment.

    Injected RSTs are the Great Firewall's primary disruption mechanism,
    so this error is what censored flows observe.
    """


class ConnectionTimeout(TransportError):
    """The connection handshake or transfer exceeded its deadline."""


class OverloadError(TransportError):
    """The request was shed by admission control (HTTP 503 semantics).

    A shed is a *decision*, not a transient fault: the server judged
    that finishing this request would degrade everyone else's.  Callers
    should fail fast rather than retry hot — immediate retries are how
    an overload becomes a retry storm.
    """


class DnsError(ReproError):
    """Errors raised by the simulated DNS subsystem."""


class NameResolutionError(DnsError):
    """The name could not be resolved (NXDOMAIN or no answer)."""


class HttpError(ReproError):
    """Errors raised by the simulated HTTP layer."""


class CryptoError(ReproError):
    """Errors raised by the pure-Python crypto substrate."""


class BlindingError(CryptoError):
    """A blinding codec was misconfigured or failed to round-trip."""


class PolicyError(ReproError):
    """Errors raised by the government-regulation model."""


class RegistrationError(PolicyError):
    """ICP registration was rejected or is in an invalid state."""


class MiddlewareError(ReproError):
    """Errors raised by the access-method middleware implementations."""


class TunnelError(MiddlewareError):
    """A VPN/proxy tunnel could not be established or was torn down."""


class MeasurementError(ReproError):
    """Errors raised by the measurement harness."""


class FaultError(ReproError):
    """A fault schedule was malformed or could not be applied."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""
