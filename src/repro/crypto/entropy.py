"""Shannon entropy estimation over byte strings.

The GFW's entropy-based DPI heuristic (flagging fully-random-looking
first packets, a known Shadowsocks tell) uses this estimator; the
realnet proxies use it in tests to demonstrate that ciphertext and
blinded streams really are high-entropy.
"""

from __future__ import annotations

import math
import typing as t


def shannon_entropy(data: bytes) -> float:
    """Empirical entropy of ``data`` in bits per byte (0..8)."""
    if not data:
        return 0.0
    counts: t.Dict[int, int] = {}
    for byte in data:
        counts[byte] = counts.get(byte, 0) + 1
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def looks_like_ciphertext(data: bytes, threshold: float = 7.0,
                          minimum_length: int = 64) -> bool:
    """Heuristic: long, near-uniform byte strings look encrypted."""
    if len(data) < minimum_length:
        return False
    return shannon_entropy(data) >= threshold
