"""Pure-Python AES (FIPS-197) block cipher.

Implements AES-128/192/256 encryption and decryption of single 16-byte
blocks.  Performance is adequate for the reproduction's needs (framing
a few hundred kilobytes through the loopback proxies); it is of course
not constant-time and must never be used to protect real traffic.

Verified against the FIPS-197 appendix test vectors in the test suite.
"""

from __future__ import annotations

import typing as t

from ..errors import CryptoError

# -- tables -------------------------------------------------------------------


def _build_sbox() -> t.Tuple[t.List[int], t.List[int]]:
    """Construct the S-box from the finite-field definition."""
    # Multiplicative inverse table via exp/log over GF(2^8) with
    # generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform.
        result = 0
        for bit in range(8):
            result |= (
                ((inverse >> bit) & 1)
                ^ ((inverse >> ((bit + 4) % 8)) & 1)
                ^ ((inverse >> ((bit + 5) % 8)) & 1)
                ^ ((inverse >> ((bit + 6) % 8)) & 1)
                ^ ((inverse >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            ) << bit
        sbox[value] = result
        inv_sbox[result] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
        0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """AES block cipher with a fixed key."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key()

    # -- key schedule ------------------------------------------------------------

    def _expand_key(self) -> t.List[t.List[int]]:
        key_words = len(self.key) // 4
        words: t.List[t.List[int]] = [
            list(self.key[4 * i: 4 * i + 4]) for i in range(key_words)]
        total_words = 4 * (self.rounds + 1)
        for i in range(key_words, total_words):
            temp = list(words[i - 1])
            if i % key_words == 0:
                temp = temp[1:] + temp[:1]                     # RotWord
                temp = [SBOX[b] for b in temp]                 # SubWord
                temp[0] ^= RCON[i // key_words - 1]
            elif key_words > 6 and i % key_words == 4:
                temp = [SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - key_words], temp)])
        # Group into 16-byte round keys (column-major state layout).
        return [sum(words[4 * r: 4 * r + 4], []) for r in range(self.rounds + 1)]

    # -- single-block operations -----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for round_index in range(1, self.rounds):
            state = self._round(state, self._round_keys[round_index])
        # Final round (no MixColumns).
        state = [SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = [state[i] ^ self._round_keys[self.rounds][i] for i in range(16)]
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        state = [block[i] ^ self._round_keys[self.rounds][i] for i in range(16)]
        state = self._inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        for round_index in range(self.rounds - 1, 0, -1):
            state = [state[i] ^ self._round_keys[round_index][i] for i in range(16)]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
        return bytes(state[i] ^ self._round_keys[0][i] for i in range(16))

    # -- round building blocks ----------------------------------------------------------

    @staticmethod
    def _shift_rows(state: t.List[int]) -> t.List[int]:
        # State is column-major: state[4*col + row].
        out = [0] * 16
        for col in range(4):
            for row in range(4):
                out[4 * col + row] = state[4 * ((col + row) % 4) + row]
        return out

    @staticmethod
    def _inv_shift_rows(state: t.List[int]) -> t.List[int]:
        out = [0] * 16
        for col in range(4):
            for row in range(4):
                out[4 * ((col + row) % 4) + row] = state[4 * col + row]
        return out

    @staticmethod
    def _mix_columns(state: t.List[int]) -> t.List[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col: 4 * col + 4]
            out[4 * col + 0] = _mul(a[0], 2) ^ _mul(a[1], 3) ^ a[2] ^ a[3]
            out[4 * col + 1] = a[0] ^ _mul(a[1], 2) ^ _mul(a[2], 3) ^ a[3]
            out[4 * col + 2] = a[0] ^ a[1] ^ _mul(a[2], 2) ^ _mul(a[3], 3)
            out[4 * col + 3] = _mul(a[0], 3) ^ a[1] ^ a[2] ^ _mul(a[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: t.List[int]) -> t.List[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col: 4 * col + 4]
            out[4 * col + 0] = _mul(a[0], 14) ^ _mul(a[1], 11) ^ _mul(a[2], 13) ^ _mul(a[3], 9)
            out[4 * col + 1] = _mul(a[0], 9) ^ _mul(a[1], 14) ^ _mul(a[2], 11) ^ _mul(a[3], 13)
            out[4 * col + 2] = _mul(a[0], 13) ^ _mul(a[1], 9) ^ _mul(a[2], 14) ^ _mul(a[3], 11)
            out[4 * col + 3] = _mul(a[0], 11) ^ _mul(a[1], 13) ^ _mul(a[2], 9) ^ _mul(a[3], 14)
        return out

    def _round(self, state: t.List[int], round_key: t.List[int]) -> t.List[int]:
        state = [SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = self._mix_columns(state)
        return [state[i] ^ round_key[i] for i in range(16)]
