"""Pure-Python AES (FIPS-197) block cipher.

Implements AES-128/192/256 encryption and decryption of single 16-byte
blocks.  The round functions are table-driven (the classic 32-bit
T-table formulation) with flattened, unrolled column updates — roughly
an order of magnitude faster than the textbook per-byte pipeline the
repo started with, which is preserved verbatim in
:mod:`repro.perf.reference` as the equivalence oracle.  It is of course
not constant-time (table lookups key on secret data) and must never be
used to protect real traffic.

Verified against the FIPS-197 appendix test vectors and, on random
corpora, against the reference implementation in the test suite.
"""

from __future__ import annotations

import typing as t

from ..errors import CryptoError

# -- tables -------------------------------------------------------------------


def _build_sbox() -> t.Tuple[t.List[int], t.List[int]]:
    """Construct the S-box from the finite-field definition."""
    # Multiplicative inverse table via exp/log over GF(2^8) with
    # generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform.
        result = 0
        for bit in range(8):
            result |= (
                ((inverse >> bit) & 1)
                ^ ((inverse >> ((bit + 4) % 8)) & 1)
                ^ ((inverse >> ((bit + 5) % 8)) & 1)
                ^ ((inverse >> ((bit + 6) % 8)) & 1)
                ^ ((inverse >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            ) << bit
        sbox[value] = result
        inv_sbox[result] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
        0x6C, 0xD8, 0xAB, 0x4D]


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _rotr8(word: int) -> int:
    return ((word >> 8) | (word << 24)) & 0xFFFFFFFF


def _build_t_tables() -> t.Tuple[t.List[t.List[int]], t.List[t.List[int]]]:
    """Encryption tables T0..T3 and decryption tables D0..D3.

    T0[x] packs one column of MixColumns(SubBytes(x)) — rows 0..3 in the
    high-to-low bytes of a 32-bit word (the state is column-major, row 0
    in the most significant byte).  T1..T3 are byte rotations of T0;
    D0..D3 likewise pack InvMixColumns over INV_SBOX.
    """
    t0 = [0] * 256
    d0 = [0] * 256
    for x in range(256):
        s = SBOX[x]
        t0[x] = (_mul(s, 2) << 24) | (s << 16) | (s << 8) | _mul(s, 3)
        i = INV_SBOX[x]
        d0[x] = ((_mul(i, 14) << 24) | (_mul(i, 9) << 16)
                 | (_mul(i, 13) << 8) | _mul(i, 11))
    enc = [t0]
    dec = [d0]
    for _ in range(3):
        enc.append([_rotr8(w) for w in enc[-1]])
        dec.append([_rotr8(w) for w in dec[-1]])
    return enc, dec


_T_ENC, _T_DEC = _build_t_tables()

#: Key schedules are pure functions of the key bytes; Shadowsocks-style
#: protocols build a fresh cipher per connection from the *same* key,
#: so memoize the expansion (bounded — eviction clears the oldest half).
_SCHEDULE_CACHE: t.Dict[bytes, t.Tuple[t.Any, ...]] = {}
_SCHEDULE_CACHE_MAX = 256


class AES:
    """AES block cipher with a fixed key."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        cached = _SCHEDULE_CACHE.get(self.key)
        if cached is None:
            self._round_keys = self._expand_key()
            self._enc_words = self._pack_words(self._round_keys)
            self._dec_words = self._inv_mixed_words()
            if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
                for stale in list(_SCHEDULE_CACHE)[:_SCHEDULE_CACHE_MAX // 2]:
                    del _SCHEDULE_CACHE[stale]
            _SCHEDULE_CACHE[self.key] = (
                self._round_keys, self._enc_words, self._dec_words)
        else:
            self._round_keys, self._enc_words, self._dec_words = cached

    # -- key schedule ------------------------------------------------------------

    def _expand_key(self) -> t.List[t.List[int]]:
        key_words = len(self.key) // 4
        words: t.List[t.List[int]] = [
            list(self.key[4 * i: 4 * i + 4]) for i in range(key_words)]
        total_words = 4 * (self.rounds + 1)
        for i in range(key_words, total_words):
            temp = list(words[i - 1])
            if i % key_words == 0:
                temp = temp[1:] + temp[:1]                     # RotWord
                temp = [SBOX[b] for b in temp]                 # SubWord
                temp[0] ^= RCON[i // key_words - 1]
            elif key_words > 6 and i % key_words == 4:
                temp = [SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - key_words], temp)])
        # Group into 16-byte round keys (column-major state layout).
        return [sum(words[4 * r: 4 * r + 4], []) for r in range(self.rounds + 1)]

    @staticmethod
    def _pack_words(round_keys: t.List[t.List[int]]) -> t.List[t.Tuple[int, ...]]:
        """Each 16-byte round key as four big-endian column words."""
        return [
            tuple((rk[4 * c] << 24) | (rk[4 * c + 1] << 16)
                  | (rk[4 * c + 2] << 8) | rk[4 * c + 3]
                  for c in range(4))
            for rk in round_keys
        ]

    def _inv_mixed_words(self) -> t.List[t.Tuple[int, ...]]:
        """Decryption round keys for the equivalent inverse cipher.

        ``dk[0]`` is the last encryption key, ``dk[rounds]`` the first;
        the middle keys get InvMixColumns applied (computed via the
        D-tables: D[SBOX[x]] is InvMixColumns of a bare byte x).
        """
        d0, d1, d2, d3 = _T_DEC
        sbox = SBOX
        enc = self._enc_words
        dec = [enc[self.rounds]]
        for r in range(self.rounds - 1, 0, -1):
            dec.append(tuple(
                d0[sbox[(w >> 24) & 0xFF]] ^ d1[sbox[(w >> 16) & 0xFF]]
                ^ d2[sbox[(w >> 8) & 0xFF]] ^ d3[sbox[w & 0xFF]]
                for w in enc[r]))
        dec.append(enc[0])
        return dec

    # -- single-block operations -----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        t0, t1, t2, t3 = _T_ENC
        words = self._enc_words
        k0, k1, k2, k3 = words[0]
        c0 = ((block[0] << 24) | (block[1] << 16) | (block[2] << 8) | block[3]) ^ k0
        c1 = ((block[4] << 24) | (block[5] << 16) | (block[6] << 8) | block[7]) ^ k1
        c2 = ((block[8] << 24) | (block[9] << 16) | (block[10] << 8) | block[11]) ^ k2
        c3 = ((block[12] << 24) | (block[13] << 16) | (block[14] << 8) | block[15]) ^ k3
        for round_index in range(1, self.rounds):
            k0, k1, k2, k3 = words[round_index]
            n0 = (t0[(c0 >> 24) & 0xFF] ^ t1[(c1 >> 16) & 0xFF]
                  ^ t2[(c2 >> 8) & 0xFF] ^ t3[c3 & 0xFF] ^ k0)
            n1 = (t0[(c1 >> 24) & 0xFF] ^ t1[(c2 >> 16) & 0xFF]
                  ^ t2[(c3 >> 8) & 0xFF] ^ t3[c0 & 0xFF] ^ k1)
            n2 = (t0[(c2 >> 24) & 0xFF] ^ t1[(c3 >> 16) & 0xFF]
                  ^ t2[(c0 >> 8) & 0xFF] ^ t3[c1 & 0xFF] ^ k2)
            n3 = (t0[(c3 >> 24) & 0xFF] ^ t1[(c0 >> 16) & 0xFF]
                  ^ t2[(c1 >> 8) & 0xFF] ^ t3[c2 & 0xFF] ^ k3)
            c0, c1, c2, c3 = n0, n1, n2, n3
        # Final round (SubBytes + ShiftRows + AddRoundKey, no MixColumns).
        sbox = SBOX
        k0, k1, k2, k3 = words[self.rounds]
        return bytes((
            sbox[(c0 >> 24) & 0xFF] ^ (k0 >> 24) & 0xFF,
            sbox[(c1 >> 16) & 0xFF] ^ (k0 >> 16) & 0xFF,
            sbox[(c2 >> 8) & 0xFF] ^ (k0 >> 8) & 0xFF,
            sbox[c3 & 0xFF] ^ k0 & 0xFF,
            sbox[(c1 >> 24) & 0xFF] ^ (k1 >> 24) & 0xFF,
            sbox[(c2 >> 16) & 0xFF] ^ (k1 >> 16) & 0xFF,
            sbox[(c3 >> 8) & 0xFF] ^ (k1 >> 8) & 0xFF,
            sbox[c0 & 0xFF] ^ k1 & 0xFF,
            sbox[(c2 >> 24) & 0xFF] ^ (k2 >> 24) & 0xFF,
            sbox[(c3 >> 16) & 0xFF] ^ (k2 >> 16) & 0xFF,
            sbox[(c0 >> 8) & 0xFF] ^ (k2 >> 8) & 0xFF,
            sbox[c1 & 0xFF] ^ k2 & 0xFF,
            sbox[(c3 >> 24) & 0xFF] ^ (k3 >> 24) & 0xFF,
            sbox[(c0 >> 16) & 0xFF] ^ (k3 >> 16) & 0xFF,
            sbox[(c1 >> 8) & 0xFF] ^ (k3 >> 8) & 0xFF,
            sbox[c2 & 0xFF] ^ k3 & 0xFF,
        ))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        d0, d1, d2, d3 = _T_DEC
        words = self._dec_words
        k0, k1, k2, k3 = words[0]
        c0 = ((block[0] << 24) | (block[1] << 16) | (block[2] << 8) | block[3]) ^ k0
        c1 = ((block[4] << 24) | (block[5] << 16) | (block[6] << 8) | block[7]) ^ k1
        c2 = ((block[8] << 24) | (block[9] << 16) | (block[10] << 8) | block[11]) ^ k2
        c3 = ((block[12] << 24) | (block[13] << 16) | (block[14] << 8) | block[15]) ^ k3
        for round_index in range(1, self.rounds):
            k0, k1, k2, k3 = words[round_index]
            n0 = (d0[(c0 >> 24) & 0xFF] ^ d1[(c3 >> 16) & 0xFF]
                  ^ d2[(c2 >> 8) & 0xFF] ^ d3[c1 & 0xFF] ^ k0)
            n1 = (d0[(c1 >> 24) & 0xFF] ^ d1[(c0 >> 16) & 0xFF]
                  ^ d2[(c3 >> 8) & 0xFF] ^ d3[c2 & 0xFF] ^ k1)
            n2 = (d0[(c2 >> 24) & 0xFF] ^ d1[(c1 >> 16) & 0xFF]
                  ^ d2[(c0 >> 8) & 0xFF] ^ d3[c3 & 0xFF] ^ k2)
            n3 = (d0[(c3 >> 24) & 0xFF] ^ d1[(c2 >> 16) & 0xFF]
                  ^ d2[(c1 >> 8) & 0xFF] ^ d3[c0 & 0xFF] ^ k3)
            c0, c1, c2, c3 = n0, n1, n2, n3
        # Final round (InvShiftRows + InvSubBytes + AddRoundKey).
        inv = INV_SBOX
        k0, k1, k2, k3 = words[self.rounds]
        return bytes((
            inv[(c0 >> 24) & 0xFF] ^ (k0 >> 24) & 0xFF,
            inv[(c3 >> 16) & 0xFF] ^ (k0 >> 16) & 0xFF,
            inv[(c2 >> 8) & 0xFF] ^ (k0 >> 8) & 0xFF,
            inv[c1 & 0xFF] ^ k0 & 0xFF,
            inv[(c1 >> 24) & 0xFF] ^ (k1 >> 24) & 0xFF,
            inv[(c0 >> 16) & 0xFF] ^ (k1 >> 16) & 0xFF,
            inv[(c3 >> 8) & 0xFF] ^ (k1 >> 8) & 0xFF,
            inv[c2 & 0xFF] ^ k1 & 0xFF,
            inv[(c2 >> 24) & 0xFF] ^ (k2 >> 24) & 0xFF,
            inv[(c1 >> 16) & 0xFF] ^ (k2 >> 16) & 0xFF,
            inv[(c0 >> 8) & 0xFF] ^ (k2 >> 8) & 0xFF,
            inv[c3 & 0xFF] ^ k2 & 0xFF,
            inv[(c3 >> 24) & 0xFF] ^ (k3 >> 24) & 0xFF,
            inv[(c2 >> 16) & 0xFF] ^ (k3 >> 16) & 0xFF,
            inv[(c1 >> 8) & 0xFF] ^ (k3 >> 8) & 0xFF,
            inv[c0 & 0xFF] ^ k3 & 0xFF,
        ))
