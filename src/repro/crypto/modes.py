"""Block cipher modes: CFB (as Shadowsocks' AES-256-CFB), CTR, CBC.

CFB here is the full-block (CFB-128) variant with ciphertext feedback
across partial final blocks, matching OpenSSL's ``aes-256-cfb`` that
classic Shadowsocks used.

Both stream modes process data a block at a time (the seed repo's
per-byte loops live on in :mod:`repro.perf.reference` as equivalence
oracles): the 16-byte XOR runs as one big-integer operation and the
AES call amortizes over the block.  CTR additionally caches keystream
blocks keyed by ``(key, counter)`` — the simulated protocols derive
IVs deterministically, so repeated handshakes over one connection's
lifetime hit the same counter blocks.
"""

from __future__ import annotations

import typing as t

from ..errors import CryptoError
from .aes import AES

#: Cross-instance CTR keystream cache.  Deterministic I/O: an entry is
#: a pure function of (key, counter block).  Bounded; eviction drops
#: the oldest half so steady-state lookups stay O(1).
_CTR_BLOCK_CACHE: t.Dict[t.Tuple[bytes, int], bytes] = {}
_CTR_BLOCK_CACHE_MAX = 4096


class CfbCipher:
    """Stateful CFB-128 stream: encrypt/decrypt arbitrary-length data."""

    def __init__(self, key: bytes, iv: bytes) -> None:
        if len(iv) != 16:
            raise CryptoError(f"CFB IV must be 16 bytes, got {len(iv)}")
        self._aes = AES(key)
        self._register = bytes(iv)
        self._keystream = b""  # unused keystream bytes from the last block

    def _crypt(self, data: bytes, feed_output: bool) -> bytes:
        """Shared CFB core: feedback is the cipher side of the stream.

        ``feed_output=True`` is encryption (the produced ciphertext
        feeds the register); ``False`` is decryption (the consumed
        ciphertext feeds it).  The register always holds the last
        cipher bytes, partial while mid-block — exactly the state the
        per-byte reference keeps, so the two interleave identically
        across arbitrary chunk boundaries.
        """
        out = bytearray()
        pos = 0
        length = len(data)
        encrypt_block = self._aes.encrypt_block
        while pos < length:
            if not self._keystream:
                self._keystream = encrypt_block(self._register)
                self._register = b""
            take = min(len(self._keystream), length - pos)
            chunk = data[pos:pos + take]
            keystream = self._keystream[:take]
            piece = (int.from_bytes(chunk, "big")
                     ^ int.from_bytes(keystream, "big")).to_bytes(take, "big")
            out += piece
            self._register += piece if feed_output else chunk
            self._keystream = self._keystream[take:]
            pos += take
        return bytes(out)

    def encrypt(self, data: bytes) -> bytes:
        return self._crypt(data, feed_output=True)

    def decrypt(self, data: bytes) -> bytes:
        return self._crypt(data, feed_output=False)


class CtrCipher:
    """CTR mode keystream cipher (encrypt == decrypt)."""

    def __init__(self, key: bytes, nonce: bytes) -> None:
        if len(nonce) != 16:
            raise CryptoError(f"CTR nonce must be 16 bytes, got {len(nonce)}")
        self._aes = AES(key)
        self._counter = int.from_bytes(nonce, "big")
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        length = len(data)
        if not length:
            return b""
        needed = length - len(self._keystream)
        if needed > 0:
            pieces = [self._keystream]
            key = self._aes.key
            cache = _CTR_BLOCK_CACHE
            counter = self._counter
            for _ in range((needed + 15) // 16):
                entry = (key, counter)
                block = cache.get(entry)
                if block is None:
                    block = self._aes.encrypt_block(counter.to_bytes(16, "big"))
                    if len(cache) >= _CTR_BLOCK_CACHE_MAX:
                        for stale in list(cache)[:_CTR_BLOCK_CACHE_MAX // 2]:
                            del cache[stale]
                    cache[entry] = block
                pieces.append(block)
                counter = (counter + 1) % (1 << 128)
            self._counter = counter
            self._keystream = b"".join(pieces)
        out = (int.from_bytes(data, "big")
               ^ int.from_bytes(self._keystream[:length], "big")
               ).to_bytes(length, "big")
        self._keystream = self._keystream[length:]
        return out

    encrypt = process
    decrypt = process


def _pkcs7_pad(data: bytes) -> bytes:
    pad = 16 - (len(data) % 16)
    return data + bytes([pad]) * pad


def _pkcs7_unpad(data: bytes) -> bytes:
    if not data or len(data) % 16:
        raise CryptoError("invalid padded length")
    pad = data[-1]
    if not 1 <= pad <= 16 or data[-pad:] != bytes([pad]) * pad:
        raise CryptoError("invalid PKCS#7 padding")
    return data[:-pad]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """One-shot CBC encryption with PKCS#7 padding."""
    if len(iv) != 16:
        raise CryptoError(f"CBC IV must be 16 bytes, got {len(iv)}")
    aes = AES(key)
    data = _pkcs7_pad(plaintext)
    previous = iv
    out = bytearray()
    for offset in range(0, len(data), 16):
        block = (int.from_bytes(data[offset:offset + 16], "big")
                 ^ int.from_bytes(previous, "big")).to_bytes(16, "big")
        previous = aes.encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """One-shot CBC decryption with PKCS#7 unpadding."""
    if len(iv) != 16:
        raise CryptoError(f"CBC IV must be 16 bytes, got {len(iv)}")
    if len(ciphertext) % 16:
        raise CryptoError("CBC ciphertext length must be a block multiple")
    aes = AES(key)
    previous = iv
    out = bytearray()
    for offset in range(0, len(ciphertext), 16):
        block = ciphertext[offset:offset + 16]
        plain = aes.decrypt_block(block)
        out += (int.from_bytes(plain, "big")
                ^ int.from_bytes(previous, "big")).to_bytes(16, "big")
        previous = block
    return _pkcs7_unpad(bytes(out))
