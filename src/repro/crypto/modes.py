"""Block cipher modes: CFB (as Shadowsocks' AES-256-CFB), CTR, CBC.

CFB here is the full-block (CFB-128) variant with ciphertext feedback
across partial final blocks, matching OpenSSL's ``aes-256-cfb`` that
classic Shadowsocks used.
"""

from __future__ import annotations

import typing as t

from ..errors import CryptoError
from .aes import AES


class CfbCipher:
    """Stateful CFB-128 stream: encrypt/decrypt arbitrary-length data."""

    def __init__(self, key: bytes, iv: bytes) -> None:
        if len(iv) != 16:
            raise CryptoError(f"CFB IV must be 16 bytes, got {len(iv)}")
        self._aes = AES(key)
        self._register = bytes(iv)
        self._keystream = b""  # unused keystream bytes from the last block

    def encrypt(self, data: bytes) -> bytes:
        out = bytearray()
        for byte in data:
            if not self._keystream:
                self._keystream = self._aes.encrypt_block(self._register)
                self._register = b""
            cipher_byte = byte ^ self._keystream[0]
            self._keystream = self._keystream[1:]
            self._register += bytes([cipher_byte])
            out.append(cipher_byte)
        return bytes(out)

    def decrypt(self, data: bytes) -> bytes:
        out = bytearray()
        for byte in data:
            if not self._keystream:
                self._keystream = self._aes.encrypt_block(self._register)
                self._register = b""
            plain_byte = byte ^ self._keystream[0]
            self._keystream = self._keystream[1:]
            self._register += bytes([byte])
            out.append(plain_byte)
        return bytes(out)


class CtrCipher:
    """CTR mode keystream cipher (encrypt == decrypt)."""

    def __init__(self, key: bytes, nonce: bytes) -> None:
        if len(nonce) != 16:
            raise CryptoError(f"CTR nonce must be 16 bytes, got {len(nonce)}")
        self._aes = AES(key)
        self._counter = int.from_bytes(nonce, "big")
        self._keystream = b""

    def process(self, data: bytes) -> bytes:
        out = bytearray()
        for byte in data:
            if not self._keystream:
                block = self._counter.to_bytes(16, "big")
                self._keystream = self._aes.encrypt_block(block)
                self._counter = (self._counter + 1) % (1 << 128)
            out.append(byte ^ self._keystream[0])
            self._keystream = self._keystream[1:]
        return bytes(out)

    encrypt = process
    decrypt = process


def _pkcs7_pad(data: bytes) -> bytes:
    pad = 16 - (len(data) % 16)
    return data + bytes([pad]) * pad


def _pkcs7_unpad(data: bytes) -> bytes:
    if not data or len(data) % 16:
        raise CryptoError("invalid padded length")
    pad = data[-1]
    if not 1 <= pad <= 16 or data[-pad:] != bytes([pad]) * pad:
        raise CryptoError("invalid PKCS#7 padding")
    return data[:-pad]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """One-shot CBC encryption with PKCS#7 padding."""
    if len(iv) != 16:
        raise CryptoError(f"CBC IV must be 16 bytes, got {len(iv)}")
    aes = AES(key)
    data = _pkcs7_pad(plaintext)
    previous = iv
    out = bytearray()
    for offset in range(0, len(data), 16):
        block = bytes(a ^ b for a, b in zip(data[offset:offset + 16], previous))
        previous = aes.encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """One-shot CBC decryption with PKCS#7 unpadding."""
    if len(iv) != 16:
        raise CryptoError(f"CBC IV must be 16 bytes, got {len(iv)}")
    if len(ciphertext) % 16:
        raise CryptoError("CBC ciphertext length must be a block multiple")
    aes = AES(key)
    previous = iv
    out = bytearray()
    for offset in range(0, len(ciphertext), 16):
        block = ciphertext[offset:offset + 16]
        plain = aes.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, previous))
        previous = block
    return _pkcs7_unpad(bytes(out))
