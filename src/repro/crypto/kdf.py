"""Key derivation: OpenSSL's EVP_BytesToKey, as used by Shadowsocks.

Classic Shadowsocks derives the AES key from the user password with
``EVP_BytesToKey(MD5, no salt)``; the IV is random per connection.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac


def evp_bytes_to_key(password: bytes, key_length: int) -> bytes:
    """OpenSSL EVP_BytesToKey with MD5 and no salt."""
    derived = b""
    previous = b""
    while len(derived) < key_length:
        previous = hashlib.md5(previous + password).digest()
        derived += previous
    return derived[:key_length]


def hkdf_like(secret: bytes, info: bytes, length: int) -> bytes:
    """A simple HMAC-SHA256 expand step (HKDF-Expand shape)."""
    out = b""
    block = b""
    counter = 1
    while len(out) < length:
        block = _hmac.new(secret, block + info + bytes([counter]),
                          hashlib.sha256).digest()
        out += block
        counter += 1
    return out[:length]


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Convenience wrapper over :mod:`hmac`."""
    return _hmac.new(key, message, hashlib.sha256).digest()
