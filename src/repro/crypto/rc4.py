"""RC4 stream cipher (legacy; some 2012-era Shadowsocks deployments
used ``rc4-md5``).  Included for the cipher-suite ablation bench."""

from __future__ import annotations

from ..errors import CryptoError


class RC4:
    """Stateful RC4 keystream (encrypt == decrypt)."""

    def __init__(self, key: bytes) -> None:
        if not 1 <= len(key) <= 256:
            raise CryptoError(f"RC4 key must be 1..256 bytes, got {len(key)}")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) % 256
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def process(self, data: bytes) -> bytes:
        state, i, j = self._state, self._i, self._j
        out = bytearray()
        for byte in data:
            i = (i + 1) % 256
            j = (j + state[i]) % 256
            state[i], state[j] = state[j], state[i]
            out.append(byte ^ state[(state[i] + state[j]) % 256])
        self._i, self._j = i, j
        return bytes(out)

    encrypt = process
    decrypt = process
