"""Pure-Python crypto substrate: AES, CFB/CTR/CBC, RC4, KDFs, entropy.

Educational implementations — adequate for the reproduction's loopback
proxies, never for protecting real traffic.
"""

from .aes import AES
from .entropy import looks_like_ciphertext, shannon_entropy
from .kdf import evp_bytes_to_key, hkdf_like, hmac_sha256
from .modes import CfbCipher, CtrCipher, cbc_decrypt, cbc_encrypt
from .rc4 import RC4

__all__ = [
    "AES",
    "CfbCipher",
    "CtrCipher",
    "RC4",
    "cbc_decrypt",
    "cbc_encrypt",
    "evp_bytes_to_key",
    "hkdf_like",
    "hmac_sha256",
    "looks_like_ciphertext",
    "shannon_entropy",
]
