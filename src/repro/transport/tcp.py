"""A packet-level TCP model.

Faithful enough that the paper's mechanisms emerge:

* 3-way handshake with SYN retransmission (exponential backoff) — the
  GFW's SYN-eating and RST injection manifest as connect latency or
  :class:`~repro.errors.ConnectionReset`.
* Sliding-window transfer with slow start / AIMD congestion avoidance,
  RFC 6298-style RTO estimation, timeout retransmission, and
  triple-duplicate-ACK fast retransmit — random loss inflates transfer
  time the way it does for real flows, which is how GFW-added loss
  turns into the paper's PLT differences.
* Application *messages*: the app enqueues (length, meta) payloads;
  the receiver gets each meta back once all its bytes arrive in order.
  This gives byte-accurate traffic accounting without simulating
  payload bytes.

* Delayed ACKs (RFC 1122): ack every second segment or within 40 ms,
  with immediate ACKs on out-of-order data so fast retransmit works.

The model deliberately omits: SACK, window scaling (windows here are
already in segments), and Nagle.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..errors import (
    ConnectionReset,
    ConnectionTimeout,
    TransportError,
)
from ..net import IP_HEADER, MSS, TCP_HEADER, IPv4Address, Packet, WireFeatures
from ..sim import Event, Simulator, Store

if t.TYPE_CHECKING:  # pragma: no cover
    from .sockets import TransportLayer

#: Handshake segment size (IP + TCP with options).
SYN_SIZE = IP_HEADER + TCP_HEADER + 12
#: Pure-ACK segment size.
ACK_SIZE = IP_HEADER + TCP_HEADER
#: Initial congestion window in segments (RFC 6928).
INITIAL_CWND = 10
#: Initial retransmission timeout (RFC 6298).
INITIAL_RTO = 1.0
#: Floor for the computed RTO.
MIN_RTO = 0.2
#: Ceiling for backed-off RTOs.
MAX_RTO = 30.0
#: SYN retry limit before the connect attempt fails.
SYN_RETRIES = 6
#: FIN retransmissions before giving up on confirming EOF delivery.
FIN_RETRIES = 6


@dataclass
class Message:
    """An application payload: ``length`` bytes plus opaque ``meta``."""

    length: int
    meta: t.Any = None
    features: t.Optional[WireFeatures] = None


@dataclass
class Segment:
    """TCP segment carried as a packet payload."""

    sport: int
    dport: int
    seq: int
    ack: int
    flags: t.FrozenSet[str]
    length: int = 0
    # (end_offset, meta) pairs for app messages ending inside this segment.
    message_ends: t.Tuple[t.Tuple[int, t.Any], ...] = ()

    def wire_size(self) -> int:
        return IP_HEADER + TCP_HEADER + self.length


class _SendBuffer:
    """Outgoing byte stream with message boundaries."""

    def __init__(self) -> None:
        self.length = 0  # total bytes ever enqueued
        self._boundaries: t.List[t.Tuple[int, t.Any]] = []  # (end_offset, meta)
        self._features: t.List[t.Tuple[int, WireFeatures]] = []

    def enqueue(self, message: Message) -> None:
        self.length += message.length
        self._boundaries.append((self.length, message.meta))
        if message.features is not None:
            self._features.append((self.length, message.features))

    def ends_in(self, start: int, end: int) -> t.Tuple[t.Tuple[int, t.Any], ...]:
        return tuple((off, meta) for off, meta in self._boundaries
                     if start < off <= end)

    def features_for(self, start: int) -> t.Optional[WireFeatures]:
        for end_offset, features in self._features:
            if start < end_offset:
                return features
        return None

    def skip(self, length: int) -> None:
        """Account ``length`` bytes carried out-of-band (fluid fast path).

        No boundary is recorded: the fluid path delivers the message
        meta directly, so the packet machinery must never see it.
        """
        self.length += length


@dataclass
class _InFlight:
    segment: Segment
    sent_at: float
    retransmitted: bool = False


class TcpConnection:
    """One endpoint of an established (or establishing) TCP connection."""

    # Connection states.
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    CLOSED = "CLOSED"
    RESET = "RESET"

    def __init__(
        self,
        transport: "TransportLayer",
        local_addr: IPv4Address,
        local_port: int,
        remote_addr: IPv4Address,
        remote_port: int,
        features: t.Optional[WireFeatures] = None,
    ) -> None:
        self.transport = transport
        self.sim: Simulator = transport.sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        #: Default wire features for data segments of this connection.
        self.features = features or WireFeatures()
        self.state = self.CLOSED

        # Sender state.
        self._send_buffer = _SendBuffer()
        self._snd_una = 0      # oldest unacknowledged byte
        self._snd_nxt = 0      # next byte to send
        self._cwnd = float(INITIAL_CWND)      # in segments
        self._ssthresh = 64.0
        self._dup_acks = 0
        self._in_flight: t.Dict[int, _InFlight] = {}  # keyed by seq

        # RTO estimation (RFC 6298).
        self._srtt: t.Optional[float] = None
        self._rttvar = 0.0
        self._rto = INITIAL_RTO
        self._rto_timer_version = 0
        self._syn_sent_at = 0.0
        self._syn_tries = 0
        self._connect_event: t.Optional[Event] = None

        # Receiver state.
        self._rcv_nxt = 0
        self._ooo: t.Dict[int, Segment] = {}     # out-of-order segments by seq
        self._pending_ends: t.List[t.Tuple[int, t.Any]] = []
        self._inbox: Store = Store(self.sim)
        self._peer_closed = False
        # Orderly-close state: the FIN occupies one sequence number and
        # is retransmitted until the peer acknowledges it — a single
        # lost FIN must not strand a reader waiting for EOF forever.
        self._fin_seq: t.Optional[int] = None
        self._fin_acked = False
        self._fin_tries = 0
        # Delayed-ACK state (RFC 1122: ack at least every 2nd segment
        # or within 40 ms).
        self._unacked_segments = 0
        self._delack_version = 0

        # Accounting.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.retransmissions = 0

        # Fluid fast-path state (see repro.perf.fluid); inert in packet
        # mode — nothing below is touched unless sim.fluid is installed.
        self._fluid_horizon = 0.0       # latest scheduled fluid delivery
        self._fluid_pending = 0         # bytes in fluid flight
        self._fluid_block = 0           # packets_sent gate after de-fluidization
        self._fluid_epoch: t.Optional[int] = None
        self._fluid_peer: t.Optional["TcpConnection"] = None
        self._fluid_path: t.Optional[t.Any] = None

    # -- public API --------------------------------------------------------------

    @property
    def flow(self) -> t.Tuple[t.Any, ...]:
        return ("tcp", str(self.local_addr), self.local_port,
                str(self.remote_addr), self.remote_port)

    def send_message(self, length: int, meta: t.Any = None,
                     features: t.Optional[WireFeatures] = None) -> None:
        """Enqueue an application message for transmission."""
        if self.state == self.RESET:
            raise ConnectionReset(f"{self.flow}: connection was reset")
        if length <= 0:
            raise TransportError(f"message length must be positive: {length}")
        fluid = self.sim.fluid
        if fluid is not None and fluid.try_transfer(self, length, meta, features):
            return
        self._send_buffer.enqueue(Message(length, meta, features))
        self._pump()

    def recv_message(self) -> Event:
        """Event that fires with the next (length, meta) delivered in order.

        Fails with :class:`ConnectionReset` if the connection is reset
        while waiting; fires with ``None`` on orderly close (EOF).
        """
        if self.state == self.RESET:
            failed = self.sim.event()
            failed.fail(ConnectionReset(f"{self.flow}: connection was reset"))
            return failed
        return self._inbox.get()

    def close(self) -> None:
        """Orderly close (modeled as a FIN that delivers EOF at the peer)."""
        if self.state in (self.CLOSED, self.RESET):
            return
        self.state = self.CLOSED
        # A fluid delivery still in flight must reach the peer before
        # EOF; defer the FIN to the fluid horizon (packet mode: 0.0,
        # so the FIN goes out synchronously as it always did).
        delay = self._fluid_horizon - self.sim.now
        if delay > 0:
            self.sim.schedule(delay, self._emit_fin)
        else:
            self._emit_fin()

    def _emit_fin(self) -> None:
        """Send (or resend) the FIN; rearm until the peer acks it.

        The FIN consumes one sequence number past the data stream, so
        the peer's cumulative ACK of ``_fin_seq + 1`` confirms EOF
        delivery.  Links drop packets; without this a close racing a
        drop leaves the peer blocked on ``recv_message`` forever.
        """
        if self.state != self.CLOSED or self._fin_acked:
            return  # reset in the meantime, or EOF already confirmed
        if self._fin_tries >= FIN_RETRIES:
            return  # peer unreachable; give up like a real stack
        if self._fin_seq is None:
            self._fin_seq = self._snd_nxt
        self._fin_tries += 1
        if self._fin_tries > 1:
            self.retransmissions += 1
        fin = Segment(self.local_port, self.remote_port,
                      seq=self._fin_seq, ack=self._rcv_nxt,
                      flags=frozenset({"FIN", "ACK"}))
        self._emit(fin, ACK_SIZE, self.features)
        backoff = min(self._rto * (2 ** (self._fin_tries - 1)), MAX_RTO)
        self.sim.schedule(backoff, self._emit_fin)

    def abort(self) -> None:
        """Send a RST and tear down immediately."""
        if self.state == self.RESET:
            return
        rst = Segment(self.local_port, self.remote_port,
                      seq=self._snd_nxt, ack=self._rcv_nxt,
                      flags=frozenset({"RST"}))
        self._emit(rst, ACK_SIZE, self.features)
        self._enter_reset(local=True)

    # -- connection establishment ---------------------------------------------------

    def start_connect(self, timeout: t.Optional[float] = None) -> Event:
        """Client side: send SYN; event fires with self when established."""
        if self.state != self.CLOSED:
            raise TransportError(f"connect() in state {self.state}")
        self.state = self.SYN_SENT
        self._connect_event = self.sim.event()
        self._send_syn()
        if timeout is not None:
            deadline = self.sim.timeout(timeout)
            connect_event = self._connect_event

            def on_deadline(_event: Event) -> None:
                if not connect_event.triggered:
                    self.state = self.CLOSED
                    connect_event.fail(ConnectionTimeout(
                        f"connect to {self.remote_addr}:{self.remote_port} timed out"))
            deadline.add_callback(on_deadline)
        return self._connect_event

    def _send_syn(self) -> None:
        self._syn_tries += 1
        self._syn_sent_at = self.sim.now
        syn = Segment(self.local_port, self.remote_port, seq=0, ack=0,
                      flags=frozenset({"SYN"}))
        self._emit(syn, SYN_SIZE,
                   WireFeatures(protocol_tag=self.features.protocol_tag,
                                sni=self.features.sni, handshake=True,
                                entropy=0.5))
        backoff = INITIAL_RTO * (2 ** (self._syn_tries - 1))
        version = self._bump_timer()
        self.sim.schedule(backoff, lambda: self._on_syn_timer(version))

    def _on_syn_timer(self, version: int) -> None:
        if version != self._rto_timer_version or self.state != self.SYN_SENT:
            return
        if self._syn_tries >= SYN_RETRIES:
            self.state = self.CLOSED
            if self._connect_event and not self._connect_event.triggered:
                self._connect_event.fail(ConnectionTimeout(
                    f"SYN retries exhausted to {self.remote_addr}:{self.remote_port}"))
            return
        self.retransmissions += 1
        self._send_syn()

    def accept_from_syn(self) -> None:
        """Server side: a SYN arrived; reply SYN+ACK."""
        self.state = self.SYN_RCVD
        synack = Segment(self.local_port, self.remote_port, seq=0, ack=0,
                         flags=frozenset({"SYN", "ACK"}))
        self._emit(synack, SYN_SIZE,
                   WireFeatures(protocol_tag=self.features.protocol_tag,
                                handshake=True, entropy=0.5))

    # -- segment processing ------------------------------------------------------------

    def handle_segment(self, segment: Segment) -> None:
        """Demuxed inbound segment for this connection."""
        if "RST" in segment.flags:
            self._enter_reset(local=False)
            return
        if self.state == self.SYN_SENT:
            if segment.flags >= {"SYN", "ACK"}:
                self._establish_client(segment)
            return
        if self.state == self.SYN_RCVD:
            if "ACK" in segment.flags and "SYN" not in segment.flags:
                self.state = self.ESTABLISHED
                self.transport._on_established(self)
            # fall through: the ACK may carry data
        if "SYN" in segment.flags:
            # Duplicate SYN/SYN+ACK (retransmission); re-ack politely.
            if self.state == self.SYN_RCVD:
                self.accept_from_syn()
            elif self.state == self.ESTABLISHED and "ACK" in segment.flags:
                self._send_ack()
            return
        if "ACK" in segment.flags:
            self._process_ack(segment.ack)
        if segment.length > 0:
            self._process_data(segment)
        if "FIN" in segment.flags:
            if not self._peer_closed:
                self._peer_closed = True
                self._inbox.put(None)  # EOF
            if segment.seq <= self._rcv_nxt:
                # Everything before the FIN has arrived: acknowledge the
                # FIN itself (cumulative ack past it) so the closer can
                # stop retransmitting.  Re-acking duplicates covers a
                # lost FIN-ack.
                fin_ack = Segment(self.local_port, self.remote_port,
                                  seq=self._snd_nxt, ack=segment.seq + 1,
                                  flags=frozenset({"ACK"}))
                self._emit(fin_ack, ACK_SIZE, self.features)

    def _establish_client(self, segment: Segment) -> None:
        self.state = self.ESTABLISHED
        sample = self.sim.now - self._syn_sent_at
        if self._syn_tries == 1:  # Karn's rule: only unambiguous samples
            self._update_rtt(sample)
        self._bump_timer()
        self._send_ack()
        if self._connect_event and not self._connect_event.triggered:
            self._connect_event.succeed(self)
        self._pump()

    # -- sender machinery -----------------------------------------------------------------

    def _pump(self) -> None:
        """Send as much buffered data as the congestion window allows."""
        if self.state != self.ESTABLISHED:
            return
        window_bytes = int(self._cwnd) * MSS
        while (self._snd_nxt < self._send_buffer.length
               and self._snd_nxt - self._snd_una < window_bytes):
            chunk = min(MSS,
                        self._send_buffer.length - self._snd_nxt,
                        window_bytes - (self._snd_nxt - self._snd_una))
            self._transmit_range(self._snd_nxt, chunk, retransmission=False)
            self._snd_nxt += chunk

    def _transmit_range(self, start: int, length: int, retransmission: bool) -> None:
        segment = Segment(
            self.local_port, self.remote_port,
            seq=start, ack=self._rcv_nxt,
            flags=frozenset({"ACK"}),
            length=length,
            message_ends=self._send_buffer.ends_in(start, start + length),
        )
        features = self._send_buffer.features_for(start) or self.features
        if not retransmission:
            self._in_flight[start] = _InFlight(segment, self.sim.now)
        else:
            entry = self._in_flight.get(start)
            if entry is not None:
                entry.retransmitted = True
                entry.sent_at = self.sim.now
            self.retransmissions += 1
        self._emit(segment, segment.wire_size(), features)
        self._arm_rto()

    def _process_ack(self, ack: int) -> None:
        if self._fin_seq is not None and ack > self._fin_seq:
            self._fin_acked = True  # EOF confirmed delivered
        if ack > self._snd_una:
            # New data acknowledged.
            newly_acked = [seq for seq in self._in_flight if seq + self._in_flight[seq].segment.length <= ack]
            samples = []
            for seq in newly_acked:
                entry = self._in_flight.pop(seq)
                if not entry.retransmitted:
                    samples.append(self.sim.now - entry.sent_at)
                # Congestion window growth.
                if self._cwnd < self._ssthresh:
                    self._cwnd += 1.0                      # slow start
                else:
                    self._cwnd += 1.0 / self._cwnd         # congestion avoidance
            if samples:
                # A cumulative ACK delayed by loss recovery would yield
                # wildly inflated samples for the older segments it
                # covers; the youngest segment (minimum sample) is the
                # honest path-RTT measurement, akin to what TCP
                # timestamps give real stacks.
                self._update_rtt(min(samples))
            self._snd_una = ack
            self._dup_acks = 0
            # Forward progress cancels exponential RTO backoff (RFC 6298
            # §5.7 behaviour): re-derive the timeout from the estimator.
            if self._srtt is not None:
                self._rto = min(MAX_RTO, max(MIN_RTO, self._srtt + 4.0 * self._rttvar))
            else:
                self._rto = INITIAL_RTO
            self._arm_rto()
            self._pump()
        elif ack == self._snd_una and self._snd_nxt > self._snd_una:
            self._dup_acks += 1
            if self._dup_acks == 3:
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        entry = self._in_flight.get(self._snd_una)
        if entry is None:
            return
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = self._ssthresh
        self._transmit_range(self._snd_una, entry.segment.length, retransmission=True)

    def _arm_rto(self) -> None:
        version = self._bump_timer()
        if not self._in_flight:
            return
        self.sim.schedule(self._rto, lambda: self._on_rto(version))

    def _on_rto(self, version: int) -> None:
        if version != self._rto_timer_version or not self._in_flight:
            return
        if self.state != self.ESTABLISHED:
            return
        # Timeout: multiplicative backoff, shrink to one segment.
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = 1.0
        self._rto = min(self._rto * 2.0, MAX_RTO)
        oldest = min(self._in_flight)
        self._transmit_range(oldest, self._in_flight[oldest].segment.length,
                             retransmission=True)

    def _bump_timer(self) -> int:
        self._rto_timer_version += 1
        return self._rto_timer_version

    def _update_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = min(MAX_RTO, max(MIN_RTO, self._srtt + 4.0 * self._rttvar))

    # -- receiver machinery ------------------------------------------------------------------

    def _process_data(self, segment: Segment) -> None:
        if segment.seq > self._rcv_nxt:
            # Out of order: buffer and send an immediate duplicate ACK
            # (required for the sender's fast retransmit).
            self._ooo[segment.seq] = segment
            self._send_ack()
            return
        if segment.seq + segment.length <= self._rcv_nxt:
            # Pure duplicate: re-ack immediately.
            self._send_ack()
            return
        delivered_message = self._admit(segment)
        # Drain any now-contiguous buffered segments.
        filled_hole = False
        while self._rcv_nxt in self._ooo:
            delivered_message |= self._admit(self._ooo.pop(self._rcv_nxt))
            filled_hole = True
        # Delayed ACK: ack at once on every 2nd segment, when a hole was
        # just filled, or when an app message completed (push); else arm
        # a 40 ms timer.
        self._unacked_segments += 1
        if self._unacked_segments >= 2 or filled_hole or delivered_message:
            self._send_ack()
        else:
            self._delack_version += 1
            version = self._delack_version
            self.sim.schedule(0.04, lambda: self._on_delack_timer(version))

    def _on_delack_timer(self, version: int) -> None:
        if version != self._delack_version or self._unacked_segments == 0:
            return
        self._send_ack()

    def _admit(self, segment: Segment) -> bool:
        """Accept in-order data; True if an app message completed."""
        end = segment.seq + segment.length
        advance = end - self._rcv_nxt
        self.bytes_received += advance
        self._rcv_nxt = end
        self._pending_ends.extend(segment.message_ends)
        self._pending_ends.sort(key=lambda pair: pair[0])
        delivered = False
        while self._pending_ends and self._pending_ends[0][0] <= self._rcv_nxt:
            end_offset, meta = self._pending_ends.pop(0)
            self._inbox.put(meta)
            delivered = True
        return delivered

    def _send_ack(self) -> None:
        self._unacked_segments = 0
        self._delack_version += 1
        ack = Segment(self.local_port, self.remote_port,
                      seq=self._snd_nxt, ack=self._rcv_nxt,
                      flags=frozenset({"ACK"}))
        self._emit(ack, ACK_SIZE, self.features)

    # -- plumbing ---------------------------------------------------------------------------

    def _emit(self, segment: Segment, size: int, features: WireFeatures) -> None:
        self.packets_sent += 1
        self.bytes_sent += size
        packet = Packet(
            src=self.local_addr, dst=self.remote_addr,
            protocol="tcp", payload=segment, size=size,
            features=features, flow=self.flow)
        self.transport.host.send(packet)

    def _enter_reset(self, local: bool) -> None:
        self.state = self.RESET
        fluid = self.sim.fluid
        if fluid is not None:
            fluid.on_reset(self)
        self.transport._forget(self)
        error = ConnectionReset(
            f"{self.flow}: reset {'locally' if local else 'by peer or on-path injection'}")
        if self._connect_event and not self._connect_event.triggered:
            self._connect_event.fail(error)
        # Fail all blocked receivers.
        while self._inbox._getters:
            getter = self._inbox._getters.popleft()
            getter.fail(ConnectionReset(str(error)))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TcpConnection {self.local_addr}:{self.local_port}"
                f"->{self.remote_addr}:{self.remote_port} {self.state}>")
