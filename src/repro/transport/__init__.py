"""Simulated transport layer: TCP, UDP, ICMP ping, and simplified TLS."""

from .sockets import (
    Acceptor,
    Datagram,
    PING_SIZE,
    TransportLayer,
    UdpHandler,
    install_transport,
)
from .tcp import (
    ACK_SIZE,
    INITIAL_CWND,
    INITIAL_RTO,
    Message,
    Segment,
    SYN_SIZE,
    TcpConnection,
)
from .tls import (
    RECORD_OVERHEAD,
    TlsSession,
    app_features,
    handshake_features,
)

__all__ = [
    "ACK_SIZE",
    "Acceptor",
    "Datagram",
    "INITIAL_CWND",
    "INITIAL_RTO",
    "Message",
    "PING_SIZE",
    "RECORD_OVERHEAD",
    "SYN_SIZE",
    "Segment",
    "TcpConnection",
    "TlsSession",
    "TransportLayer",
    "UdpHandler",
    "app_features",
    "handshake_features",
    "install_transport",
]
