"""A simplified TLS 1.2 layer over a :class:`TcpConnection`.

Models exactly what matters for this reproduction:

* handshake round trips (2-RTT full, 1-RTT abbreviated/resumed) and
  handshake byte volumes — these feed page-load time;
* the cleartext ClientHello SNI — the observable the GFW's SNI filter
  keys on;
* per-record byte overhead — this feeds the Figure 6a traffic
  accounting;
* ciphertext wire features (high entropy, ``tls`` framing) — what DPI
  sees for HTTPS flows.

No actual key exchange is performed here; real cryptography lives in
``repro.crypto`` and is used by the protocols that need real bytes
(Shadowsocks framing, ScholarCloud blinding, the asyncio proxies).
"""

from __future__ import annotations

import typing as t

from ..errors import TransportError
from ..net import WireFeatures
from .tcp import TcpConnection

#: Per-record overhead: 5-byte header + ~24 bytes MAC/padding (CBC-era).
RECORD_OVERHEAD = 29
#: Handshake message sizes, bytes (typical 2017-era RSA/ECDHE exchange).
CLIENT_HELLO = 289
SERVER_HELLO_WITH_CERT = 2100
CLIENT_KEY_EXCHANGE_FINISHED = 126
SERVER_FINISHED = 51
ABBREVIATED_SERVER_HELLO = 110


def handshake_features(sni: t.Optional[str]) -> WireFeatures:
    """Wire features of a ClientHello: parseable TLS, SNI in the clear."""
    return WireFeatures(
        protocol_tag="tls", sni=sni, entropy=5.5, handshake=True,
        length_signature=CLIENT_HELLO)


def app_features() -> WireFeatures:
    """Wire features of TLS application records: opaque but framed."""
    return WireFeatures(protocol_tag="tls", sni=None, entropy=7.95)


class TlsSession:
    """One side of a TLS session bound to an established connection."""

    def __init__(self, conn: TcpConnection, sni: t.Optional[str] = None) -> None:
        self.conn = conn
        self.sni = sni
        self.established = False
        self.resumed = False
        self.handshake_bytes = 0

    # -- handshakes (generator processes) ------------------------------------------

    def client_handshake(self, resumed: bool = False):
        """Run the client side; yields inside a simulation process."""
        self.resumed = resumed
        self.conn.send_message(
            CLIENT_HELLO, meta=("tls", "client-hello", self.sni, resumed),
            features=handshake_features(self.sni))
        self.handshake_bytes += CLIENT_HELLO
        reply = yield self.conn.recv_message()
        if not (isinstance(reply, tuple) and reply[0] == "tls"):
            raise TransportError(f"unexpected TLS handshake reply: {reply!r}")
        if resumed:
            # Abbreviated: ServerHello+Finished came in one flight; we
            # answer with Finished and may immediately send data.
            self.conn.send_message(
                CLIENT_KEY_EXCHANGE_FINISHED, meta=("tls", "client-finished"),
                features=WireFeatures(protocol_tag="tls", handshake=True, entropy=7.0))
            self.handshake_bytes += CLIENT_KEY_EXCHANGE_FINISHED
            self.established = True
            return self
        self.conn.send_message(
            CLIENT_KEY_EXCHANGE_FINISHED, meta=("tls", "client-finished"),
            features=WireFeatures(protocol_tag="tls", handshake=True, entropy=7.0))
        self.handshake_bytes += CLIENT_KEY_EXCHANGE_FINISHED
        finished = yield self.conn.recv_message()
        if not (isinstance(finished, tuple) and finished[:2] == ("tls", "server-finished")):
            raise TransportError(f"unexpected TLS finished message: {finished!r}")
        self.established = True
        return self

    def server_handshake(self):
        """Run the server side; yields inside a simulation process."""
        hello = yield self.conn.recv_message()
        if not (isinstance(hello, tuple) and hello[:2] == ("tls", "client-hello")):
            raise TransportError(f"expected ClientHello, got {hello!r}")
        self.sni = hello[2]
        resumed = bool(hello[3])
        self.resumed = resumed
        if resumed:
            self.conn.send_message(
                ABBREVIATED_SERVER_HELLO,
                meta=("tls", "server-hello-abbreviated"),
                features=WireFeatures(protocol_tag="tls", handshake=True, entropy=6.0))
            self.handshake_bytes += ABBREVIATED_SERVER_HELLO
            finished = yield self.conn.recv_message()
            if not (isinstance(finished, tuple) and finished[1] == "client-finished"):
                raise TransportError(f"expected Finished, got {finished!r}")
            self.established = True
            return self
        self.conn.send_message(
            SERVER_HELLO_WITH_CERT, meta=("tls", "server-hello"),
            features=WireFeatures(protocol_tag="tls", handshake=True, entropy=6.0))
        self.handshake_bytes += SERVER_HELLO_WITH_CERT
        finished = yield self.conn.recv_message()
        if not (isinstance(finished, tuple) and finished[1] == "client-finished"):
            raise TransportError(f"expected Finished, got {finished!r}")
        self.conn.send_message(
            SERVER_FINISHED, meta=("tls", "server-finished"),
            features=WireFeatures(protocol_tag="tls", handshake=True, entropy=7.0))
        self.handshake_bytes += SERVER_FINISHED
        self.established = True
        return self

    # -- application data -------------------------------------------------------------

    def send(self, length: int, meta: t.Any = None) -> None:
        """Send ``length`` application bytes inside TLS records."""
        if not self.established:
            raise TransportError("TLS session not established")
        records = max(1, (length + 16383) // 16384)
        self.conn.send_message(
            length + records * RECORD_OVERHEAD,
            meta=("tls-app", meta), features=app_features())

    def recv(self):
        """Event firing with the peer's application meta (unwrapped)."""
        inner = self.conn.recv_message()
        unwrapped = self.conn.sim.event()

        def on_message(event):
            if not event.ok:
                unwrapped.fail(event.value)
                return
            value = event.value
            if value is None:  # EOF
                unwrapped.succeed(None)
            elif isinstance(value, tuple) and value[0] == "tls-app":
                unwrapped.succeed(value[1])
            else:
                unwrapped.fail(TransportError(f"non-TLS data on TLS session: {value!r}"))
        inner.add_callback(on_message)
        return unwrapped
