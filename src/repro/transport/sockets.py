"""Host transport layer: demux, listeners, connect, UDP, and ping.

Install one :class:`TransportLayer` per :class:`~repro.net.Host`; it
registers itself as ``host.transport`` and demultiplexes inbound
packets to TCP connections, UDP handlers, or ICMP echo logic.
"""

from __future__ import annotations

import itertools
import typing as t

from ..errors import TransportError
from ..net import Host, IP_HEADER, IPv4Address, Packet, WireFeatures
from ..sim import Event, Simulator
from .tcp import ACK_SIZE, Segment, TcpConnection

#: ICMP echo packet size (IP header + ICMP header + payload).
PING_SIZE = IP_HEADER + 8 + 56

#: Signature for TCP accept callbacks.
Acceptor = t.Callable[[TcpConnection], None]
#: Signature for UDP datagram handlers: (payload, size, src, sport).
UdpHandler = t.Callable[[t.Any, int, IPv4Address, int], None]


class Datagram:
    """UDP payload wrapper."""

    __slots__ = ("sport", "dport", "payload", "length")

    def __init__(self, sport: int, dport: int, payload: t.Any, length: int) -> None:
        self.sport = sport
        self.dport = dport
        self.payload = payload
        self.length = length


class _Echo:
    """ICMP echo request/reply payload."""

    __slots__ = ("ident", "is_reply")

    def __init__(self, ident: int, is_reply: bool) -> None:
        self.ident = ident
        self.is_reply = is_reply


class TransportLayer:
    """TCP/UDP/ICMP endpoint logic for one host."""

    def __init__(self, sim: Simulator, host: Host) -> None:
        self.sim = sim
        self.host = host
        host.transport = self
        self._tcp_listeners: t.Dict[int, Acceptor] = {}
        self._connections: t.Dict[t.Tuple[int, str, int], TcpConnection] = {}
        self._udp_handlers: t.Dict[int, UdpHandler] = {}
        self._ephemeral = itertools.count(49152)
        self._echo_waiters: t.Dict[int, t.Tuple[float, Event]] = {}
        self._echo_ids = itertools.count(1)

    # -- TCP -----------------------------------------------------------------------

    def listen_tcp(self, port: int, acceptor: Acceptor) -> None:
        """Accept inbound connections on ``port``."""
        if port in self._tcp_listeners:
            raise TransportError(f"{self.host.name}: port {port} already bound")
        self._tcp_listeners[port] = acceptor

    def close_tcp_listener(self, port: int) -> None:
        self._tcp_listeners.pop(port, None)

    def connect_tcp(
        self,
        remote_addr: t.Union[str, IPv4Address],
        remote_port: int,
        features: t.Optional[WireFeatures] = None,
        timeout: t.Optional[float] = None,
        local_addr: t.Optional[IPv4Address] = None,
    ) -> Event:
        """Open a connection; the event fires with the TcpConnection."""
        remote = IPv4Address(remote_addr)
        local_port = next(self._ephemeral)
        conn = TcpConnection(
            self, local_addr or self.host.address, local_port,
            remote, remote_port, features=features)
        self._connections[(local_port, str(remote), remote_port)] = conn
        return conn.start_connect(timeout=timeout)

    def _on_established(self, conn: TcpConnection) -> None:
        """Server-side connection reached ESTABLISHED: hand to acceptor."""
        acceptor = self._tcp_listeners.get(conn.local_port)
        if acceptor is not None:
            acceptor(conn)

    def _forget(self, conn: TcpConnection) -> None:
        self._connections.pop(
            (conn.local_port, str(conn.remote_addr), conn.remote_port), None)

    # -- crash/restart (fault injection) ------------------------------------------

    def crash(self) -> t.Dict[str, t.Any]:
        """Kill every service on this host, as a process crash would.

        Established connections are aborted (peers see RSTs), listeners
        and UDP handlers vanish (new dials are refused).  Returns the
        snapshot :meth:`restore` needs to model the service restarting.
        """
        snapshot = {
            "tcp_listeners": dict(self._tcp_listeners),
            "udp_handlers": dict(self._udp_handlers),
        }
        for conn in list(self._connections.values()):
            conn.abort()
        self._tcp_listeners.clear()
        self._udp_handlers.clear()
        return snapshot

    def restore(self, snapshot: t.Dict[str, t.Any]) -> None:
        """Re-register the listeners captured by :meth:`crash`."""
        for port, acceptor in snapshot["tcp_listeners"].items():
            if port not in self._tcp_listeners:
                self._tcp_listeners[port] = acceptor
        for port, handler in snapshot["udp_handlers"].items():
            if port not in self._udp_handlers:
                self._udp_handlers[port] = handler

    # -- UDP ------------------------------------------------------------------------

    def listen_udp(self, port: int, handler: UdpHandler) -> None:
        if port in self._udp_handlers:
            raise TransportError(f"{self.host.name}: UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def send_udp(
        self,
        remote_addr: t.Union[str, IPv4Address],
        remote_port: int,
        payload: t.Any,
        length: int,
        sport: t.Optional[int] = None,
        features: t.Optional[WireFeatures] = None,
    ) -> int:
        """Fire-and-forget datagram; returns the source port used."""
        remote = IPv4Address(remote_addr)
        source_port = sport if sport is not None else next(self._ephemeral)
        datagram = Datagram(source_port, remote_port, payload, length)
        packet = Packet(
            src=self.host.address, dst=remote, protocol="udp",
            payload=datagram, size=IP_HEADER + 8 + length,
            features=features or WireFeatures(),
            flow=("udp", str(self.host.address), source_port, str(remote), remote_port))
        self.host.send(packet)
        return source_port

    # -- ICMP ------------------------------------------------------------------------

    def ping(self, remote_addr: t.Union[str, IPv4Address]) -> Event:
        """Echo request; the event fires with the measured RTT in seconds."""
        remote = IPv4Address(remote_addr)
        ident = next(self._echo_ids)
        waiter = self.sim.event()
        self._echo_waiters[ident] = (self.sim.now, waiter)
        packet = Packet(
            src=self.host.address, dst=remote, protocol="icmp",
            payload=_Echo(ident, is_reply=False), size=PING_SIZE,
            flow=("icmp", str(self.host.address), str(remote), ident))
        self.host.send(packet)
        return waiter

    # -- demux -------------------------------------------------------------------------

    def demux(self, packet: Packet) -> None:
        """Entry point from :meth:`repro.net.Host.deliver`."""
        if packet.protocol == "tcp":
            self._demux_tcp(packet)
        elif packet.protocol == "udp":
            self._demux_udp(packet)
        elif packet.protocol == "icmp":
            self._demux_icmp(packet)
        # Unknown protocols are dropped silently, as a real stack would.

    def _demux_tcp(self, packet: Packet) -> None:
        segment: Segment = packet.payload
        key = (segment.dport, str(packet.src), segment.sport)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment)
            return
        if "SYN" in segment.flags and "ACK" not in segment.flags:
            acceptor = self._tcp_listeners.get(segment.dport)
            if acceptor is not None:
                conn = TcpConnection(
                    self, packet.dst, segment.dport,
                    packet.src, segment.sport)
                self._connections[key] = conn
                conn.accept_from_syn()
                return
        if "RST" not in segment.flags:
            self._refuse(packet, segment)

    def _refuse(self, packet: Packet, segment: Segment) -> None:
        """No listener: answer with a RST, as real stacks do."""
        rst = Segment(segment.dport, segment.sport, seq=0, ack=0,
                      flags=frozenset({"RST"}))
        reply = Packet(
            src=packet.dst, dst=packet.src, protocol="tcp",
            payload=rst, size=ACK_SIZE,
            flow=("tcp", str(packet.dst), segment.dport,
                  str(packet.src), segment.sport))
        self.host.send(reply)

    def _demux_udp(self, packet: Packet) -> None:
        datagram: Datagram = packet.payload
        handler = self._udp_handlers.get(datagram.dport)
        if handler is not None:
            handler(datagram.payload, datagram.length, packet.src, datagram.sport)

    def _demux_icmp(self, packet: Packet) -> None:
        echo: _Echo = packet.payload
        if echo.is_reply:
            entry = self._echo_waiters.pop(echo.ident, None)
            if entry is not None:
                sent_at, waiter = entry
                if not waiter.triggered:
                    waiter.succeed(self.sim.now - sent_at)
            return
        reply = Packet(
            src=packet.dst, dst=packet.src, protocol="icmp",
            payload=_Echo(echo.ident, is_reply=True), size=PING_SIZE,
            flow=("icmp", str(packet.dst), str(packet.src), echo.ident))
        self.host.send(reply)


def install_transport(sim: Simulator, host: Host) -> TransportLayer:
    """Create and attach a transport layer to ``host``."""
    return TransportLayer(sim, host)
