"""Origin web server over the simulated stack.

Serves :class:`~repro.http.page.Page` documents and their objects on
ports 80 (plain, answering with an HTTPS redirect for HTTPS-only sites
— the paper's TCP 2) and 443 (TLS).  First-visit requests to pages
that record accounts get ``record_account=True`` in the response,
prompting the browser to open the side-channel connection the paper
labels TCP 4.

Request handling consumes CPU on a processor-sharing core so that
server-side queueing exists (it matters for the proxies in Figure 7;
origin servers get enough capacity not to be the bottleneck).
"""

from __future__ import annotations

import typing as t

from ..errors import ConnectionReset, HttpError
from ..net import Host
from ..sim import ProcessorSharingServer, Simulator
from ..transport import TcpConnection, TlsSession, TransportLayer
from .messages import HttpRequest, HttpResponse
from .page import Page, PageObject

#: CPU work-units consumed per request, plus per response byte.
BASE_REQUEST_DEMAND = 0.0015
PER_BYTE_DEMAND = 2e-8
#: Size of the account-recording response body (TCP 4 payload).
ACCOUNT_RECORD_BODY = 60
#: Path of the account-recording endpoint.
ACCOUNT_RECORD_PATH = "/gen_204"


class WebServer:
    """Serves one or more virtual hosts from a simulated host machine."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        cpu_capacity: float = 8.0,
        https_only: bool = True,
    ) -> None:
        self.sim = sim
        self.host = host
        self.cpu = ProcessorSharingServer(sim, capacity=cpu_capacity,
                                          name=f"{host.name}-cpu")
        self.https_only = https_only
        self._documents: t.Dict[t.Tuple[str, str], Page] = {}
        self._objects: t.Dict[t.Tuple[str, str], PageObject] = {}
        self._hostnames: t.Set[str] = set()
        self.requests_served = 0
        self.accounts_recorded: t.List[t.Tuple[str, str]] = []
        transport = t.cast(TransportLayer, host.transport)
        transport.listen_tcp(80, self._accept_plain)
        transport.listen_tcp(443, self._accept_tls)

    # -- content registration -----------------------------------------------------

    def add_page(self, page: Page) -> None:
        self._hostnames.add(page.host)
        self._documents[(page.host, page.path)] = page
        for obj in page.objects:
            object_host = obj.host or page.host
            self._hostnames.add(object_host)
            self._objects[(object_host, obj.path)] = obj

    def serves(self, hostname: str) -> bool:
        return hostname in self._hostnames

    # -- connection handling --------------------------------------------------------

    def _accept_plain(self, conn: TcpConnection) -> None:
        self.sim.process(self._serve_plain(conn), name="http-plain")

    def _accept_tls(self, conn: TcpConnection) -> None:
        self.sim.process(self._serve_tls(conn), name="http-tls")

    def _serve_plain(self, conn: TcpConnection):
        try:
            while True:
                request = yield conn.recv_message()
                if request is None:
                    return
                if not isinstance(request, HttpRequest):
                    raise HttpError(f"unexpected payload on port 80: {request!r}")
                response = self._redirect_or_serve_plain(request)
                yield self.cpu.submit(BASE_REQUEST_DEMAND)
                conn.send_message(response.size(), meta=response)
        except ConnectionReset:
            return

    def _serve_tls(self, conn: TcpConnection):
        session = TlsSession(conn)
        try:
            yield from session.server_handshake()
            while True:
                request = yield session.recv()
                if request is None:
                    return
                if not isinstance(request, HttpRequest):
                    raise HttpError(f"unexpected payload on port 443: {request!r}")
                response = self._respond(request)
                yield self.cpu.submit(
                    BASE_REQUEST_DEMAND + PER_BYTE_DEMAND * response.body_size)
                session.send(response.size(), meta=response)
        except ConnectionReset:
            return

    # -- request logic ------------------------------------------------------------------

    def _redirect_or_serve_plain(self, request: HttpRequest) -> HttpResponse:
        if self.https_only and request.host in self._hostnames:
            return HttpResponse(
                status=301, path=request.path, body_size=220, cacheable=False,
                redirect_to=request.path, redirect_scheme="https")
        return self._respond(request)

    def _respond(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        if request.path == ACCOUNT_RECORD_PATH:
            self.accounts_recorded.append((request.host, request.path))
            return HttpResponse(status=204, path=request.path,
                                body_size=ACCOUNT_RECORD_BODY, cacheable=False)
        page = self._documents.get((request.host, request.path))
        if page is not None:
            return HttpResponse(
                status=200, path=request.path, body_size=page.document_size,
                cacheable=page.document_cacheable,
                record_account=page.records_account and request.first_visit)
        obj = self._objects.get((request.host, request.path))
        if obj is not None:
            return HttpResponse(status=200, path=request.path,
                                body_size=obj.size, cacheable=obj.cacheable)
        return HttpResponse(status=404, path=request.path,
                            body_size=300, cacheable=False)
