"""Client-side streams and connectors.

A :class:`Stream` is the browser's view of one open connection: send a
message, await a reply, close.  A :class:`Connector` knows how to
produce a stream to a named origin — directly (:class:`DirectConnector`)
or through some circumvention middleware (each access method in
``repro.middleware``/``repro.core`` ships its own connector).  The
browser is agnostic: it speaks to whatever stream it is handed, so
every access method is measured by identical browser logic.
"""

from __future__ import annotations

import typing as t

from ..dns import StubResolver
from ..errors import HttpError
from ..net import WireFeatures
from ..sim import Event, Simulator
from ..transport import TcpConnection, TlsSession, TransportLayer
from .messages import HttpRequest


class Stream:
    """Duplex message stream; concrete transports subclass this."""

    def send(self, length: int, meta: t.Any) -> None:
        raise NotImplementedError

    def recv(self) -> Event:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        return True


class TcpStream(Stream):
    """Plain-HTTP stream over a TcpConnection; payloads are visible."""

    def __init__(self, conn: TcpConnection, hostname: str) -> None:
        self.conn = conn
        self.hostname = hostname

    def send(self, length: int, meta: t.Any) -> None:
        plaintext = self.hostname
        if isinstance(meta, HttpRequest):
            plaintext = meta.url
        self.conn.send_message(
            length, meta=meta,
            features=WireFeatures(protocol_tag="plain-http",
                                  plaintext=plaintext, entropy=4.5))

    def recv(self) -> Event:
        return self.conn.recv_message()

    def close(self) -> None:
        self.conn.close()

    @property
    def alive(self) -> bool:
        return self.conn.state == TcpConnection.ESTABLISHED


class TlsStream(Stream):
    """HTTPS stream over an established TlsSession."""

    def __init__(self, session: TlsSession) -> None:
        self.session = session

    def send(self, length: int, meta: t.Any) -> None:
        self.session.send(length, meta=meta)

    def recv(self) -> Event:
        return self.session.recv()

    def close(self) -> None:
        self.session.conn.close()

    @property
    def alive(self) -> bool:
        return self.session.conn.state == TcpConnection.ESTABLISHED


class Connector:
    """Produces streams toward named origins."""

    #: Human-readable name used in reports.
    name = "abstract"
    #: Whether :meth:`open` accepts a ``deadline`` keyword (an
    #: :class:`~repro.overload.Deadline`) and propagates it on the wire.
    #: Browsers only pass one when the connector opts in, so legacy
    #: connectors keep their exact signatures.
    supports_deadline = False

    def open(self, hostname: str, port: int, use_tls: bool):
        """Generator process returning a :class:`Stream`."""
        raise NotImplementedError
        yield  # pragma: no cover


class DirectConnector(Connector):
    """Resolve with the local stub resolver and connect directly."""

    name = "direct"

    def __init__(self, sim: Simulator, transport: TransportLayer,
                 resolver: StubResolver) -> None:
        self.sim = sim
        self.transport = transport
        self.resolver = resolver
        #: Hosts we already hold a TLS session ticket for (resumption).
        self.session_tickets: t.Set[str] = set()
        self.connections_opened = 0

    def open(self, hostname: str, port: int, use_tls: bool):
        address = yield self.resolver.resolve(hostname)
        features = (
            WireFeatures(protocol_tag="tls", sni=hostname, entropy=7.9)
            if use_tls else
            WireFeatures(protocol_tag="plain-http", plaintext=hostname,
                         entropy=4.5))
        conn = yield self.transport.connect_tcp(
            address, port, features=features, timeout=30.0)
        self.connections_opened += 1
        if not use_tls:
            return TcpStream(conn, hostname)
        session = TlsSession(conn, sni=hostname)
        resumed = hostname in self.session_tickets
        try:
            yield from session.client_handshake(resumed=resumed)
        except BaseException:
            conn.close()  # a failed handshake must not strand the dial
            raise
        self.session_tickets.add(hostname)
        return TlsStream(session)


def fetch(stream: Stream, request: HttpRequest):
    """Generator: one request/response exchange on ``stream``."""
    stream.send(request.size(), meta=request)
    response = yield stream.recv()
    if response is None:
        raise HttpError(f"{request.url}: connection closed before response")
    return response
