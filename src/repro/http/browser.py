"""Browser model: connection pool, caches, and page-load timing.

Reproduces the client-side mechanics the paper's PLT numbers hinge on:

* **DNS cache** — the connector's resolver caches answers, so only
  first-time loads pay resolution latency.
* **Content cache** — cacheable subresources are not re-fetched on
  subsequent loads.
* **HTTPS redirect** (TCP 2) — a first visit starts with a plain HTTP
  request and follows the 301 to TLS; later visits go straight to 443.
* **Account recording** (TCP 4) — when the origin asks, the browser
  opens one extra connection to the recording endpoint.
* **Connection pool** — at most six parallel persistent connections
  per origin, with keep-alive expiry.

Every access method is driven through this same browser; only the
:class:`~repro.http.client.Connector` differs.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..errors import HttpError, OverloadError, ReproError, TransportError
from ..overload import Deadline
from ..sim import Resource, Simulator
from .client import Connector, Stream, fetch
from .messages import HttpRequest, HttpResponse
from .page import Page, PageObject
from .server import ACCOUNT_RECORD_PATH

#: Chrome's per-origin connection limit.
MAX_CONNECTIONS_PER_ORIGIN = 6
#: Idle keep-alive horizon after which pooled connections are discarded.
KEEPALIVE_SECONDS = 30.0


@dataclass
class PageLoadResult:
    """Outcome of one page load."""

    url: str
    started_at: float
    plt: float
    first_visit: bool
    objects_fetched: int
    app_bytes: int
    connections_opened: int
    error: t.Optional[str] = None
    #: Objects answered by an edge cache (``HttpResponse.from_cache``).
    cache_hits: int = 0

    @property
    def all_from_cache(self) -> bool:
        """Every fetched object was served from an edge cache."""
        return self.objects_fetched > 0 and self.cache_hits == self.objects_fetched

    @property
    def succeeded(self) -> bool:
        return self.error is None


@dataclass
class _Origin:
    """Pool state for one (connector, host, port, tls) tuple."""

    slots: Resource
    idle: t.List[t.Tuple[Stream, float]] = field(default_factory=list)


class Browser:
    """A simulated web browser bound to a connector."""

    def __init__(
        self,
        sim: Simulator,
        connector: Connector,
        max_per_origin: int = MAX_CONNECTIONS_PER_ORIGIN,
        keepalive: float = KEEPALIVE_SECONDS,
        name: str = "browser",
        retries: int = 0,
        retry_backoff: float = 1.0,
        read_timeout: t.Optional[float] = None,
        total_deadline: t.Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.connector = connector
        self.max_per_origin = max_per_origin
        self.keepalive = keepalive
        self.name = name
        #: Per-object transport retries (0 = a failure fails the load,
        #: the historical behaviour).  Fault-tolerance experiments turn
        #: this up so the browser degrades gracefully.
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: Response deadline per request (None = wait forever).  Without
        #: it a stream whose far leg silently blackholes (e.g. a mid-path
        #: IP block) stalls a load until the fault lifts; with it the
        #: fetch aborts, the stream is dropped, and the retry dials fresh.
        self.read_timeout = read_timeout
        #: Total time budget per *request*, covering every retry attempt
        #: and its backoff.  Without it, ``retries`` x ``read_timeout``
        #: can exceed any deadline a caller had in mind; with it the
        #: browser stamps a :class:`~repro.overload.Deadline` when the
        #: request starts, stops retrying once the next attempt could
        #: not start in time, and hands the deadline to connectors that
        #: can propagate it (``supports_deadline``).
        self.total_deadline = total_deadline
        #: Optional per-URL connector routing (PAC-style). Receives the
        #: URL, returns a Connector; default routes everything to
        #: ``self.connector``.
        self.route: t.Callable[[str], Connector] = lambda _url: self.connector
        self._origins: t.Dict[t.Tuple[str, str, int, bool], _Origin] = {}
        self._visited: t.Set[str] = set()
        self._cached_objects: t.Set[t.Tuple[str, str]] = set()
        self.loads: t.List[PageLoadResult] = []
        self.connections_opened = 0

    # -- cache control ---------------------------------------------------------------

    def clear_caches(self) -> None:
        """Forget history, content cache, and pooled connections."""
        self._visited.clear()
        self._cached_objects.clear()
        for origin in self._origins.values():
            for stream, _idle_since in origin.idle:
                stream.close()
            origin.idle.clear()
        self._origins.clear()

    def has_visited(self, url: str) -> bool:
        return url in self._visited

    # -- page loading ------------------------------------------------------------------

    def load(self, page: Page):
        """Generator process: load ``page``; returns PageLoadResult."""
        started = self.sim.now
        first_visit = page.url not in self._visited
        counters = {"bytes": 0, "objects": 0, "connections": 0,
                    "cache_hits": 0}
        try:
            document = yield from self._load_document(page, first_visit, counters)
            yield self.sim.timeout(page.parse_time)
            yield from self._load_subresources(page, document, first_visit, counters)
            error = None
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        result = PageLoadResult(
            url=page.url,
            started_at=started,
            plt=self.sim.now - started,
            first_visit=first_visit,
            objects_fetched=counters["objects"],
            app_bytes=counters["bytes"],
            connections_opened=counters["connections"],
            error=error,
            cache_hits=counters["cache_hits"],
        )
        if error is None:
            self._visited.add(page.url)
        self.loads.append(result)
        return result

    def _load_document(self, page: Page, first_visit: bool,
                       counters: t.Dict[str, int]):
        """Fetch the main document, following the HTTP->HTTPS redirect."""
        scheme = "http" if first_visit else "https"
        path = page.path
        for _hop in range(3):
            use_tls = scheme == "https"
            request = HttpRequest(page.host, path, scheme=scheme,
                                  first_visit=first_visit)
            response = yield from self._fetch_on_origin(
                page.host, 443 if use_tls else 80, use_tls, request, counters)
            if response.redirect_to is not None:
                scheme = response.redirect_scheme
                path = response.redirect_to
                continue
            return response
        raise ReproError(f"{page.url}: redirect loop")

    def _load_subresources(self, page: Page, document: HttpResponse,
                           first_visit: bool, counters: t.Dict[str, int]):
        """Fetch uncached objects (and TCP 4) in parallel."""
        tasks = []
        for obj in page.objects:
            object_host = obj.host or page.host
            if obj.cacheable and (object_host, obj.path) in self._cached_objects:
                continue
            tasks.append(self.sim.process(
                self._object_task(object_host, obj, counters),
                name=f"fetch:{obj.path}"))
        if document.record_account:
            tasks.append(self.sim.process(
                self._account_record_task(page.host, counters),
                name="account-record"))
        if tasks:
            yield self.sim.all_of(tasks)

    def _object_task(self, host: str, obj: PageObject,
                     counters: t.Dict[str, int]):
        request = HttpRequest(host, obj.path, scheme="https")
        response = yield from self._fetch_on_origin(host, 443, True, request,
                                                    counters)
        if response.cacheable:
            self._cached_objects.add((host, obj.path))
        return response

    def _account_record_task(self, host: str, counters: t.Dict[str, int]):
        """The paper's TCP 4: a dedicated, non-pooled connection."""
        connector = self.route(f"https://{host}{ACCOUNT_RECORD_PATH}")
        stream = yield from connector.open(host, 443, True)
        counters["connections"] += 1
        self.connections_opened += 1
        request = HttpRequest(host, ACCOUNT_RECORD_PATH, scheme="https",
                              first_visit=True)
        response = yield from fetch(stream, request)
        counters["bytes"] += request.size() + response.size()
        stream.close()
        return response

    # -- pooled fetching -----------------------------------------------------------------

    def _fetch_on_origin(self, host: str, port: int, use_tls: bool,
                         request: HttpRequest, counters: t.Dict[str, int]):
        connector = self.route(request.url)
        origin = self._origin_for(connector, host, port, use_tls)
        yield origin.slots.acquire()
        deadline = (None if self.total_deadline is None
                    else Deadline(self.sim.now + self.total_deadline))
        try:
            attempt = 0
            while True:
                stream: t.Optional[Stream] = None
                try:
                    stream = yield from self._checkout(
                        origin, connector, host, port, use_tls, counters,
                        deadline)
                    response = yield from self._fetch_with_deadline(
                        stream, request, deadline)
                except OverloadError:
                    # A shed is the service telling us to go away; an
                    # immediate retry would feed the retry storm the
                    # shed exists to prevent.
                    if stream is not None:
                        stream.close()
                    raise
                except (TransportError, HttpError):
                    if stream is not None:
                        stream.close()
                    attempt += 1
                    if attempt > self.retries:
                        raise
                    backoff = self.retry_backoff * (2 ** (attempt - 1))
                    if (deadline is not None
                            and deadline.expired(self.sim.now + backoff)):
                        # The next attempt could not even start in time.
                        raise
                    # Every pooled stream shares the failed path and a
                    # close may not have propagated yet; drop them all
                    # so the retry dials fresh.
                    for idle_stream, _idle_since in origin.idle:
                        idle_stream.close()
                    origin.idle.clear()
                    yield self.sim.timeout(backoff)
                    continue
                counters["bytes"] += request.size() + response.size()
                counters["objects"] += 1
                if getattr(response, "from_cache", False):
                    counters["cache_hits"] += 1
                self._checkin(origin, stream)
                return response
        finally:
            origin.slots.release()

    def _fetch_with_deadline(self, stream: Stream, request: HttpRequest,
                             deadline: t.Optional[Deadline] = None):
        timeout = self.read_timeout
        if deadline is not None:
            timeout = deadline.clamp(timeout, self.sim.now)
        if timeout is None:
            return (yield from fetch(stream, request))
        task = self.sim.process(fetch(stream, request),
                                name=f"fetch:{request.path}")
        timer = self.sim.timeout(timeout)
        yield self.sim.any_of([task, timer])
        if task.triggered:
            return task.value
        task.interrupt("read-deadline")
        raise TransportError(
            f"{request.url}: no response within {timeout:g}s")

    def _origin_for(self, connector: Connector, host: str, port: int,
                    use_tls: bool) -> _Origin:
        key = (connector.name, host, port, use_tls)
        origin = self._origins.get(key)
        if origin is None:
            origin = _Origin(slots=Resource(self.sim, self.max_per_origin))
            self._origins[key] = origin
        return origin

    def _checkout(self, origin: _Origin, connector: Connector, host: str,
                  port: int, use_tls: bool, counters: t.Dict[str, int],
                  deadline: t.Optional[Deadline] = None):
        while origin.idle:
            stream, idle_since = origin.idle.pop()
            if stream.alive and self.sim.now - idle_since <= self.keepalive:
                return stream
            stream.close()
        if deadline is not None and getattr(connector, "supports_deadline",
                                            False):
            stream = yield from connector.open(host, port, use_tls,
                                               deadline=deadline)
        else:
            stream = yield from connector.open(host, port, use_tls)
        counters["connections"] += 1
        self.connections_opened += 1
        return stream

    def _checkin(self, origin: _Origin, stream: Stream) -> None:
        if stream.alive:
            origin.idle.append((stream, self.sim.now))
