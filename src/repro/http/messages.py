"""HTTP message models.

Requests and responses are descriptor objects with byte lengths; they
ride the simulated TCP as messages.  Header sizes are modeled as flat
constants typical of 2017-era Chrome traffic.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

#: Bytes of a typical GET request (request line + headers + cookies).
REQUEST_SIZE = 390
#: Bytes of response status line + headers.
RESPONSE_HEADER_SIZE = 310


@dataclass(frozen=True)
class HttpRequest:
    """A GET request for ``path`` on virtual-host ``host``."""

    host: str
    path: str
    scheme: str = "https"
    first_visit: bool = False  # browser signals first visit via cookies' absence

    @property
    def url(self) -> str:
        return f"{self.scheme}://{self.host}{self.path}"

    def size(self) -> int:
        return REQUEST_SIZE


@dataclass(frozen=True)
class HttpResponse:
    """Response descriptor: status plus the object it carries."""

    status: int
    path: str
    body_size: int
    cacheable: bool = True
    #: Path the client should re-request (301/302), if any.
    redirect_to: t.Optional[str] = None
    #: Scheme for the redirect target.
    redirect_scheme: str = "https"
    #: True when the origin wants the client to open the side channel
    #: that records client IP + account (the paper's TCP 4).
    record_account: bool = False
    #: True when an edge cache served this response without touching
    #: the origin (set by the proxy, read by the browser's counters).
    from_cache: bool = False

    def size(self) -> int:
        return RESPONSE_HEADER_SIZE + self.body_size


def parse_url(url: str) -> t.Tuple[str, str, str]:
    """Split ``scheme://host/path`` into (scheme, host, path)."""
    scheme, sep, rest = url.partition("://")
    if not sep:
        scheme, rest = "https", url
    host, slash, path = rest.partition("/")
    return scheme, host, "/" + path if slash else "/"
