"""Simulated HTTP: messages, origin servers, connectors, and a browser."""

from .browser import (
    Browser,
    KEEPALIVE_SECONDS,
    MAX_CONNECTIONS_PER_ORIGIN,
    PageLoadResult,
)
from .client import Connector, DirectConnector, Stream, TcpStream, TlsStream, fetch
from .messages import (
    HttpRequest,
    HttpResponse,
    REQUEST_SIZE,
    RESPONSE_HEADER_SIZE,
    parse_url,
)
from .page import (
    Page,
    PageObject,
    google_scholar_home,
    google_scholar_results,
    scholar_pdf,
    plain_site_page,
)
from .server import ACCOUNT_RECORD_PATH, WebServer

__all__ = [
    "ACCOUNT_RECORD_PATH",
    "Browser",
    "Connector",
    "DirectConnector",
    "HttpRequest",
    "HttpResponse",
    "KEEPALIVE_SECONDS",
    "MAX_CONNECTIONS_PER_ORIGIN",
    "Page",
    "PageLoadResult",
    "PageObject",
    "REQUEST_SIZE",
    "RESPONSE_HEADER_SIZE",
    "Stream",
    "TcpStream",
    "TlsStream",
    "WebServer",
    "fetch",
    "google_scholar_home",
    "google_scholar_results",
    "scholar_pdf",
    "parse_url",
    "plain_site_page",
]
