"""Web page object model.

A :class:`Page` is a main document plus subresources; the browser
fetches the document, "parses" it, then fetches subresources over its
connection pool.  Sizes for the Google Scholar home page are calibrated
so a full first-time fetch moves ≈19 KB on the wire, matching the
paper's Figure 6a direct-access baseline.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PageObject:
    """One fetchable object."""

    path: str
    size: int
    cacheable: bool = True
    #: Host serving the object; None means the page's own host.
    host: t.Optional[str] = None


@dataclass
class Page:
    """A document and its subresources."""

    host: str
    path: str
    document_size: int
    objects: t.List[PageObject] = field(default_factory=list)
    #: Whether the main document may be served from browser cache.
    document_cacheable: bool = False
    #: First visits trigger the account/IP recording side channel
    #: (Figure 4's TCP 4).
    records_account: bool = True
    #: Seconds of client-side parse time before subresource fetches.
    parse_time: float = 0.03

    @property
    def url(self) -> str:
        return f"https://{self.host}{self.path}"

    def total_bytes(self) -> int:
        return self.document_size + sum(obj.size for obj in self.objects)


def google_scholar_home() -> Page:
    """The Google Scholar home page as measured circa 2017.

    Object sizes calibrated so one cold fetch (with request/response
    headers and TCP/TLS overhead) moves ≈19 KB, the paper's baseline.
    """
    return Page(
        host="scholar.google.com",
        path="/",
        document_size=4800,
        objects=[
            PageObject("/scholar.css", 3200),
            PageObject("/scholar.js", 3900),
            PageObject("/img/scholar_logo.png", 2300),
            # Per-view logging beacons: never cached, fired on every
            # load — they keep even "subsequent" loads opening fresh
            # connections, which is where per-connection method costs
            # (Shadowsocks auth, Tor circuit round trips) show up.
            PageObject("/gen204?atyp=i", 140, cacheable=False),
            PageObject("/gen204?atyp=csi", 160, cacheable=False),
        ],
        document_cacheable=False,
        records_account=True,
        parse_time=0.25,
    )


def google_scholar_results() -> Page:
    """A search-results page: bigger document, mostly cached assets."""
    return Page(
        host="scholar.google.com",
        path="/scholar?q=internet+censorship",
        document_size=48_000,
        objects=[
            PageObject("/scholar.css", 3600),
            PageObject("/scholar.js", 4100),
        ],
        document_cacheable=False,
        records_account=False,
    )


def scholar_pdf() -> Page:
    """A paper PDF download: one large, uncacheable document.

    The bulk steady-state workload for the fluid-mode sweeps — a
    Scholar user who found the paper and pulls the full text.  No
    subresources, no account recording: almost every wire byte is one
    long transfer, which is the traffic class the analytic flow model
    collapses.
    """
    return Page(
        host="scholar.google.com",
        path="/pdf/censorship-measurement.pdf",
        document_size=1_200_000,
        objects=[],
        document_cacheable=False,
        records_account=False,
        parse_time=0.01,
    )


def plain_site_page(host: str = "www.example.com") -> Page:
    """A small non-blocked page, used for baseline comparisons."""
    return Page(
        host=host,
        path="/",
        document_size=8000,
        objects=[PageObject("/style.css", 3000), PageObject("/logo.png", 4000)],
        document_cacheable=True,
        records_account=False,
    )
