"""Process-misuse rules: catching broken simulator process bodies early.

``Simulator.process()`` takes a *generator object* — the result of
calling a generator function — and the generator may only yield
:class:`~repro.sim.events.Event` instances.  Both mistakes raise at
runtime (see ``repro.sim.kernel``), but only on the first resume of the
offending process, which in a long scenario can be millions of events
into a run.  These rules reject the statically visible cases at lint
time instead.
"""

from __future__ import annotations

import ast
import typing as t

from ..engine import Rule


def _local_function_names(tree: ast.Module) -> t.Set[str]:
    """Names of every function defined anywhere in the module."""
    return {node.name for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _process_body_names(tree: ast.Module) -> t.Set[str]:
    """Function names invoked inline as ``<x>.process(name(...))``."""
    names: t.Set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            continue
        body = node.args[0]
        if isinstance(body, ast.Call):
            inner = body.func
            if isinstance(inner, ast.Name):
                names.add(inner.id)
            elif isinstance(inner, ast.Attribute):
                names.add(inner.attr)
    return names


class UninvokedProcessRule(Rule):
    """``sim.process(body)`` must receive ``body(...)``, not ``body``."""

    id = "process-uninvoked"
    description = ("sim.process(fn) passes the function object instead of a "
                   "generator; call it: sim.process(fn(sim))")

    def run(self) -> t.List["t.Any"]:
        self._functions = _local_function_names(self.ctx.tree)
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            body = node.args[0]
            if isinstance(body, ast.Name) and body.id in self._functions:
                self.report(node, f"process body {body.id!r} passed without "
                                  f"being invoked; write {body.id}(...) to "
                                  "create the generator")
            elif isinstance(body, ast.Lambda):
                self.report(node, "a lambda is not a generator; process "
                                  "bodies must be generator functions, "
                                  "invoked")
        self.generic_visit(node)


class YieldLiteralRule(Rule):
    """Process bodies may only yield Event instances, never literals."""

    id = "process-yield-literal"
    description = ("a process body yields a literal; processes may only "
                   "yield Event instances (sim.timeout(...), conn.recv(), ...)")

    def run(self) -> t.List["t.Any"]:
        process_bodies = _process_body_names(self.ctx.tree)
        for node in ast.walk(self.ctx.tree):
            if not (isinstance(node, ast.FunctionDef)
                    and node.name in process_bodies):
                continue
            for child in ast.walk(node):
                if (isinstance(child, ast.Yield)
                        and isinstance(child.value, ast.Constant)
                        and child.value.value is not None):
                    self.report(child, f"process body {node.name!r} yields "
                                       f"{child.value.value!r}; only Event "
                                       "instances may be yielded")
        return self.findings
