"""Robustness rules: failures on wire/sim paths must not vanish.

A pump loop or protocol handler that catches ``Exception`` and does
nothing turns every transport fault, codec bug, and simulator error
into silence — the load "succeeds" with wrong traffic, or a process
quietly dies and the experiment deadlocks later.  Handlers must catch
the narrow error type they expect (``TransportError``,
``MiddlewareError``, ...) or do something observable with the failure.
"""

from __future__ import annotations

import ast
import typing as t

from ..engine import Rule

#: Exception names considered too broad to swallow silently.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(expr: t.Optional[ast.expr]) -> t.Optional[str]:
    """The broad exception name caught by ``expr``, if any."""
    if expr is None:
        return "bare except"
    if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
        return expr.id
    if isinstance(expr, ast.Tuple):
        for element in expr.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _is_trivial(statement: ast.stmt) -> bool:
    """True for statements that discard the failure without a trace."""
    if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
        return True
    if isinstance(statement, ast.Return):
        value = statement.value
        return value is None or (isinstance(value, ast.Constant)
                                 and value.value is None)
    if isinstance(statement, ast.Expr):
        return isinstance(statement.value, ast.Constant)
    return False


class SilentExceptRule(Rule):
    """No silently swallowed broad exceptions on wire/sim paths."""

    id = "silent-except"
    description = ("`except Exception:`/bare `except:` whose body only "
                   "passes/continues/returns hides wire and sim failures; "
                   "catch the narrow error type instead")
    default_exempt = ("repro.analysis",)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        caught = _broad_name(node.type)
        if caught is not None and all(_is_trivial(s) for s in node.body):
            self.report(node,
                        f"{caught} swallowed silently; catch the narrow "
                        "error type (TransportError, MiddlewareError, ...) "
                        "or handle the failure observably")
        self.generic_visit(node)
