"""Robustness rules: failures on wire/sim paths must not vanish.

A pump loop or protocol handler that catches ``Exception`` and does
nothing turns every transport fault, codec bug, and simulator error
into silence — the load "succeeds" with wrong traffic, or a process
quietly dies and the experiment deadlocks later.  Handlers must catch
the narrow error type they expect (``TransportError``,
``MiddlewareError``, ...) or do something observable with the failure.
"""

from __future__ import annotations

import ast
import typing as t

from ..engine import Rule

#: Exception names considered too broad to swallow silently.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(expr: t.Optional[ast.expr]) -> t.Optional[str]:
    """The broad exception name caught by ``expr``, if any."""
    if expr is None:
        return "bare except"
    if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
        return expr.id
    if isinstance(expr, ast.Tuple):
        for element in expr.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _is_trivial(statement: ast.stmt) -> bool:
    """True for statements that discard the failure without a trace."""
    if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
        return True
    if isinstance(statement, ast.Return):
        value = statement.value
        return value is None or (isinstance(value, ast.Constant)
                                 and value.value is None)
    if isinstance(statement, ast.Expr):
        return isinstance(statement.value, ast.Constant)
    return False


class SilentExceptRule(Rule):
    """No silently swallowed broad exceptions on wire/sim paths."""

    id = "silent-except"
    description = ("`except Exception:`/bare `except:` whose body only "
                   "passes/continues/returns hides wire and sim failures; "
                   "catch the narrow error type instead")
    default_exempt = ("repro.analysis",)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        caught = _broad_name(node.type)
        if caught is not None and all(_is_trivial(s) for s in node.body):
            self.report(node,
                        f"{caught} swallowed silently; catch the narrow "
                        "error type (TransportError, MiddlewareError, ...) "
                        "or handle the failure observably")
        self.generic_visit(node)


#: Container-growth calls that make a queue, applied to anything.
_GROWTH_METHODS = frozenset({"append", "appendleft", "extend", "put"})
#: Constructor names whose result is a fresh (empty) container.
_FRESH_CONSTRUCTORS = frozenset({"list", "deque", "dict", "set"})


def _is_infinite_loop(node: ast.While) -> bool:
    return isinstance(node.test, ast.Constant) and bool(node.test.value)


def _fresh_container_names(loop: ast.While) -> t.Set[str]:
    """Names (re)bound to a fresh container inside the loop body.

    A batch list rebuilt every iteration (``downstream = []`` at the
    top of the loop) is bounded by the iteration's work, not by the
    connection's lifetime — growing it is fine.
    """
    names: t.Set[str] = set()
    for statement in ast.walk(loop):
        if not isinstance(statement, ast.Assign):
            continue
        value = statement.value
        fresh = isinstance(value, (ast.List, ast.Dict, ast.Set))
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id in _FRESH_CONSTRUCTORS):
            fresh = True
        if not fresh:
            continue
        for target in statement.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class UnboundedQueueRule(Rule):
    """No unbounded accumulation inside forever-loops on wire paths.

    A ``while True:`` pump that ``.append``s/``.put``s into a
    long-lived container with no capacity check is an overload bug
    waiting for Figure 7's right-hand side: memory and queueing delay
    grow without limit exactly when the system is saturated.  Use
    :class:`repro.overload.BoundedQueue`, a ``deque(maxlen=...)``, or
    suppress with a comment saying what genuinely bounds the growth.
    """

    id = "unbounded-queue"
    description = ("container growth inside an infinite loop on a wire "
                   "path; bound it (repro.overload.BoundedQueue, "
                   "deque(maxlen=...)) or justify the bound in a "
                   "suppression comment")
    default_scope = ("repro.core", "repro.middleware", "repro.transport",
                     "repro.net")

    #: ``default_factory`` values that build an unbounded sequence.
    _UNBOUNDED_FACTORIES = frozenset({"list", "deque"})

    def __init__(self, *args: t.Any, **kwargs: t.Any) -> None:
        super().__init__(*args, **kwargs)
        self._loop_locals: t.List[t.Set[str]] = []

    def visit_While(self, node: ast.While) -> None:
        if not _is_infinite_loop(node):
            self.generic_visit(node)
            return
        self._loop_locals.append(_fresh_container_names(node))
        self.generic_visit(node)
        self._loop_locals.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if (self._loop_locals
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROWTH_METHODS
                and not self._is_per_iteration(node.func.value)):
            self.report(node,
                        f".{node.func.attr}() grows a container inside an "
                        "infinite loop with no bound; overload turns this "
                        "into unbounded memory and queueing delay")
        self.generic_visit(node)

    def _is_per_iteration(self, receiver: ast.expr) -> bool:
        if not isinstance(receiver, ast.Name):
            return False
        return any(receiver.id in names for names in self._loop_locals)

    # -- dataclass fields ------------------------------------------------

    # Per-flow/per-connection state usually lives in dataclass fields,
    # where the accumulation site (some .append elsewhere) and the
    # missing bound (the field declaration) are in different places.
    # The declaration is the fixable spot, so that is what gets flagged:
    # a list or bare deque default_factory on a dataclass field.

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(self._is_dataclass_decorator(d) for d in node.decorator_list):
            for statement in node.body:
                if (isinstance(statement, ast.AnnAssign)
                        and statement.value is not None):
                    self._check_field_default(statement.value)
        self.generic_visit(node)

    @staticmethod
    def _is_dataclass_decorator(decorator: ast.expr) -> bool:
        if isinstance(decorator, ast.Call):
            decorator = decorator.func
        if isinstance(decorator, ast.Attribute):
            return decorator.attr == "dataclass"
        return isinstance(decorator, ast.Name) and decorator.id == "dataclass"

    def _check_field_default(self, value: ast.expr) -> None:
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "field"):
            return
        for keyword in value.keywords:
            if keyword.arg == "default_factory" and \
                    self._factory_unbounded(keyword.value):
                self.report(keyword.value,
                            "dataclass field defaults to an unbounded "
                            "list/deque; per-instance state accumulates for "
                            "the life of the flow — use deque(maxlen=...) "
                            "or justify the bound in a suppression comment")

    def _factory_unbounded(self, factory: ast.expr) -> bool:
        if isinstance(factory, ast.Name):
            return factory.id in self._UNBOUNDED_FACTORIES
        if isinstance(factory, ast.Lambda):
            body = factory.body
            if isinstance(body, ast.List):
                return True
            if (isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)
                    and body.func.id in self._UNBOUNDED_FACTORIES):
                # deque(maxlen=...) with a real bound is the fix, not
                # the bug.
                return not any(
                    keyword.arg == "maxlen"
                    and not (isinstance(keyword.value, ast.Constant)
                             and keyword.value.value is None)
                    for keyword in body.keywords)
        return False


#: Constructors whose no-arg result is an empty mapping.
_DICT_CONSTRUCTORS = frozenset({"dict", "OrderedDict", "defaultdict"})
#: Mapping methods that insert or may insert entries.
_MAP_GROW_METHODS = frozenset({"setdefault", "update"})
#: Mapping methods that remove entries (shrink evidence).
_MAP_SHRINK_METHODS = frozenset({"pop", "popitem", "clear"})


class UnboundedCacheFieldRule(Rule):
    """Instance dicts that only ever gain keys must shed them somewhere.

    The :class:`UnboundedQueueRule` sibling for mapping state: a cache,
    session table, or index initialized to an empty dict in ``__init__``
    and written by keyed inserts with *no* removal anywhere in the class
    (``pop``/``popitem``/``clear``/``del``/wholesale reassignment) grows
    for the instance's lifetime.  For long-lived sim objects — proxies,
    firewalls, caches — that is the memory curve of Figure 7's
    right-hand side.  Evict somewhere (TTL sweep, watermark, epoch
    reset), or suppress with a comment naming what genuinely bounds the
    key space.
    """

    id = "unbounded-cache-field"
    description = ("insert-only instance dict on a sim object; entries "
                   "accumulate for the instance's lifetime — evict "
                   "(pop/popitem/clear/del) or justify the key-space "
                   "bound in a suppression comment")
    default_scope = ("repro.core", "repro.middleware", "repro.transport",
                     "repro.net", "repro.cache", "repro.overload",
                     "repro.gfw", "repro.fleet")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        fields = self._empty_dict_fields(node)
        if fields:
            grown, shrunk = self._field_traffic(node, set(fields))
            for name in sorted(grown - shrunk):
                self.report(fields[name],
                            f"self.{name} only ever gains entries in "
                            f"{node.name}; nothing pops, clears, deletes, "
                            "or replaces it — an unbounded cache on a "
                            "long-lived sim object")
        self.generic_visit(node)

    @staticmethod
    def _self_attr(expr: ast.expr) -> t.Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return expr.attr
        return None

    def _empty_dict_fields(self, node: ast.ClassDef
                           ) -> t.Dict[str, ast.expr]:
        """``self.X`` fields bound to an empty mapping in ``__init__``."""
        fields: t.Dict[str, ast.expr] = {}
        for method in node.body:
            if not (isinstance(method, ast.FunctionDef)
                    and method.name == "__init__"):
                continue
            for statement in ast.walk(method):
                target: t.Optional[ast.expr] = None
                value: t.Optional[ast.expr] = None
                if (isinstance(statement, ast.Assign)
                        and len(statement.targets) == 1):
                    target, value = statement.targets[0], statement.value
                elif (isinstance(statement, ast.AnnAssign)
                        and statement.value is not None):
                    target, value = statement.target, statement.value
                if target is None or value is None:
                    continue
                name = self._self_attr(target)
                if name is not None and self._empty_mapping(value):
                    fields[name] = value
        return fields

    @staticmethod
    def _empty_mapping(value: ast.expr) -> bool:
        if isinstance(value, ast.Dict):
            # A pre-keyed literal ({a: 0, b: 0}) has a fixed key space.
            return not value.keys
        if isinstance(value, ast.Call) and not value.args:
            func = value.func
            if isinstance(func, ast.Attribute):
                return func.attr in _DICT_CONSTRUCTORS
            return (isinstance(func, ast.Name)
                    and func.id in _DICT_CONSTRUCTORS)
        # defaultdict(list) etc. — still an empty mapping.
        if isinstance(value, ast.Call):
            func = value.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            return name == "defaultdict"
        return False

    def _field_traffic(self, node: ast.ClassDef, names: t.Set[str]
                       ) -> t.Tuple[t.Set[str], t.Set[str]]:
        """Which of ``names`` gain entries / lose entries in the class."""
        grown: t.Set[str] = set()
        shrunk: t.Set[str] = set()
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            in_init = method.name == "__init__"
            for statement in ast.walk(method):
                if isinstance(statement, (ast.Assign, ast.AugAssign)):
                    targets = (statement.targets
                               if isinstance(statement, ast.Assign)
                               else [statement.target])
                    for target in targets:
                        if isinstance(target, ast.Subscript):
                            name = self._self_attr(target.value)
                            if name in names:
                                grown.add(name)
                        elif not in_init:
                            # Wholesale replacement resets the mapping:
                            # growth is bounded by the reset cadence.
                            name = self._self_attr(target)
                            if name in names:
                                shrunk.add(name)
                elif isinstance(statement, ast.Delete):
                    for target in statement.targets:
                        if isinstance(target, ast.Subscript):
                            name = self._self_attr(target.value)
                            if name in names:
                                shrunk.add(name)
                elif isinstance(statement, ast.Call):
                    func = statement.func
                    if isinstance(func, ast.Attribute):
                        name = self._self_attr(func.value)
                        if name in names:
                            if func.attr in _MAP_GROW_METHODS:
                                grown.add(name)
                            elif func.attr in _MAP_SHRINK_METHODS:
                                shrunk.add(name)
        return grown, shrunk
