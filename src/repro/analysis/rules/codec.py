"""Codec-hygiene rules: keep str and bytes strictly apart on wire paths.

The blinding codecs, crypto, framing, and packet layers all move raw
bytes; ``str(some_bytes)`` silently produces ``"b'...'"`` garbage that
round-trips through tests that only check lengths.  The rule flags the
mixings that are statically visible: ``str()`` over byte-producing
expressions, concatenation/formatting/comparison of str and bytes
literals, and bytes interpolated into f-strings.
"""

from __future__ import annotations

import ast
import typing as t

from ..engine import Rule

#: Modules whose job is moving raw bytes.
CODEC_SCOPE: t.Tuple[str, ...] = (
    "repro.crypto", "repro.core.blinding", "repro.realnet.framing",
    "repro.net.packet",
)

#: Method names whose return value is bytes, as used in this repo.
_BYTES_METHODS = {"encode", "digest", "to_bytes", "pack", "urandom"}


def _is_bytes_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (bytes, bytearray)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in _BYTES_METHODS
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"bytes", "bytearray"}
    return False


def _is_str_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "str"
    return False


class StrBytesMixingRule(Rule):
    """No implicit str<->bytes mixing on byte-moving paths."""

    id = "codec-str-bytes"
    description = ("str(bytes) and str/bytes mixing corrupt wire data; "
                   "decode/encode explicitly")
    default_scope = CODEC_SCOPE

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "str"
                and node.args and _is_bytes_expr(node.args[0])):
            self.report(node, "str() over a bytes value produces \"b'...'\" "
                              "repr garbage; use .decode() explicitly")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Mod)):
            left_bytes, right_bytes = _is_bytes_expr(node.left), _is_bytes_expr(node.right)
            left_str, right_str = _is_str_expr(node.left), _is_str_expr(node.right)
            if (left_bytes and right_str) or (left_str and right_bytes):
                op = "+" if isinstance(node.op, ast.Add) else "%"
                self.report(node, f"mixing str and bytes with {op!r}; "
                                  "encode or decode one side explicitly")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ops_ok = all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if ops_ok:
            has_bytes = any(_is_bytes_expr(o) for o in operands)
            has_str = any(_is_str_expr(o) for o in operands)
            if has_bytes and has_str:
                self.report(node, "comparing str with bytes is always False; "
                                  "encode or decode one side explicitly")
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        for value in node.values:
            if isinstance(value, ast.FormattedValue) and _is_bytes_expr(value.value):
                self.report(node, "interpolating bytes into an f-string embeds "
                                  "\"b'...'\" repr garbage; decode explicitly")
        self.generic_visit(node)
