"""The reprolint rule pack: the repo's invariants as AST rules,
plus the project-wide dataflow rules layered on the flow package."""

import typing as t

from ..engine import ProjectRule, Rule
from .codec import CODEC_SCOPE, StrBytesMixingRule
from .determinism import (
    SIM_SCOPE,
    AmbientRandomRule,
    OsEntropyRule,
    SeededRandomRule,
    WallClockRule,
)
from .flow_rules import (
    DeadlineUnclampedRule,
    LeakOnErrorPathRule,
    RngStreamRegistryRule,
    WireSchemaRule,
)
from .process import UninvokedProcessRule, YieldLiteralRule
from .robustness import (
    SilentExceptRule,
    UnboundedCacheFieldRule,
    UnboundedQueueRule,
)
from .sim_safety import REALNET_EXEMPT, BlockingCallRule, ForbiddenImportRule

_ALL_RULES: t.Tuple[t.Type[Rule], ...] = (
    WallClockRule,
    AmbientRandomRule,
    SeededRandomRule,
    OsEntropyRule,
    ForbiddenImportRule,
    BlockingCallRule,
    StrBytesMixingRule,
    UninvokedProcessRule,
    YieldLiteralRule,
    SilentExceptRule,
    UnboundedQueueRule,
    UnboundedCacheFieldRule,
)

_ALL_PROJECT_RULES: t.Tuple[t.Type[ProjectRule], ...] = (
    LeakOnErrorPathRule,
    DeadlineUnclampedRule,
    RngStreamRegistryRule,
    WireSchemaRule,
)

RULES: t.Dict[str, t.Type[Rule]] = {rule.id: rule for rule in _ALL_RULES}

PROJECT_RULES: t.Dict[str, t.Type[ProjectRule]] = {
    rule.id: rule for rule in _ALL_PROJECT_RULES}


def default_rules() -> t.Tuple[t.Type[Rule], ...]:
    """The full per-module rule pack, in reporting order."""
    return _ALL_RULES


def default_project_rules() -> t.Tuple[t.Type[ProjectRule], ...]:
    """The full project-rule (dataflow) pack, in reporting order."""
    return _ALL_PROJECT_RULES


__all__ = [
    "CODEC_SCOPE",
    "PROJECT_RULES",
    "REALNET_EXEMPT",
    "RULES",
    "SIM_SCOPE",
    "AmbientRandomRule",
    "BlockingCallRule",
    "DeadlineUnclampedRule",
    "ForbiddenImportRule",
    "LeakOnErrorPathRule",
    "OsEntropyRule",
    "RngStreamRegistryRule",
    "SeededRandomRule",
    "SilentExceptRule",
    "StrBytesMixingRule",
    "UnboundedCacheFieldRule",
    "UnboundedQueueRule",
    "UninvokedProcessRule",
    "WallClockRule",
    "WireSchemaRule",
    "YieldLiteralRule",
    "default_project_rules",
    "default_rules",
]
