"""The reprolint rule pack: the repo's invariants as AST rules."""

import typing as t

from ..engine import Rule
from .codec import CODEC_SCOPE, StrBytesMixingRule
from .determinism import (
    SIM_SCOPE,
    AmbientRandomRule,
    OsEntropyRule,
    SeededRandomRule,
    WallClockRule,
)
from .process import UninvokedProcessRule, YieldLiteralRule
from .robustness import SilentExceptRule, UnboundedQueueRule
from .sim_safety import REALNET_EXEMPT, BlockingCallRule, ForbiddenImportRule

_ALL_RULES: t.Tuple[t.Type[Rule], ...] = (
    WallClockRule,
    AmbientRandomRule,
    SeededRandomRule,
    OsEntropyRule,
    ForbiddenImportRule,
    BlockingCallRule,
    StrBytesMixingRule,
    UninvokedProcessRule,
    YieldLiteralRule,
    SilentExceptRule,
    UnboundedQueueRule,
)

RULES: t.Dict[str, t.Type[Rule]] = {rule.id: rule for rule in _ALL_RULES}


def default_rules() -> t.Tuple[t.Type[Rule], ...]:
    """The full rule pack, in reporting order."""
    return _ALL_RULES


__all__ = [
    "CODEC_SCOPE",
    "REALNET_EXEMPT",
    "RULES",
    "SIM_SCOPE",
    "AmbientRandomRule",
    "BlockingCallRule",
    "ForbiddenImportRule",
    "OsEntropyRule",
    "SeededRandomRule",
    "SilentExceptRule",
    "StrBytesMixingRule",
    "UnboundedQueueRule",
    "UninvokedProcessRule",
    "WallClockRule",
    "YieldLiteralRule",
    "default_rules",
]
