"""Dataflow rules: the invariants PRs 2-3 fixed by hand, mechanized.

These are :class:`ProjectRule` passes — they build CFGs, run the
worklist solver, and consult the project call graph, so they see the
bug classes the AST pack cannot: a resource acquired on one line and
leaked three branches later, a deadline accepted but never clamped,
a stream name that silently diverges from its manifest entry, a wire
tuple whose producer and consumer disagree about arity.
"""

from __future__ import annotations

import ast
import difflib
import typing as t

from ..engine import ModuleContext, Project, ProjectRule, in_scope
from ..flow.callgraph import FunctionInfo
from ..flow.cfg import build_cfg, node_asts
from ..flow.dataflow import ReachingDefinitions
from ..flow.manifest import (DYNAMIC_STREAM_PREFIXES, REGISTRY_OWNERS,
                             STREAM_MANIFEST)
from ..flow.resources import (RaiseOracle, ResourceTracker,
                              may_raise_policy)
from ..flow.wire import WIRE_SCHEMAS, arity_ok, max_arity


class LeakOnErrorPathRule(ProjectRule):
    """Acquired resources must be released on every exception path."""

    id = "leak-on-error-path"
    description = ("a connection/stream/slot acquired in this function "
                   "may still be held when an exception propagates out")
    default_scope = ("repro.core", "repro.middleware", "repro.http",
                     "repro.faults", "repro.gfw", "repro.realnet")
    # The overload package *implements* the slot primitives; acquiring
    # from yourself in tests-of-self shape would be all noise.
    default_exempt = ("repro.overload",)

    def run(self, project: Project) -> t.List:
        graph = project.callgraph
        oracle = RaiseOracle(graph)
        allowed = {id(ctx) for ctx in self.contexts(project)}
        for info in graph.functions.values():
            if id(info.ctx) not in allowed:
                continue
            cfg = build_cfg(info.node,
                            may_raise=may_raise_policy(oracle, info))
            tracker = ResourceTracker(cfg, info, graph)
            for node, key in tracker.leaks():
                spec = tracker.specs[key]
                what = (f"{spec.kind} slot on `{key[1]}`"
                        if key[0] == "recv" else
                        f"{spec.kind} `{key[1]}`")
                self.report(
                    info.ctx, node.stmt,
                    f"{what} acquired in {info.name}() may leak on an "
                    f"exception path; release it (or hand it off) before "
                    f"the error propagates")
        return self.findings


class DeadlineUnclampedRule(ProjectRule):
    """Hop functions holding a Deadline must clamp forwarded timeouts.

    Deadline propagation (PR 3) only sheds load if every hop passes
    ``min(remaining budget, local timeout)`` downstream.  A raw
    constant timeout next to an in-scope ``deadline`` parameter is a
    hop that can outlive its caller's patience.
    """

    id = "deadline-unclamped"
    description = ("a function receiving a Deadline passes a timeout "
                   "downstream without deadline.clamp(...)")
    default_exempt = ("repro.analysis",)

    def run(self, project: Project) -> t.List:
        graph = project.callgraph
        oracle = RaiseOracle(graph)
        allowed = {id(ctx) for ctx in self.contexts(project)}
        for info in graph.functions.values():
            if id(info.ctx) not in allowed:
                continue
            if not _takes_deadline(info.node):
                continue
            self._check_function(info, oracle)
        return self.findings

    def _check_function(self, info: FunctionInfo,
                        oracle: RaiseOracle) -> None:
        cfg = build_cfg(info.node, may_raise=may_raise_policy(oracle, info))
        analysis = ReachingDefinitions()
        facts = analysis.run(cfg)
        for node in cfg.stmt_nodes():
            fact = facts.get(node.index)
            if fact is None:
                continue  # unreachable
            for tree in node_asts(node):
                for sub in ast.walk(tree):
                    if not isinstance(sub, ast.Call):
                        continue
                    for keyword in sub.keywords:
                        if keyword.arg != "timeout":
                            continue
                        if self._clamped(keyword.value, fact,
                                         analysis, cfg):
                            continue
                        self.report(
                            info.ctx, node.stmt,
                            f"{info.name}() holds a deadline but passes "
                            f"timeout= downstream without clamping; use "
                            f"deadline.clamp(timeout, now) so the hop "
                            f"cannot outlive the request budget")

    def _clamped(self, expr: ast.expr, fact, analysis: ReachingDefinitions,
                 cfg) -> bool:
        if isinstance(expr, ast.Constant) and expr.value is None:
            return True  # explicitly "no timeout": nothing to clamp
        if _mentions_clamp(expr):
            return True
        if isinstance(expr, ast.Name):
            if expr.id.isupper():
                return True  # module constant by convention
            defining = analysis.defs_of(fact, expr.id)
            if not defining:
                return True  # global/builtin: out of this rule's reach
            for index in defining:
                node = cfg.node(index)
                if node.stmt is not None and any(
                        _mentions_clamp(tree) for tree in node_asts(node)):
                    return True
            return False
        return False


def _takes_deadline(func: t.Union[ast.FunctionDef,
                                  ast.AsyncFunctionDef]) -> bool:
    arguments = func.args
    every = [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]
    return any(argument.arg == "deadline" for argument in every)


def _mentions_clamp(tree: ast.AST) -> bool:
    return any(isinstance(sub, ast.Call)
               and isinstance(sub.func, ast.Attribute)
               and sub.func.attr == "clamp"
               for sub in ast.walk(tree))


class RngStreamRegistryRule(ProjectRule):
    """RNG stream names must match the manifest and its ownership map."""

    id = "rng-stream-registry"
    description = ("an RNG stream literal is unregistered, drawn outside "
                   "its owner module, or a registry is constructed "
                   "outside Simulator-owned code")
    default_exempt = ("repro.analysis",)

    def run(self, project: Project) -> t.List:
        for ctx in self.contexts(project):
            for sub in ast.walk(ctx.tree):
                if not isinstance(sub, ast.Call):
                    continue
                if (isinstance(sub.func, ast.Name)
                        and sub.func.id == "RngRegistry"
                        and not in_scope(ctx.module, REGISTRY_OWNERS)):
                    self.report(
                        ctx, sub,
                        "RngRegistry constructed outside Simulator-owned "
                        "modules; draw streams from sim.rng so one "
                        "experiment seed governs every component")
                if (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "stream"
                        and len(sub.args) == 1 and not sub.keywords
                        and _rng_receiver(sub.func.value)):
                    self._check_stream(ctx, sub)
        return self.findings

    def _check_stream(self, ctx: ModuleContext, call: ast.Call) -> None:
        argument = call.args[0]
        if isinstance(argument, ast.Constant) and isinstance(
                argument.value, str):
            self._check_literal(ctx, call, argument.value)
        elif isinstance(argument, ast.JoinedStr):
            prefix = ""
            if argument.values and isinstance(argument.values[0],
                                              ast.Constant):
                prefix = str(argument.values[0].value)
            self._check_dynamic(ctx, call, prefix)
        # Non-literal stream names are forwarding helpers; the literal
        # at their call sites is what gets checked.

    def _check_literal(self, ctx: ModuleContext, call: ast.Call,
                       name: str) -> None:
        owners = STREAM_MANIFEST.get(name)
        if owners is None:
            for prefix, prefix_owners in DYNAMIC_STREAM_PREFIXES.items():
                if name.startswith(prefix):
                    owners = prefix_owners
                    break
        if owners is None:
            close = difflib.get_close_matches(
                name, STREAM_MANIFEST, n=1, cutoff=0.6)
            hint = f' (did you mean "{close[0]}"?)' if close else ""
            self.report(
                ctx, call,
                f'RNG stream "{name}" is not in the registry '
                f"manifest{hint}; register it in "
                f"repro.analysis.flow.manifest")
            return
        if not in_scope(ctx.module, owners):
            self.report(
                ctx, call,
                f'RNG stream "{name}" drawn outside its owner modules '
                f"({', '.join(owners)}); sharing a stream couples "
                f"components' draws")

    def _check_dynamic(self, ctx: ModuleContext, call: ast.Call,
                       prefix: str) -> None:
        for registered, owners in DYNAMIC_STREAM_PREFIXES.items():
            if prefix.startswith(registered):
                if not in_scope(ctx.module, owners):
                    self.report(
                        ctx, call,
                        f'dynamic RNG stream prefix "{registered}" drawn '
                        f"outside its owner modules "
                        f"({', '.join(owners)})")
                return
        self.report(
            ctx, call,
            f'dynamic RNG stream name "{prefix}..." has no registered '
            f"prefix; add one to DYNAMIC_STREAM_PREFIXES in "
            f"repro.analysis.flow.manifest")


def _rng_receiver(expr: ast.expr) -> bool:
    """Does this receiver look like an RNG registry?"""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and "rng" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "rng" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Call):
            target = sub.func
            if isinstance(target, ast.Name) and target.id == "RngRegistry":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "fork":
                return True
    return False


class WireSchemaRule(ProjectRule):
    """ScholarCloud wire tuples must match the declared schemas."""

    id = "wire-schema"
    description = ("a wire-protocol tuple's construction, guard, or "
                   "indexing disagrees with the declared schema")
    default_exempt = ("repro.analysis",)

    def run(self, project: Project) -> t.List:
        for ctx in self.contexts(project):
            scopes: t.List[ast.AST] = [ctx.tree]
            scopes.extend(
                sub for sub in ast.walk(ctx.tree)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)))
            for scope in scopes:
                self._check_scope(ctx, scope)
        return self.findings

    def _check_scope(self, ctx: ModuleContext, scope: ast.AST) -> None:
        nodes = list(self._walk_scope(scope))
        guards: t.Dict[str, str] = {}  # receiver ast.dump -> tag
        for sub in nodes:
            if isinstance(sub, ast.Tuple):
                self._check_literal(ctx, sub)
            elif isinstance(sub, ast.BoolOp) and isinstance(sub.op, ast.And):
                self._check_guard(ctx, sub)
            pair = _tag_guard(sub)
            if pair is not None:
                guards[pair[0]] = pair[1]
        for sub in nodes:
            if not isinstance(sub, ast.Subscript):
                continue
            receiver = ast.dump(sub.value)
            tag = guards.get(receiver)
            if tag is None:
                continue
            index = sub.slice
            if (isinstance(index, ast.Constant)
                    and isinstance(index.value, int)
                    and index.value >= max_arity(tag)):
                self.report(
                    ctx, sub,
                    f'indexing element {index.value} of an "{tag}" tuple, '
                    f"but its schema allows at most "
                    f"{max_arity(tag)} elements")

    @staticmethod
    def _walk_scope(scope: ast.AST) -> t.Iterator[ast.AST]:
        """Walk one function (or the module top level) without
        descending into nested function scopes."""
        roots = (scope.body if isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module))
            else [scope])
        stack: t.List[ast.AST] = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_literal(self, ctx: ModuleContext, node: ast.Tuple) -> None:
        if not node.elts:
            return
        head = node.elts[0]
        if not (isinstance(head, ast.Constant)
                and isinstance(head.value, str)):
            return
        tag = head.value
        if tag not in WIRE_SCHEMAS:
            return
        if not arity_ok(tag, len(node.elts)):
            self.report(
                ctx, node,
                f'"{tag}" tuple built with {len(node.elts)} elements; '
                f"the schema allows "
                f"{' or '.join(map(str, WIRE_SCHEMAS[tag]))}")

    def _check_guard(self, ctx: ModuleContext, guard: ast.BoolOp) -> None:
        tags: t.Dict[str, t.Tuple[str, ast.AST]] = {}
        lengths: t.Dict[str, t.Tuple[t.Tuple[int, ...], ast.AST]] = {}
        for value in guard.values:
            pair = _tag_guard(value)
            if pair is not None:
                tags[pair[0]] = (pair[1], value)
                continue
            measured = _length_guard(value)
            if measured is not None:
                lengths[measured[0]] = (measured[1], value)
        for receiver, (tag, _node) in tags.items():
            if receiver not in lengths:
                continue
            arities, node = lengths[receiver]
            bad = [arity for arity in arities
                   if not arity_ok(tag, arity)]
            if bad:
                self.report(
                    ctx, node,
                    f'guard tests len() in {sorted(arities)} for an '
                    f'"{tag}" tuple; the schema allows '
                    f"{' or '.join(map(str, WIRE_SCHEMAS[tag]))}")


def _tag_guard(node: ast.AST) -> t.Optional[t.Tuple[str, str]]:
    """``x[0] == "tag"`` -> (dump of x, tag)."""
    if not (isinstance(node, ast.Compare) and len(node.ops) == 1
            and isinstance(node.ops[0], ast.Eq)):
        return None
    left, right = node.left, node.comparators[0]
    if (isinstance(right, ast.Subscript)
            and not isinstance(left, ast.Subscript)):
        left, right = right, left
    if not (isinstance(left, ast.Subscript)
            and isinstance(left.slice, ast.Constant)
            and left.slice.value == 0
            and isinstance(right, ast.Constant)
            and isinstance(right.value, str)
            and right.value in WIRE_SCHEMAS):
        return None
    return ast.dump(left.value), right.value


def _length_guard(node: ast.AST
                  ) -> t.Optional[t.Tuple[str, t.Tuple[int, ...]]]:
    """``len(x) == k`` / ``len(x) in (a, b)`` -> (dump of x, arities)."""
    if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
        return None
    call = node.left
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
            and call.func.id == "len" and len(call.args) == 1):
        return None
    receiver = ast.dump(call.args[0])
    comparator = node.comparators[0]
    if isinstance(node.ops[0], ast.Eq):
        if (isinstance(comparator, ast.Constant)
                and isinstance(comparator.value, int)):
            return receiver, (comparator.value,)
        return None
    if isinstance(node.ops[0], ast.In):
        if isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            values = []
            for element in comparator.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, int)):
                    values.append(element.value)
                else:
                    return None
            return receiver, tuple(values)
    return None
