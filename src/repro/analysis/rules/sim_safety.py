"""Sim-safety rules: the discrete-event world must stay single-threaded.

The kernel is cooperative and virtual-time only.  Real concurrency
primitives (threads, asyncio, blocking sockets, wall-clock sleeps)
deadlock it or — worse — appear to work while silently desynchronizing
virtual and host time.  Only ``repro.realnet`` (the loopback proxies)
and the simulated socket layer are allowed near the real network.
"""

from __future__ import annotations

import ast
import typing as t

from ..engine import Rule

#: Modules that may touch real concurrency / the real network.
REALNET_EXEMPT: t.Tuple[str, ...] = ("repro.realnet", "repro.transport.sockets")

_FORBIDDEN_MODULES = {
    "threading": "threads break the single-threaded event loop",
    "asyncio": "asyncio's event loop conflicts with the simulation kernel",
    "socket": "real sockets block on the real network",
    "multiprocessing": "subprocesses cannot share simulated state",
    "concurrent": "thread/process pools break the single-threaded event loop",
    "selectors": "real I/O multiplexing has no place in virtual time",
    "subprocess": "child processes run in wall-clock time",
}


class ForbiddenImportRule(Rule):
    """No importing concurrency or real-network modules in sim code."""

    id = "sim-forbidden-import"
    description = ("threading/asyncio/socket/multiprocessing imports are "
                   "forbidden outside repro.realnet")
    default_exempt = REALNET_EXEMPT

    def _check(self, node: ast.AST, module: t.Optional[str]) -> None:
        if module is None:
            return
        root = module.split(".")[0]
        reason = _FORBIDDEN_MODULES.get(root)
        if reason is not None:
            self.report(node, f"import of {module!r} in simulated code: {reason}")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0:  # relative imports are repo-internal
            self._check(node, node.module)
        self.generic_visit(node)


class BlockingCallRule(Rule):
    """No wall-clock sleeps or blocking socket calls in sim code."""

    id = "sim-blocking-call"
    description = ("time.sleep / socket.* calls block the host thread; "
                   "yield sim.timeout(delay) instead")
    default_exempt = REALNET_EXEMPT

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if (base, attr) == ("time", "sleep"):
                self.report(node, "time.sleep() blocks the host thread; "
                                  "yield sim.timeout(delay) instead")
            elif base == "socket":
                self.report(node, f"socket.{attr}() touches the real network; "
                                  "use the simulated TransportLayer")
        self.generic_visit(node)
