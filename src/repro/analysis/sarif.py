"""SARIF 2.1.0 serialization of reprolint findings.

Just enough of the Static Analysis Results Interchange Format for
GitHub code scanning to render inline PR annotations: one run, one
driver, rule metadata from the registered packs, one result per
finding with a physical location.
"""

from __future__ import annotations

import json
import typing as t

from .engine import Finding, Severity, STALE_SUPPRESSION_ID

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptors() -> t.List[t.Dict[str, t.Any]]:
    from .rules import default_project_rules, default_rules

    descriptors = []
    for rule in [*default_rules(), *default_project_rules()]:
        descriptors.append({
            "id": rule.id,
            "shortDescription": {
                "text": rule.description or rule.id},
        })
    descriptors.append({
        "id": STALE_SUPPRESSION_ID,
        "shortDescription": {
            "text": "a reprolint suppression comment no longer "
                    "suppresses any finding"},
    })
    return descriptors


def to_sarif(findings: t.Sequence[Finding]) -> t.Dict[str, t.Any]:
    """Findings as a SARIF log dict (one run)."""
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col, 1),
                    },
                },
            }],
        })
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "https://github.com/repro/repro#static-analysis",
                    "rules": _rule_descriptors(),
                },
            },
            "results": results,
        }],
    }


def render_sarif(findings: t.Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2)
