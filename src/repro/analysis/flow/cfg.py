"""Intraprocedural control-flow graphs over Python function ASTs.

One :class:`Node` per simple statement; compound statements (``if``,
``while``, ``for``, ``with``) contribute a header node for the
expression they evaluate, with bodies built inline.  Three synthetic
nodes frame every graph: ``entry``, ``exit`` (normal returns) and
``error-exit`` (uncaught exceptions) — dataflow rules that care about
exception paths read the fact that reaches ``error-exit``.

Exception edges are attached per the repo's may-raise policy (the
caller supplies a ``may_raise`` predicate over nodes; explicit
``raise`` statements are handled here, with the raised type matched
against handler clauses via :data:`EXCEPTION_HIERARCHY`).  The model
is deliberately optimistic where Python is pessimistic: a statement
with no raise evidence gets no exception edge, and an unknown-typed
raise is assumed caught by the innermost enclosing handler set.  That
bias keeps leak findings actionable — every exception edge in the
graph corresponds to a failure mode the code visibly has.
"""

from __future__ import annotations

import ast
import enum
import typing as t

#: Child -> parent map for the repo's exception hierarchy (repro.errors)
#: plus the stdlib types the tree actually raises.  Used to decide
#: whether an ``except`` clause catches an explicitly-raised type.
EXCEPTION_HIERARCHY: t.Dict[str, str] = {
    "ReproError": "Exception",
    "SimulationError": "ReproError",
    "ProcessKilled": "SimulationError",
    "NetworkError": "ReproError",
    "AddressError": "NetworkError",
    "RoutingError": "NetworkError",
    "TransportError": "ReproError",
    "ConnectionRefused": "TransportError",
    "ConnectionReset": "TransportError",
    "ConnectionTimeout": "TransportError",
    "OverloadError": "TransportError",
    "DnsError": "ReproError",
    "NameResolutionError": "DnsError",
    "HttpError": "ReproError",
    "CryptoError": "ReproError",
    "BlindingError": "CryptoError",
    "PolicyError": "ReproError",
    "RegistrationError": "PolicyError",
    "MiddlewareError": "ReproError",
    "TunnelError": "MiddlewareError",
    "MeasurementError": "ReproError",
    "FaultError": "ReproError",
    "ConfigurationError": "ReproError",
    "ValueError": "Exception",
    "TypeError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "LookupError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "StopIteration": "Exception",
    "OSError": "Exception",
    "AssertionError": "Exception",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "Exception": "BaseException",
}


def exception_ancestors(name: str) -> t.Set[str]:
    """``name`` plus every ancestor reachable in the hierarchy."""
    seen = {name}
    while name in EXCEPTION_HIERARCHY:
        name = EXCEPTION_HIERARCHY[name]
        seen.add(name)
    return seen


class EdgeKind(enum.Enum):
    """Why control flows along an edge."""

    NORMAL = "normal"
    TRUE = "true"
    FALSE = "false"
    LOOP = "loop"
    EXCEPT = "except"


#: Node labels.
ENTRY = "entry"
EXIT = "exit"
ERROR_EXIT = "error-exit"
STMT = "stmt"
EXCEPT_HEAD = "except-head"
FINALLY_HEAD = "finally-head"


class Node:
    """One CFG node: a statement (or header) plus its role label."""

    __slots__ = ("index", "label", "stmt")

    def __init__(self, index: int, label: str,
                 stmt: t.Optional[ast.AST] = None) -> None:
        self.index = index
        self.label = label
        self.stmt = stmt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        at = getattr(self.stmt, "lineno", None)
        return f"<Node {self.index} {self.label}" + (
            f" L{at}>" if at else ">")


def node_asts(node: Node) -> t.List[ast.AST]:
    """The AST subtrees evaluated *at* this node.

    Compound statements only evaluate their header expression here
    (test, iterable, context manager); their bodies are separate
    nodes.  Nested function/class definitions contribute nothing —
    their bodies do not run at the definition site.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: t.List[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.ExceptHandler):
        return list(stmt.type and [stmt.type] or [])
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef, ast.Try)):
        return []
    return [stmt]


class CFG:
    """The graph: nodes, kinded edges in both directions."""

    def __init__(self, func: t.Union[ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda, None] = None) -> None:
        self.func = func
        self.nodes: t.List[Node] = []
        self.succs: t.Dict[int, t.List[t.Tuple[int, EdgeKind]]] = {}
        self.preds: t.Dict[int, t.List[t.Tuple[int, EdgeKind]]] = {}
        self.entry = self.add_node(ENTRY)
        self.exit = self.add_node(EXIT)
        self.error_exit = self.add_node(ERROR_EXIT)

    def add_node(self, label: str, stmt: t.Optional[ast.AST] = None) -> int:
        index = len(self.nodes)
        self.nodes.append(Node(index, label, stmt))
        self.succs[index] = []
        self.preds[index] = []
        return index

    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        if (dst, kind) in self.succs[src]:
            return
        self.succs[src].append((dst, kind))
        self.preds[dst].append((src, kind))

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def stmt_nodes(self) -> t.List[Node]:
        """All non-synthetic nodes, in creation (roughly source) order."""
        return [n for n in self.nodes if n.label == STMT]

    def node_for(self, stmt: ast.AST) -> t.Optional[Node]:
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None


#: Frontier = pending edges ``(source node, kind)`` awaiting a target.
_Frontier = t.List[t.Tuple[int, EdgeKind]]


class _HandlerFrame:
    """An active ``try`` whose ``except`` clauses can catch."""

    __slots__ = ("clauses",)

    def __init__(self, clauses):
        # [(type names or None for bare-except, head node index)]
        self.clauses = clauses


class _FinallyFrame:
    """An active ``try``/``finally`` interposed on every departure."""

    __slots__ = ("head", "pending_exc", "pending_return",
                 "pending_breaks", "pending_continues")

    def __init__(self, head: int) -> None:
        self.head = head
        self.pending_exc: t.List[t.Optional[str]] = []
        self.pending_return = False
        self.pending_breaks: t.List[t.Any] = []
        self.pending_continues: t.List[t.Any] = []


class _Loop:
    __slots__ = ("head", "breaks", "depth")

    def __init__(self, head: int, depth: int) -> None:
        self.head = head
        self.breaks: _Frontier = []
        self.depth = depth


class _Builder:
    def __init__(self, cfg: CFG,
                 may_raise: t.Callable[[Node], bool]) -> None:
        self.cfg = cfg
        self.may_raise = may_raise
        self.frames: t.List[t.Union[_HandlerFrame, _FinallyFrame]] = []
        self.loops: t.List[_Loop] = []

    # -- plumbing -------------------------------------------------------------

    def connect(self, frontier: _Frontier, target: int,
                kind: t.Optional[EdgeKind] = None) -> None:
        for src, edge_kind in frontier:
            self.cfg.add_edge(src, target, kind if kind is not None else edge_kind)

    def new_stmt(self, stmt: ast.AST, frontier: _Frontier) -> int:
        node = self.cfg.add_node(STMT, stmt)
        self.connect(frontier, node)
        return node

    # -- exception routing ----------------------------------------------------

    def route_exception(self, src: int, exc: t.Optional[str],
                        kind: EdgeKind = EdgeKind.EXCEPT) -> None:
        """Attach exception edges for an exception of type ``exc`` at ``src``.

        ``None`` means unknown type: assumed caught by the innermost
        handler set (edges to every clause), else routed outward.

        ``kind`` is EXCEPT when ``src`` is the raising statement (its
        effect never happened; dataflow propagates the in-fact), but
        NORMAL when ``src`` is the end of a ``finally`` body resuming a
        pending exception — that statement *did* complete, and a
        release it performed must reach the error exit.
        """
        ancestors = exception_ancestors(exc) if exc is not None else None
        for position in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[position]
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.head, kind)
                if exc not in frame.pending_exc:
                    frame.pending_exc.append(exc)
                return
            assert isinstance(frame, _HandlerFrame)
            if exc is None:
                for _names, head in frame.clauses:
                    self.cfg.add_edge(src, head, kind)
                return
            caught = False
            for names, head in frame.clauses:
                if names is None:  # bare except
                    self.cfg.add_edge(src, head, kind)
                    caught = True
                    break
                verdicts = [self._clause_verdict(name, exc, ancestors)
                            for name in names]
                if "yes" in verdicts:
                    self.cfg.add_edge(src, head, kind)
                    caught = True
                    break
                if "maybe" in verdicts:
                    self.cfg.add_edge(src, head, kind)
            if caught:
                return
        self.cfg.add_edge(src, self.cfg.error_exit, kind)

    @staticmethod
    def _clause_verdict(name: str, exc: str,
                        ancestors: t.Set[str]) -> str:
        if name in ("BaseException", "Exception") or name in ancestors:
            return "yes"
        if name in EXCEPTION_HIERARCHY or name == "BaseException":
            return "no"  # known type unrelated to (or narrower than) exc
        return "maybe"  # handler type we cannot place in the hierarchy

    # -- departure routing (return/break/continue through finally) -----------

    def route_return(self, src: int,
                     frames: t.Optional[t.List] = None) -> None:
        stack = self.frames if frames is None else frames
        for frame in reversed(stack):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.head, EdgeKind.NORMAL)
                frame.pending_return = True
                return
        self.cfg.add_edge(src, self.cfg.exit, EdgeKind.NORMAL)

    def route_break(self, src: int, loop: _Loop,
                    frames: t.Optional[t.List] = None) -> None:
        stack = self.frames if frames is None else frames
        for frame in reversed(stack[loop.depth:]):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.head, EdgeKind.NORMAL)
                frame.pending_breaks.append(loop)
                return
        loop.breaks.append((src, EdgeKind.NORMAL))

    def route_continue(self, src: int, loop: _Loop,
                       frames: t.Optional[t.List] = None) -> None:
        stack = self.frames if frames is None else frames
        for frame in reversed(stack[loop.depth:]):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.head, EdgeKind.NORMAL)
                frame.pending_continues.append(loop)
                return
        self.cfg.add_edge(src, loop.head, EdgeKind.LOOP)

    # -- construction ---------------------------------------------------------

    def build(self, body: t.Sequence[ast.stmt]) -> None:
        frontier = self.build_body(body, [(self.cfg.entry, EdgeKind.NORMAL)])
        self.connect(frontier, self.cfg.exit)

    def build_body(self, body: t.Sequence[ast.stmt],
                   frontier: _Frontier) -> _Frontier:
        for stmt in body:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        node = self.new_stmt(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            self.route_exception(node, raise_type(stmt))
            return []
        if self.may_raise(self.cfg.node(node)):
            self.route_exception(node, None)
        if isinstance(stmt, ast.Return):
            self.route_return(node)
            return []
        if isinstance(stmt, ast.Break) and self.loops:
            self.route_break(node, self.loops[-1])
            return []
        if isinstance(stmt, ast.Continue) and self.loops:
            self.route_continue(node, self.loops[-1])
            return []
        return [(node, EdgeKind.NORMAL)]

    def _build_if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        test = self.new_stmt(stmt, frontier)
        if self.may_raise(self.cfg.node(test)):
            self.route_exception(test, None)
        then_end = self.build_body(stmt.body, [(test, EdgeKind.TRUE)])
        if stmt.orelse:
            else_end = self.build_body(stmt.orelse, [(test, EdgeKind.FALSE)])
        else:
            else_end = [(test, EdgeKind.FALSE)]
        return then_end + else_end

    def _build_while(self, stmt: ast.While, frontier: _Frontier) -> _Frontier:
        test = self.new_stmt(stmt, frontier)
        if self.may_raise(self.cfg.node(test)):
            self.route_exception(test, None)
        loop = _Loop(test, len(self.frames))
        self.loops.append(loop)
        body_end = self.build_body(stmt.body, [(test, EdgeKind.TRUE)])
        self.loops.pop()
        self.connect(body_end, test, EdgeKind.LOOP)
        infinite = (isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
        exhausted: _Frontier = [] if infinite else [(test, EdgeKind.FALSE)]
        if stmt.orelse:
            exhausted = self.build_body(stmt.orelse, exhausted)
        return exhausted + loop.breaks

    def _build_for(self, stmt: t.Union[ast.For, ast.AsyncFor],
                   frontier: _Frontier) -> _Frontier:
        head = self.new_stmt(stmt, frontier)
        if self.may_raise(self.cfg.node(head)):
            self.route_exception(head, None)
        loop = _Loop(head, len(self.frames))
        self.loops.append(loop)
        body_end = self.build_body(stmt.body, [(head, EdgeKind.TRUE)])
        self.loops.pop()
        self.connect(body_end, head, EdgeKind.LOOP)
        exhausted: _Frontier = [(head, EdgeKind.FALSE)]
        if stmt.orelse:
            exhausted = self.build_body(stmt.orelse, exhausted)
        return exhausted + loop.breaks

    def _build_with(self, stmt: t.Union[ast.With, ast.AsyncWith],
                    frontier: _Frontier) -> _Frontier:
        head = self.new_stmt(stmt, frontier)
        if self.may_raise(self.cfg.node(head)):
            self.route_exception(head, None)
        return self.build_body(stmt.body, [(head, EdgeKind.NORMAL)])

    def _build_try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        fin_frame: t.Optional[_FinallyFrame] = None
        if stmt.finalbody:
            fin_frame = _FinallyFrame(
                self.cfg.add_node(FINALLY_HEAD, stmt))
            self.frames.append(fin_frame)
        clauses: t.List[t.Tuple[t.Optional[t.Tuple[str, ...]], int,
                                ast.ExceptHandler]] = []
        if stmt.handlers:
            for handler in stmt.handlers:
                head = self.cfg.add_node(EXCEPT_HEAD, handler)
                clauses.append((handler_type_names(handler), head, handler))
            self.frames.append(_HandlerFrame(
                [(names, head) for names, head, _h in clauses]))
        body_end = self.build_body(stmt.body, frontier)
        if stmt.handlers:
            self.frames.pop()
        if stmt.orelse:
            # Runs only after the body completed normally; its
            # exceptions escape this try's handlers.
            body_end = self.build_body(stmt.orelse, body_end)
        after: _Frontier = list(body_end)
        for _names, head, handler in clauses:
            after.extend(self.build_body(handler.body,
                                         [(head, EdgeKind.NORMAL)]))
        if fin_frame is not None:
            self.frames.pop()
            self.connect(after, fin_frame.head)
            fin_end = self.build_body(stmt.finalbody,
                                      [(fin_frame.head, EdgeKind.NORMAL)])
            # Departures that were intercepted resume from the
            # finally body's end, re-routed against the outer stack.
            for exc in fin_frame.pending_exc:
                for src, _kind in fin_end:
                    self.route_exception(src, exc, kind=EdgeKind.NORMAL)
            if fin_frame.pending_return:
                for src, _kind in fin_end:
                    self.route_return(src)
            for loop in fin_frame.pending_breaks:
                for src, _kind in fin_end:
                    self.route_break(src, loop)
            for loop in fin_frame.pending_continues:
                for src, _kind in fin_end:
                    self.route_continue(src, loop)
            after = fin_end
        return after


def raise_type(stmt: ast.Raise) -> t.Optional[str]:
    """Type name of an explicit raise, or None when unknowable."""
    exc: t.Optional[ast.expr] = stmt.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def handler_type_names(
        handler: ast.ExceptHandler) -> t.Optional[t.Tuple[str, ...]]:
    """Names an ``except`` clause catches; None for a bare except."""
    if handler.type is None:
        return None
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names = []
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return tuple(names)


def never_raises(_node: Node) -> bool:
    """The trivial may-raise policy: nothing raises but ``raise``."""
    return False


def build_cfg(func: t.Union[ast.FunctionDef, ast.AsyncFunctionDef],
              may_raise: t.Callable[[Node], bool] = never_raises) -> CFG:
    """Build the CFG of one function body.

    ``may_raise`` decides, per node, whether an exception edge should
    leave it (in addition to explicit ``raise`` statements, which are
    always routed).  The default says no — pass the repo policy from
    :mod:`repro.analysis.flow.resources` for real analyses.
    """
    cfg = CFG(func)
    _Builder(cfg, may_raise).build(func.body)
    return cfg
