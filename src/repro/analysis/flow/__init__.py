"""CFG construction, dataflow solving, and flow-rule support tables."""

from .cfg import (CFG, EdgeKind, Node, build_cfg, node_asts,
                  EXCEPTION_HIERARCHY, exception_ancestors)
from .dataflow import ForwardAnalysis, ReachingDefinitions, assigned_names
from .callgraph import CallGraph, FunctionInfo
from .resources import (RESOURCE_SPECS, ResourceSpec, ResourceTracker,
                        RaiseOracle, may_raise_policy, find_leaks,
                        UNACQUIRED, RELEASED, ACQUIRED)
from .manifest import (STREAM_MANIFEST, DYNAMIC_STREAM_PREFIXES,
                       REGISTRY_OWNERS)
from .wire import WIRE_SCHEMAS, arity_ok, max_arity

__all__ = [
    "CFG", "EdgeKind", "Node", "build_cfg", "node_asts",
    "EXCEPTION_HIERARCHY", "exception_ancestors",
    "ForwardAnalysis", "ReachingDefinitions", "assigned_names",
    "CallGraph", "FunctionInfo",
    "RESOURCE_SPECS", "ResourceSpec", "ResourceTracker", "RaiseOracle",
    "may_raise_policy", "find_leaks",
    "UNACQUIRED", "RELEASED", "ACQUIRED",
    "STREAM_MANIFEST", "DYNAMIC_STREAM_PREFIXES", "REGISTRY_OWNERS",
    "WIRE_SCHEMAS", "arity_ok", "max_arity",
]
