"""A worklist solver for forward dataflow problems over a CFG.

Analyses subclass :class:`ForwardAnalysis` and define the fact
domain: the entry fact, the transfer function, and the join.  The
solver propagates facts along edges until fixpoint; along ``EXCEPT``
edges it propagates :meth:`exceptional_out`, which defaults to the
*in*-fact — the Python model where an exception aborts a statement
before its effect lands (an assignment that raised never assigned).

Facts must be comparable with ``==`` and must not be mutated in
place; transfer functions return fresh values.
"""

from __future__ import annotations

import ast
import typing as t

from .cfg import CFG, EdgeKind, Node, node_asts

Fact = t.TypeVar("Fact")


class ForwardAnalysis(t.Generic[Fact]):
    """One forward dataflow problem; see module docstring."""

    def initial(self, cfg: CFG) -> Fact:
        """The fact entering the function."""
        raise NotImplementedError

    def transfer(self, node: Node, fact: Fact) -> Fact:
        """The fact after ``node`` executes normally."""
        raise NotImplementedError

    def exceptional_out(self, node: Node, fact: Fact) -> Fact:
        """The fact flowing along ``node``'s exception edges."""
        return fact

    def join(self, left: Fact, right: Fact) -> Fact:
        """Combine facts where control paths merge."""
        raise NotImplementedError

    def run(self, cfg: CFG) -> t.Dict[int, Fact]:
        """Solve to fixpoint; returns the *in*-fact of each reached node.

        Unreachable nodes (dead handlers, code after an infinite
        loop) are absent from the result.
        """
        in_facts: t.Dict[int, Fact] = {cfg.entry: self.initial(cfg)}
        work: t.List[int] = [cfg.entry]
        while work:
            index = work.pop()
            node = cfg.node(index)
            fact = in_facts[index]
            normal = self.transfer(node, fact)
            exceptional = self.exceptional_out(node, fact)
            for succ, kind in cfg.succs[index]:
                out = exceptional if kind is EdgeKind.EXCEPT else normal
                if succ not in in_facts:
                    in_facts[succ] = out
                    work.append(succ)
                else:
                    joined = self.join(in_facts[succ], out)
                    if joined != in_facts[succ]:
                        in_facts[succ] = joined
                        work.append(succ)
        return in_facts


def assigned_names(node: Node) -> t.Set[str]:
    """Names (re)bound when ``node`` executes."""
    stmt = node.stmt
    names: t.Set[str] = set()
    if stmt is None:
        return names

    def targets_of(target: ast.expr) -> t.Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from targets_of(element)
        elif isinstance(target, ast.Starred):
            yield from targets_of(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.update(targets_of(target))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        names.update(targets_of(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.update(targets_of(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(targets_of(item.optional_vars))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.add(stmt.name)
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.add(stmt.name)
    # Walrus targets inside any evaluated expression.
    for tree in node_asts(node):
        for sub in ast.walk(tree):
            if isinstance(sub, ast.NamedExpr):
                names.update(targets_of(sub.target))
    return names


class ReachingDefinitions(ForwardAnalysis[t.FrozenSet[t.Tuple[str, int]]]):
    """Classic reaching definitions: facts are ``{(name, def node)}``.

    Function parameters reach as ``(name, entry)``, so a variable
    that is only ever a parameter still has a definition site.
    """

    def initial(self, cfg: CFG) -> t.FrozenSet[t.Tuple[str, int]]:
        params: t.Set[t.Tuple[str, int]] = set()
        func = cfg.func
        if func is not None and hasattr(func, "args"):
            arguments = func.args
            every = [*arguments.posonlyargs, *arguments.args,
                     *arguments.kwonlyargs]
            if arguments.vararg:
                every.append(arguments.vararg)
            if arguments.kwarg:
                every.append(arguments.kwarg)
            params = {(argument.arg, cfg.entry) for argument in every}
        return frozenset(params)

    def transfer(self, node: Node,
                 fact: t.FrozenSet[t.Tuple[str, int]]
                 ) -> t.FrozenSet[t.Tuple[str, int]]:
        killed = assigned_names(node)
        if not killed:
            return fact
        kept = {pair for pair in fact if pair[0] not in killed}
        kept.update((name, node.index) for name in killed)
        return frozenset(kept)

    def join(self, left, right):
        return left | right

    def defs_of(self, fact: t.FrozenSet[t.Tuple[str, int]],
                name: str) -> t.Set[int]:
        """Node indices whose definition of ``name`` reaches here."""
        return {index for defined, index in fact if defined == name}
