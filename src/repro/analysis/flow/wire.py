"""The declared shapes of ScholarCloud wire-protocol tuples.

Every control message on the browser<->domestic and
domestic<->remote legs is a tuple whose first element is a string
tag.  The ``wire-schema`` rule checks construction sites (tuple
literals), guard sites (``len(x) == k and x[0] == "tag"``), and
indexing under a tag guard against this one table, so a producer and
a consumer cannot silently disagree about a message's arity.
"""

from __future__ import annotations

import typing as t

#: Tag -> allowed tuple arities (tag element included).
#: Two-arity entries are messages that grew an optional trailing
#: field (the deadline wire format) while staying backward
#: compatible.
WIRE_SCHEMAS: t.Dict[str, t.Tuple[int, ...]] = {
    "sc-connect": (3, 4),
    "sc-open": (3, 4),
    "sc-overload": (2,),
    "sc-refused": (2,),
    "sc-ready": (1,),
    "sc-error": (1,),
    "sc": (3,),
}


def max_arity(tag: str) -> int:
    return max(WIRE_SCHEMAS[tag])


def arity_ok(tag: str, arity: int) -> bool:
    return arity in WIRE_SCHEMAS.get(tag, ())
