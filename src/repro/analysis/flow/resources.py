"""Resource acquire/release tracking and the repo's may-raise policy.

Two resource styles are tracked, declared in :data:`RESOURCE_SPECS`:

* **result-style** — the resource is the value of an acquiring call
  (``conn = yield transport.connect_tcp(...)``); released by calling
  a release method on the variable, or *escaped* (ownership handed
  off) by returning it, storing it, or passing it to a synchronous
  call.
* **receiver-style** — the resource is a slot inside the receiver
  object (``self.limiter.try_acquire()``, ``yield from
  self.admission.admit(...)``); released by calling the release
  method on the *same dotted receiver*, directly, inside a deferred
  callback lambda, or via a same-class wrapper method (resolved
  through the call graph).

The may-raise policy decides which statements get exception edges.
It is optimistic by design (see :mod:`.cfg`): only explicit raises,
awaits, generator-driving yields outside a small never-failing set,
calls on the known-raising list, and ``self`` methods whose own CFG
provably reaches its error exit (the :class:`RaiseOracle`).
"""

from __future__ import annotations

import ast
import typing as t

from .callgraph import CallGraph, FunctionInfo
from .cfg import CFG, Node, build_cfg, node_asts

#: Yielded calls that never raise: sim primitives that only wait.
NEVER_FAILING_YIELDS: t.FrozenSet[str] = frozenset({"submit", "timeout"})

#: Synchronous calls (by attribute/function name) that may raise.
MAY_RAISE_CALLS: t.FrozenSet[str] = frozenset(
    {"send_message", "unwrap_forward", "put"})

#: Resource lattice states; join is ``max`` (may-leak analysis).
UNACQUIRED, RELEASED, ACQUIRED = 0, 1, 2


class ResourceSpec:
    """One resource kind: how it is acquired and released."""

    __slots__ = ("kind", "style", "acquire_methods", "release_methods")

    def __init__(self, kind: str, style: str,
                 acquire_methods: t.Iterable[str],
                 release_methods: t.Iterable[str]) -> None:
        self.kind = kind
        self.style = style  # "result" | "receiver"
        self.acquire_methods = frozenset(acquire_methods)
        self.release_methods = frozenset(release_methods)


RESOURCE_SPECS: t.Tuple[ResourceSpec, ...] = (
    ResourceSpec("connection", "result",
                 acquire_methods=("connect_tcp", "open_stream"),
                 release_methods=("close",)),
    ResourceSpec("slot", "receiver",
                 acquire_methods=("try_acquire", "acquire", "admit"),
                 release_methods=("release",)),
)


def dotted(expr: ast.AST) -> t.Optional[str]:
    """``self.admission`` -> ``"self.admission"``; None if not a chain."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = dotted(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def call_name(call: ast.Call) -> t.Optional[str]:
    """The method/function name a call invokes."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def self_method_name(func: ast.expr) -> t.Optional[str]:
    """``self.m`` -> ``"m"``; None for anything else."""
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"):
        return func.attr
    return None


# -- the may-raise policy ----------------------------------------------------------


class RaiseOracle:
    """Answers "can driving/calling this function raise?" via its CFG.

    A function may raise iff its error-exit node has predecessors
    under this same policy — so the judgement is interprocedural
    through ``self`` calls, memoized, and conservative (True) on
    recursion cycles and unresolved callees.
    """

    def __init__(self, callgraph: CallGraph) -> None:
        self.callgraph = callgraph
        self._memo: t.Dict[str, bool] = {}
        self._in_progress: t.Set[str] = set()

    def function_may_raise(self, info: FunctionInfo) -> bool:
        cached = self._memo.get(info.qualname)
        if cached is not None:
            return cached
        if info.qualname in self._in_progress:
            return True
        self._in_progress.add(info.qualname)
        try:
            cfg = build_cfg(info.node, may_raise=may_raise_policy(self, info))
            result = bool(cfg.preds[cfg.error_exit])
        finally:
            self._in_progress.discard(info.qualname)
        self._memo[info.qualname] = result
        return result

    def call_may_raise(self, owner: t.Optional[FunctionInfo],
                       method: str, driven: bool) -> bool:
        """May ``self.method(...)`` raise at the call site?

        ``driven`` distinguishes ``yield from self.m()`` (the callee
        body runs) from a plain call (which, for a generator, only
        creates the generator object and cannot raise).
        """
        callee = None
        if owner is not None:
            callee = self.callgraph.method(owner.module, owner.cls, method)
        if callee is None:
            return driven  # unknown: borrow-driving is risky, sync is not
        if not driven and callee.is_generator:
            return False
        return self.function_may_raise(callee)


def may_raise_policy(oracle: t.Optional[RaiseOracle],
                     owner: t.Optional[FunctionInfo]
                     ) -> t.Callable[[Node], bool]:
    """The per-node may-raise predicate handed to :func:`build_cfg`."""

    def expr_may_raise(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Lambda):
            return False  # body runs later, elsewhere
        if isinstance(expr, ast.Await):
            return True
        if isinstance(expr, ast.Yield):
            value = expr.value
            if isinstance(value, ast.Call):
                if call_name(value) in NEVER_FAILING_YIELDS:
                    return any(expr_may_raise(arg) for arg in value.args)
                return True
            return False if value is None else expr_may_raise(value)
        if isinstance(expr, ast.YieldFrom):
            value = expr.value
            if isinstance(value, ast.Call):
                method = self_method_name(value.func)
                if method is not None and oracle is not None:
                    return oracle.call_may_raise(owner, method, driven=True)
            return True
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in MAY_RAISE_CALLS:
                return True
            method = self_method_name(expr.func)
            if (method is not None and oracle is not None
                    and oracle.call_may_raise(owner, method, driven=False)):
                return True
            children = [expr.func, *expr.args,
                        *[kw.value for kw in expr.keywords]]
            return any(expr_may_raise(child) for child in children)
        return any(expr_may_raise(child)
                   for child in ast.iter_child_nodes(expr))

    def node_may_raise(node: Node) -> bool:
        return any(expr_may_raise(tree) for tree in node_asts(node))

    return node_may_raise


# -- resource tracking -------------------------------------------------------------


#: Acquire-site key: ("var", name, node index) or ("recv", dotted path).
Key = t.Tuple[str, ...]


def _walk_skipping_lambdas(tree: ast.AST) -> t.Iterator[ast.AST]:
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ResourceTracker:
    """Per-function resource-state dataflow (see module docstring).

    Facts map acquire-site keys to lattice states; the join is
    element-wise ``max``, so ACQUIRED ("may still be held") wins at
    merges.  Along exception edges the *in*-fact propagates — an
    acquiring statement that raises never acquired.
    """

    def __init__(self, cfg: CFG, owner: t.Optional[FunctionInfo],
                 callgraph: t.Optional[CallGraph]) -> None:
        self.cfg = cfg
        self.owner = owner
        self.callgraph = callgraph
        #: key -> node index of the (first) acquire site.
        self.sites: t.Dict[Key, int] = {}
        #: key -> governing spec.
        self.specs: t.Dict[Key, ResourceSpec] = {}
        self._wrapper_memo: t.Dict[t.Tuple[str, str], bool] = {}
        self._scan_acquires()

    # -- acquire-site discovery ------------------------------------------------

    def _scan_acquires(self) -> None:
        for node in self.cfg.stmt_nodes():
            if isinstance(node.stmt, (ast.With, ast.AsyncWith)):
                continue  # context managers release themselves
            for tree in node_asts(node):
                for sub in _walk_skipping_lambdas(tree):
                    if not isinstance(sub, ast.Call):
                        continue
                    if not isinstance(sub.func, ast.Attribute):
                        continue
                    name = sub.func.attr
                    for spec in RESOURCE_SPECS:
                        if name not in spec.acquire_methods:
                            continue
                        key = self._key_for(node, sub, spec)
                        if key is not None and key not in self.sites:
                            self.sites[key] = node.index
                            self.specs[key] = spec

    def _key_for(self, node: Node, call: ast.Call,
                 spec: ResourceSpec) -> t.Optional[Key]:
        if spec.style == "receiver":
            receiver = dotted(call.func.value)  # type: ignore[union-attr]
            return None if receiver is None else ("recv", receiver)
        stmt = node.stmt
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            return ("var", stmt.targets[0].id, str(node.index))
        return None

    # -- transfer ingredients --------------------------------------------------

    def _releases(self, node: Node, key: Key) -> bool:
        spec = self.specs[key]
        for tree in node_asts(node):
            for sub in ast.walk(tree):
                if not (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)):
                    continue
                if sub.func.attr in spec.release_methods:
                    receiver = sub.func.value
                    if spec.style == "receiver":
                        if dotted(receiver) == key[1]:
                            return True
                    elif (isinstance(receiver, ast.Name)
                          and receiver.id == key[1]):
                        return True
                if (spec.style == "receiver"
                        and self_method_name(sub.func) is not None
                        and self._wrapper_releases(
                            sub.func.attr, key[1], spec)):
                    return True
        return False

    def _wrapper_releases(self, method: str, receiver: str,
                          spec: ResourceSpec) -> bool:
        """Does a same-class helper release this receiver's slot?"""
        if self.callgraph is None or self.owner is None:
            return False
        callee = self.callgraph.method(
            self.owner.module, self.owner.cls, method)
        if callee is None:
            return False
        memo_key = (callee.qualname, receiver)
        cached = self._wrapper_memo.get(memo_key)
        if cached is not None:
            return cached
        result = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in spec.release_methods
            and dotted(sub.func.value) == receiver
            for sub in ast.walk(callee.node))
        self._wrapper_memo[memo_key] = result
        return result

    def _escapes(self, node: Node, name: str) -> bool:
        """Does ownership of result-style ``name`` leave this function?

        Benign occurrences — method receivers (``conn.close()``),
        arguments of *driven* calls (``yield from self._auth_on(conn)``
        borrows), None-comparisons, and store targets — do not count.
        Anything else (return, store into an attribute, argument of a
        synchronous call) transfers ownership.
        """
        benign: t.Set[int] = set()
        occurrences: t.List[ast.Name] = []
        for tree in node_asts(node):
            for sub in ast.walk(tree):
                if isinstance(sub, ast.Name) and sub.id == name:
                    occurrences.append(sub)
                    if isinstance(sub.ctx, ast.Store):
                        benign.add(id(sub))
                elif (isinstance(sub, ast.Attribute)
                      and isinstance(sub.value, ast.Name)
                      and sub.value.id == name):
                    benign.add(id(sub.value))
                elif (isinstance(sub, (ast.Yield, ast.YieldFrom))
                      and isinstance(sub.value, ast.Call)):
                    for arg in [*sub.value.args,
                                *[kw.value for kw in sub.value.keywords]]:
                        if isinstance(arg, ast.Name) and arg.id == name:
                            benign.add(id(arg))
                elif isinstance(sub, ast.Compare):
                    operands = [sub.left, *sub.comparators]
                    if any(isinstance(op, ast.Constant) and op.value is None
                           for op in operands):
                        for op in operands:
                            if isinstance(op, ast.Name) and op.id == name:
                                benign.add(id(op))
        return any(id(occ) not in benign for occ in occurrences)

    # -- the dataflow problem --------------------------------------------------

    def initial(self) -> t.Dict[Key, int]:
        return {key: UNACQUIRED for key in self.sites}

    def transfer(self, node: Node,
                 fact: t.Dict[Key, int]) -> t.Dict[Key, int]:
        out = dict(fact)
        for key in self.sites:
            if self._releases(node, key):
                out[key] = RELEASED
            elif key[0] == "var" and out[key] == ACQUIRED \
                    and self._escapes(node, key[1]):
                out[key] = RELEASED
        for key, site in self.sites.items():
            if site == node.index:
                out[key] = ACQUIRED
        return out

    def leaks(self) -> t.List[t.Tuple[Node, Key]]:
        """Acquire sites that may still be held at the error exit."""
        if not self.sites:
            return []
        from .dataflow import ForwardAnalysis

        tracker = self

        class _Analysis(ForwardAnalysis):
            def initial(self, cfg):
                return tracker.initial()

            def transfer(self, node, fact):
                return tracker.transfer(node, fact)

            def join(self, left, right):
                return {key: max(left[key], right[key]) for key in left}

        facts = _Analysis().run(self.cfg)
        at_error = facts.get(self.cfg.error_exit)
        if at_error is None:
            return []
        return [(self.cfg.node(self.sites[key]), key)
                for key, state in sorted(at_error.items())
                if state == ACQUIRED]


def find_leaks(func: t.Union[ast.FunctionDef, ast.AsyncFunctionDef],
               owner: t.Optional[FunctionInfo],
               callgraph: t.Optional[CallGraph],
               oracle: t.Optional[RaiseOracle]
               ) -> t.List[t.Tuple[Node, Key, ResourceSpec]]:
    """Leaked acquire sites of one function under the repo policy."""
    cfg = build_cfg(func, may_raise=may_raise_policy(oracle, owner))
    tracker = ResourceTracker(cfg, owner, callgraph)
    return [(node, key, tracker.specs[key])
            for node, key in tracker.leaks()]
