"""The registry of named RNG streams and who may draw them.

Variance isolation (see :mod:`repro.sim.rng`) only holds if stream
names are globally unique and owned: two components sharing a name
silently couple their draws, and a typo silently *decouples* a
component from the stream its experiment config seeds.  This manifest
is the single source of truth the ``rng-stream-registry`` rule checks
against; add a line here when introducing a stream.
"""

from __future__ import annotations

import typing as t

#: Stream name -> dotted module prefixes allowed to draw it.
STREAM_MANIFEST: t.Dict[str, t.Tuple[str, ...]] = {
    "link.loss": ("repro.net",),
    "fluid.loss": ("repro.perf",),
    "gfw.interference": ("repro.gfw", "repro.measure"),
    "mps": ("repro.policy",),
    "faults.schedule": ("repro.measure",),
    "scalability-offsets": ("repro.measure",),
    "cache.zipf": ("repro.measure", "repro.fleet"),
    "survey.population": ("repro.measure",),
    "resilience.sc-client": ("repro.core",),
    "resilience.sc-domestic": ("repro.core",),
    "failover.health": ("repro.faults",),
    "fleet.detector": ("repro.fleet",),
    "fleet.offsets": ("repro.fleet",),
    "survival.hedge": ("repro.fleet",),
    "survival.retry": ("repro.fleet",),
    "survival.offsets": ("repro.fleet",),
}

#: Dynamic (f-string) stream name prefixes -> allowed module prefixes.
#: ``f"link:{src}->{dst}"`` streams are per-edge and owned by the
#: network substrate.
DYNAMIC_STREAM_PREFIXES: t.Dict[str, t.Tuple[str, ...]] = {
    "link:": ("repro.net",),
    #: Per-region firewall interference streams (multi-region fleets
    #: keep each region's draws variance-isolated).
    "gfw.interference:": ("repro.fleet",),
}

#: Modules allowed to construct an RngRegistry.  Everyone else must
#: draw streams from a Simulator-owned registry (``sim.rng``) so one
#: experiment seed governs every draw.
REGISTRY_OWNERS: t.Tuple[str, ...] = (
    "repro.sim",
    "repro.measure.testbed",
)
