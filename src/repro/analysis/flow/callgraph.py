"""A project-wide call graph for transitive queries.

Resolution is name-based and deliberately modest: ``self.method()``
resolves within the receiver's class (then its bases, project-wide by
class name), and bare ``function()`` calls resolve to module-level
functions of the same module.  That covers the repo's dominant call
shapes — proxy helpers, middleware hops, release wrappers — without
pretending to do type inference.  Unresolved calls simply yield no
edge; clients must treat absence as "unknown", not "safe".
"""

from __future__ import annotations

import ast
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import ModuleContext


class FunctionInfo:
    """One function or method discovered in the project."""

    __slots__ = ("module", "cls", "name", "qualname", "node", "ctx",
                 "is_generator")

    def __init__(self, module: str, cls: t.Optional[str], name: str,
                 node: t.Union[ast.FunctionDef, ast.AsyncFunctionDef],
                 ctx: "ModuleContext") -> None:
        self.module = module
        self.cls = cls
        self.name = name
        self.qualname = ".".join(
            part for part in (module, cls, name) if part)
        self.node = node
        self.ctx = ctx
        self.is_generator = _is_generator(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


def _is_generator(node: t.Union[ast.FunctionDef,
                                ast.AsyncFunctionDef]) -> bool:
    """Does calling this function merely create a generator?

    Yields inside nested defs/lambdas belong to those functions, so
    the scan does not descend into them.
    """
    stack: t.List[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


class CallGraph:
    """All project functions plus name-resolved call edges."""

    def __init__(self) -> None:
        self.functions: t.Dict[str, FunctionInfo] = {}
        self._methods: t.Dict[t.Tuple[str, t.Optional[str], str],
                              FunctionInfo] = {}
        self._bases: t.Dict[t.Tuple[str, str], t.Tuple[str, ...]] = {}
        self._classes_by_name: t.Dict[str, t.List[t.Tuple[str, str]]] = {}

    @classmethod
    def build(cls, contexts: t.Sequence["ModuleContext"]) -> "CallGraph":
        graph = cls()
        for ctx in contexts:
            graph._collect(ctx)
        return graph

    def _collect(self, ctx: "ModuleContext") -> None:
        def visit(node: ast.AST, owner_cls: t.Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    bases = tuple(
                        base.id if isinstance(base, ast.Name) else base.attr
                        for base in child.bases
                        if isinstance(base, (ast.Name, ast.Attribute)))
                    self._bases[(ctx.module, child.name)] = bases
                    self._classes_by_name.setdefault(child.name, []).append(
                        (ctx.module, child.name))
                    visit(child, child.name)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    info = FunctionInfo(ctx.module, owner_cls, child.name,
                                        child, ctx)
                    self.functions[info.qualname] = info
                    self._methods[(ctx.module, owner_cls, child.name)] = info
                    # Nested defs are collected under the same class
                    # key space but shadowed lookups favour the outer.
                    visit(child, owner_cls)

        visit(ctx.tree, None)

    # -- resolution -----------------------------------------------------------

    def function(self, module: str, name: str) -> t.Optional[FunctionInfo]:
        """A module-level function of ``module``."""
        return self._methods.get((module, None, name))

    def method(self, module: str, cls: t.Optional[str],
               name: str) -> t.Optional[FunctionInfo]:
        """Resolve ``self.name()`` from a method of ``module.cls``.

        Walks the class, then its bases by name (same module first,
        then any project class of that name).
        """
        direct = self._methods.get((module, cls, name))
        if direct is not None:
            return direct
        if cls is None:
            return None
        seen: t.Set[t.Tuple[str, str]] = set()
        queue: t.List[t.Tuple[str, str]] = [(module, cls)]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            hit = self._methods.get((current[0], current[1], name))
            if hit is not None:
                return hit
            for base in self._bases.get(current, ()):
                if (current[0], base) in self._bases:
                    queue.append((current[0], base))
                else:
                    queue.extend(self._classes_by_name.get(base, ()))
        return None

    def callees(self, info: FunctionInfo) -> t.List[FunctionInfo]:
        """Resolved direct callees of ``info`` (self + module calls)."""
        out: t.List[FunctionInfo] = []
        seen: t.Set[str] = set()
        for call in (n for n in ast.walk(info.node)
                     if isinstance(n, ast.Call)):
            target: t.Optional[FunctionInfo] = None
            func = call.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"):
                target = self.method(info.module, info.cls, func.attr)
            elif isinstance(func, ast.Name):
                target = self.function(info.module, func.id)
            if target is not None and target.qualname not in seen:
                seen.add(target.qualname)
                out.append(target)
        return out

    def transitive_callees(self, info: FunctionInfo) -> t.Set[str]:
        """Qualnames reachable from ``info`` through resolved edges."""
        reached: t.Set[str] = set()
        queue = [info]
        while queue:
            current = queue.pop()
            for callee in self.callees(current):
                if callee.qualname not in reached:
                    reached.add(callee.qualname)
                    queue.append(callee)
        return reached
