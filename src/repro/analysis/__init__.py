"""reprolint: static determinism & protocol-safety analysis for this repo.

Run it from the repo root::

    python -m repro.analysis src/repro

or programmatically::

    from repro.analysis import Analyzer, load_config
    findings = Analyzer(config=load_config()).analyze_paths(["src/repro"])

The rule pack enforces the invariants the reproduced figures depend on:
determinism (all randomness via seeded ``RngRegistry`` streams, no
wall-clock reads), sim-safety (no threads/asyncio/blocking I/O outside
``repro.realnet``), codec hygiene (no str/bytes mixing on wire paths),
and process correctness (generator bodies invoked, only Events yielded).
"""

from .engine import (
    Analyzer,
    Config,
    Finding,
    ModuleContext,
    Project,
    ProjectRule,
    Rule,
    STALE_SUPPRESSION_ID,
    Severity,
    in_scope,
    load_config,
    module_name_for,
    parse_config,
    render_findings,
)
from .rules import PROJECT_RULES, RULES, default_project_rules, default_rules
from .sarif import render_sarif, to_sarif

__all__ = [
    "PROJECT_RULES",
    "RULES",
    "STALE_SUPPRESSION_ID",
    "Analyzer",
    "Config",
    "Finding",
    "ModuleContext",
    "Project",
    "ProjectRule",
    "Rule",
    "Severity",
    "default_project_rules",
    "default_rules",
    "in_scope",
    "load_config",
    "module_name_for",
    "parse_config",
    "render_findings",
    "render_sarif",
    "to_sarif",
]
