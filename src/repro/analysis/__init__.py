"""reprolint: static determinism & protocol-safety analysis for this repo.

Run it from the repo root::

    python -m repro.analysis src/repro

or programmatically::

    from repro.analysis import Analyzer, load_config
    findings = Analyzer(config=load_config()).analyze_paths(["src/repro"])

The rule pack enforces the invariants the reproduced figures depend on:
determinism (all randomness via seeded ``RngRegistry`` streams, no
wall-clock reads), sim-safety (no threads/asyncio/blocking I/O outside
``repro.realnet``), codec hygiene (no str/bytes mixing on wire paths),
and process correctness (generator bodies invoked, only Events yielded).
"""

from .engine import (
    Analyzer,
    Config,
    Finding,
    ModuleContext,
    Rule,
    Severity,
    in_scope,
    load_config,
    module_name_for,
    parse_config,
    render_findings,
)
from .rules import RULES, default_rules

__all__ = [
    "RULES",
    "Analyzer",
    "Config",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "default_rules",
    "in_scope",
    "load_config",
    "module_name_for",
    "parse_config",
    "render_findings",
]
