"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit status: 0 when clean (warnings allowed), 1 when any error-severity
finding is unsuppressed, 2 on usage problems.
"""

from __future__ import annotations

import argparse
import sys
import typing as t
from pathlib import Path

from .engine import (Analyzer, STALE_SUPPRESSION_ID, Severity, load_config,
                     parse_config, render_findings)
from .rules import default_project_rules, default_rules


def main(argv: t.Optional[t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: determinism & protocol-safety linter")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--sarif", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="emit findings as SARIF 2.1.0 to PATH "
                             "(or stdout when no PATH is given)")
    parser.add_argument("--config", type=Path, default=None,
                        help="pyproject.toml to read [tool.reprolint] from")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule pack and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in [*default_rules(), *default_project_rules()]:
            print(f"{rule.id:24} {rule.severity.value:8} {rule.description}")
        print(f"{STALE_SUPPRESSION_ID:24} {'error':8} "
              "suppression comment that no longer suppresses any finding")
        return 0

    paths = [Path(p) for p in args.paths]
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            print("no paths given and ./src/repro not found", file=sys.stderr)
            return 2
        paths = [default]
    for path in paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2

    if args.config is not None:
        config = parse_config(args.config)
    else:
        config = load_config(paths[0].resolve())
    analyzer = Analyzer(config=config)
    findings = analyzer.analyze_paths(paths)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if args.sarif is not None:
        from .sarif import render_sarif

        document = render_sarif(findings)
        if args.sarif == "-":
            print(document)
        else:
            Path(args.sarif).write_text(document + "\n", encoding="utf-8")
            print(f"reprolint: wrote SARIF to {args.sarif} "
                  f"({len(findings)} finding(s), {len(errors)} error(s))",
                  file=sys.stderr)
        return 1 if errors else 0
    if findings:
        print(render_findings(findings, as_json=args.as_json))
    if not args.as_json:
        print(f"reprolint: {len(findings)} finding(s), {len(errors)} error(s)",
              file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
