"""The reprolint engine: rule framework, suppressions, findings, config.

The analyzer walks Python sources with :mod:`ast` and applies a pack of
:class:`Rule` visitors to each module.  Rules are scoped by dotted
module prefix (``repro.net`` covers ``repro.net.link``), so invariants
that only hold inside the simulator — determinism, no blocking calls —
are not imposed on the loopback proxies in ``repro.realnet``.

Suppressions are comments:

* ``# reprolint: disable=rule-id`` trailing a code line suppresses that
  rule on that line only;
* the same comment on a line of its own suppresses the rule for the
  whole file;
* ``disable=all`` suppresses every rule.

Configuration is read from ``[tool.reprolint]`` in ``pyproject.toml``
(see :func:`load_config`); everything degrades to built-in defaults
when no config file or TOML parser is available.
"""

from __future__ import annotations

import ast
import enum
import fnmatch
import json
import re
import typing as t
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([\w\-, ]+)")


class Severity(enum.Enum):
    """How bad a finding is; only errors fail the run."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation, pointing at a file:line location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> t.Dict[str, t.Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.value}: [{self.rule}] {self.message}")


@dataclass
class Config:
    """Resolved ``[tool.reprolint]`` settings."""

    #: Rule ids to run; ``None`` means every registered rule.
    enabled: t.Optional[t.FrozenSet[str]] = None
    #: fnmatch patterns (posix paths) that are skipped entirely.
    exempt_paths: t.Tuple[str, ...] = ()
    #: Per-rule scope override: rule id -> dotted module prefixes.
    scopes: t.Dict[str, t.Tuple[str, ...]] = field(default_factory=dict)
    #: Per-rule exemption override: rule id -> dotted module prefixes.
    exemptions: t.Dict[str, t.Tuple[str, ...]] = field(default_factory=dict)
    #: Per-rule severity override: rule id -> Severity.
    severities: t.Dict[str, Severity] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        return self.enabled is None or rule_id in self.enabled

    def path_exempt(self, path: Path) -> bool:
        posix = path.as_posix()
        for pattern in self.exempt_paths:
            if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(posix, f"*/{pattern}"):
                return True
            if f"/{pattern.strip('/')}/" in f"/{posix}/":
                return True
        return False


def load_config(start: t.Optional[Path] = None) -> Config:
    """Find ``pyproject.toml`` at/above ``start`` and read ``[tool.reprolint]``.

    Returns default settings when no file, table, or TOML parser exists
    (the repo targets Python 3.9+; :mod:`tomllib` arrived in 3.11).
    """
    here = (start or Path.cwd()).resolve()
    candidates = [here, *here.parents] if here.is_dir() else list(here.parents)
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            return parse_config(pyproject)
    return Config()


def parse_config(pyproject: Path) -> Config:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        return Config()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("reprolint", {})
    if not table:
        return Config()
    enabled = table.get("enabled")
    return Config(
        enabled=frozenset(enabled) if enabled is not None else None,
        exempt_paths=tuple(table.get("exempt-paths", ())),
        scopes={rule: tuple(prefixes)
                for rule, prefixes in table.get("scopes", {}).items()},
        exemptions={rule: tuple(prefixes)
                    for rule, prefixes in table.get("exemptions", {}).items()},
        severities={rule: Severity(value)
                    for rule, value in table.get("severity", {}).items()},
    )


def module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path segment."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
        return ".".join(parts)
    return parts[-1] if parts else ""


def in_scope(module: str, prefixes: t.Iterable[str]) -> bool:
    """True when ``module`` is any of the prefixes or nested under one."""
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


class ModuleContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: str, module: str, source: str,
                 tree: t.Optional[ast.Module] = None) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self.file_suppressions: t.Set[str] = set()
        self.line_suppressions: t.Dict[int, t.Set[str]] = {}
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESSION.search(line)
            if match is None:
                continue
            rules = {name.strip() for name in match.group(1).split(",") if name.strip()}
            if line.strip().startswith("#"):
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.file_suppressions & {rule_id, "all"}:
            return True
        return bool(self.line_suppressions.get(line, set()) & {rule_id, "all"})


class Rule(ast.NodeVisitor):
    """Base class: one invariant, one id, one severity, one scope.

    Subclasses set the class attributes and implement ``visit_*``
    methods that call :meth:`report`.  A fresh instance is created per
    module, so instance state is per-file.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Dotted module prefixes the rule applies to.
    default_scope: t.Tuple[str, ...] = ("repro",)
    #: Dotted module prefixes exempt even when inside the scope.
    default_exempt: t.Tuple[str, ...] = ()

    def __init__(self, ctx: ModuleContext, severity: t.Optional[Severity] = None) -> None:
        self.ctx = ctx
        self.findings: t.List[Finding] = []
        self._severity = severity if severity is not None else self.severity

    @classmethod
    def applies_to(cls, module: str, config: Config) -> bool:
        scope = config.scopes.get(cls.id, cls.default_scope)
        exempt = config.exemptions.get(cls.id, cls.default_exempt)
        return in_scope(module, scope) and not in_scope(module, exempt)

    def run(self) -> t.List[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.ctx.suppressed(self.id, line):
            return
        self.findings.append(Finding(
            rule=self.id, severity=self._severity, path=self.ctx.path,
            line=line, col=getattr(node, "col_offset", 0) + 1,
            message=message))


class Analyzer:
    """Applies a rule pack to files, sources, or whole trees."""

    def __init__(self, rules: t.Optional[t.Sequence[t.Type[Rule]]] = None,
                 config: t.Optional[Config] = None) -> None:
        if rules is None:
            from .rules import default_rules
            rules = default_rules()
        self.rules = list(rules)
        self.config = config if config is not None else Config()

    def analyze_source(self, source: str, path: str = "<string>",
                       module: t.Optional[str] = None) -> t.List[Finding]:
        """Analyze one source string (the unit-test entry point)."""
        if module is None:
            module = module_name_for(Path(path))
        try:
            ctx = ModuleContext(path, module, source)
        except SyntaxError as exc:
            return [Finding(
                rule="parse-error", severity=Severity.ERROR, path=path,
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"could not parse: {exc.msg}")]
        findings: t.List[Finding] = []
        for rule_cls in self.rules:
            if not self.config.rule_enabled(rule_cls.id):
                continue
            if not rule_cls.applies_to(module, self.config):
                continue
            severity = self.config.severities.get(rule_cls.id)
            findings.extend(rule_cls(ctx, severity=severity).run())
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def analyze_file(self, path: t.Union[str, Path]) -> t.List[Finding]:
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.analyze_source(source, path=path.as_posix())

    def analyze_paths(self, paths: t.Iterable[t.Union[str, Path]]) -> t.List[Finding]:
        """Analyze files and/or directory trees of ``*.py`` files."""
        findings: t.List[Finding] = []
        for target in paths:
            target = Path(target)
            files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
            for file in files:
                if self.config.path_exempt(file):
                    continue
                findings.extend(self.analyze_file(file))
        return findings


def render_findings(findings: t.Sequence[Finding], as_json: bool = False) -> str:
    if as_json:
        return json.dumps([finding.to_dict() for finding in findings], indent=2)
    return "\n".join(finding.format() for finding in findings)
