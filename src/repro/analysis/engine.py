"""The reprolint engine: rule framework, suppressions, findings, config.

The analyzer walks Python sources with :mod:`ast` and applies a pack of
:class:`Rule` visitors to each module.  Rules are scoped by dotted
module prefix (``repro.net`` covers ``repro.net.link``), so invariants
that only hold inside the simulator — determinism, no blocking calls —
are not imposed on the loopback proxies in ``repro.realnet``.

Suppressions are comments:

* ``# reprolint: disable=rule-id`` trailing a code line suppresses that
  rule on that line only;
* the same comment on a line of its own suppresses the rule for the
  whole file;
* ``disable=all`` suppresses every rule.

Configuration is read from ``[tool.reprolint]`` in ``pyproject.toml``
(see :func:`load_config`); everything degrades to built-in defaults
when no config file or TOML parser is available.
"""

from __future__ import annotations

import ast
import enum
import fnmatch
import io
import json
import re
import tokenize
import typing as t
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([\w\-, ]+)")

#: Rule id of the built-in stale-suppression meta check (see Analyzer).
STALE_SUPPRESSION_ID = "stale-suppression"


class Severity(enum.Enum):
    """How bad a finding is; only errors fail the run."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation, pointing at a file:line location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> t.Dict[str, t.Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.value}: [{self.rule}] {self.message}")


@dataclass
class Config:
    """Resolved ``[tool.reprolint]`` settings."""

    #: Rule ids to run; ``None`` means every registered rule.
    enabled: t.Optional[t.FrozenSet[str]] = None
    #: fnmatch patterns (posix paths) that are skipped entirely.
    exempt_paths: t.Tuple[str, ...] = ()
    #: Per-rule scope override: rule id -> dotted module prefixes.
    scopes: t.Dict[str, t.Tuple[str, ...]] = field(default_factory=dict)
    #: Per-rule exemption override: rule id -> dotted module prefixes.
    exemptions: t.Dict[str, t.Tuple[str, ...]] = field(default_factory=dict)
    #: Per-rule severity override: rule id -> Severity.
    severities: t.Dict[str, Severity] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        return self.enabled is None or rule_id in self.enabled

    def path_exempt(self, path: Path) -> bool:
        posix = path.as_posix()
        for pattern in self.exempt_paths:
            if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(posix, f"*/{pattern}"):
                return True
            if f"/{pattern.strip('/')}/" in f"/{posix}/":
                return True
        return False


def load_config(start: t.Optional[Path] = None) -> Config:
    """Find ``pyproject.toml`` at/above ``start`` and read ``[tool.reprolint]``.

    Returns default settings when no file, table, or TOML parser exists
    (the repo targets Python 3.9+; :mod:`tomllib` arrived in 3.11).
    """
    here = (start or Path.cwd()).resolve()
    candidates = [here, *here.parents] if here.is_dir() else list(here.parents)
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            return parse_config(pyproject)
    return Config()


def parse_config(pyproject: Path) -> Config:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        return Config()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("reprolint", {})
    if not table:
        return Config()
    enabled = table.get("enabled")
    return Config(
        enabled=frozenset(enabled) if enabled is not None else None,
        exempt_paths=tuple(table.get("exempt-paths", ())),
        scopes={rule: tuple(prefixes)
                for rule, prefixes in table.get("scopes", {}).items()},
        exemptions={rule: tuple(prefixes)
                    for rule, prefixes in table.get("exemptions", {}).items()},
        severities={rule: Severity(value)
                    for rule, value in table.get("severity", {}).items()},
    )


def module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path segment."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
        return ".".join(parts)
    return parts[-1] if parts else ""


def in_scope(module: str, prefixes: t.Iterable[str]) -> bool:
    """True when ``module`` is any of the prefixes or nested under one."""
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


class ModuleContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: str, module: str, source: str,
                 tree: t.Optional[ast.Module] = None) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self.file_suppressions: t.Set[str] = set()
        #: Line the file-level suppression comment for each rule sits on.
        self.file_suppression_lines: t.Dict[str, int] = {}
        self.line_suppressions: t.Dict[int, t.Set[str]] = {}
        #: ``(line-or-None, token)`` pairs that suppressed a real finding;
        #: consumed by the stale-suppression detector after a full run.
        self.used_suppressions: t.Set[t.Tuple[t.Optional[int], str]] = set()
        self._parse_suppressions()

    def _iter_comments(self) -> t.Iterator[t.Tuple[int, int, str]]:
        """Yield ``(line, col, text)`` for real COMMENT tokens only.

        Tokenizing (rather than regexing every line) keeps suppression
        syntax quoted inside strings and docstrings from counting as a
        suppression — and, with the stale detector, from being flagged
        as a stale one.  Falls back to the line scan on tokenize errors.
        """
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            for lineno, line in enumerate(self.source.splitlines(), start=1):
                position = line.find("#")
                if position >= 0:
                    yield lineno, position, line[position:]
            return
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string

    def _parse_suppressions(self) -> None:
        lines = self.source.splitlines()
        for lineno, col, comment in self._iter_comments():
            match = _SUPPRESSION.search(comment)
            if match is None:
                continue
            rules = {name.strip() for name in match.group(1).split(",") if name.strip()}
            code_before = lines[lineno - 1][:col] if lineno <= len(lines) else ""
            if not code_before.strip():
                for rule in rules:
                    self.file_suppressions.add(rule)
                    self.file_suppression_lines.setdefault(rule, lineno)
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, rule_id: str, line: int) -> bool:
        file_hits = self.file_suppressions & {rule_id, "all"}
        if file_hits:
            self.used_suppressions.update((None, token) for token in file_hits)
            return True
        line_hits = self.line_suppressions.get(line, set()) & {rule_id, "all"}
        if line_hits:
            self.used_suppressions.update((line, token) for token in line_hits)
            return True
        return False


class Rule(ast.NodeVisitor):
    """Base class: one invariant, one id, one severity, one scope.

    Subclasses set the class attributes and implement ``visit_*``
    methods that call :meth:`report`.  A fresh instance is created per
    module, so instance state is per-file.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Dotted module prefixes the rule applies to.
    default_scope: t.Tuple[str, ...] = ("repro",)
    #: Dotted module prefixes exempt even when inside the scope.
    default_exempt: t.Tuple[str, ...] = ()

    def __init__(self, ctx: ModuleContext, severity: t.Optional[Severity] = None) -> None:
        self.ctx = ctx
        self.findings: t.List[Finding] = []
        self._severity = severity if severity is not None else self.severity

    @classmethod
    def applies_to(cls, module: str, config: Config) -> bool:
        scope = config.scopes.get(cls.id, cls.default_scope)
        exempt = config.exemptions.get(cls.id, cls.default_exempt)
        return in_scope(module, scope) and not in_scope(module, exempt)

    def run(self) -> t.List[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.ctx.suppressed(self.id, line):
            return
        self.findings.append(Finding(
            rule=self.id, severity=self._severity, path=self.ctx.path,
            line=line, col=getattr(node, "col_offset", 0) + 1,
            message=message))


class Project:
    """All parsed modules of one analysis run, plus derived structures.

    Project-scoped rules (see :class:`ProjectRule`) receive this object:
    it owns every :class:`ModuleContext` and lazily builds the shared
    call graph so several rules can make transitive queries without
    each paying to construct it.
    """

    def __init__(self, contexts: t.Sequence[ModuleContext]) -> None:
        self.contexts = list(contexts)
        self._callgraph: t.Optional[t.Any] = None

    @property
    def callgraph(self):
        """The project-wide call graph, built on first use."""
        if self._callgraph is None:
            from .flow.callgraph import CallGraph
            self._callgraph = CallGraph.build(self.contexts)
        return self._callgraph


class ProjectRule:
    """Base class for rules that need the whole project at once.

    Unlike :class:`Rule` (one fresh visitor per module), a project rule
    is constructed once per run and handed the :class:`Project`, so it
    can correlate facts across files — call-graph reachability, global
    registries, cross-module schema conformance.  Scoping still applies
    per module: use :meth:`contexts` to iterate only in-scope files, and
    :meth:`report` to emit findings with normal suppression handling.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    default_scope: t.Tuple[str, ...] = ("repro",)
    default_exempt: t.Tuple[str, ...] = ()

    def __init__(self, config: Config,
                 severity: t.Optional[Severity] = None) -> None:
        self.config = config
        self.findings: t.List[Finding] = []
        self._severity = severity if severity is not None else self.severity

    @classmethod
    def applies_to(cls, module: str, config: Config) -> bool:
        scope = config.scopes.get(cls.id, cls.default_scope)
        exempt = config.exemptions.get(cls.id, cls.default_exempt)
        return in_scope(module, scope) and not in_scope(module, exempt)

    def run(self, project: Project) -> t.List[Finding]:
        raise NotImplementedError

    def contexts(self, project: Project) -> t.List[ModuleContext]:
        """The project's modules that fall inside this rule's scope."""
        return [ctx for ctx in project.contexts
                if type(self).applies_to(ctx.module, self.config)]

    def report(self, ctx: ModuleContext, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if ctx.suppressed(self.id, line):
            return
        self.findings.append(Finding(
            rule=self.id, severity=self._severity, path=ctx.path,
            line=line, col=getattr(node, "col_offset", 0) + 1,
            message=message))


class Analyzer:
    """Applies a rule pack to files, sources, or whole trees.

    Two rule layers run over every target: per-module :class:`Rule`
    visitors, then :class:`ProjectRule` passes across all parsed modules
    at once (CFG/dataflow rules, call-graph queries, cross-module
    registries).  A final built-in pass flags stale suppressions —
    ``# reprolint: disable=`` comments that no longer suppress any
    finding of an enabled, in-scope rule (rule id
    ``stale-suppression``).
    """

    def __init__(self, rules: t.Optional[t.Sequence[t.Type[Rule]]] = None,
                 config: t.Optional[Config] = None,
                 project_rules: t.Optional[t.Sequence[t.Type[ProjectRule]]] = None) -> None:
        explicit_rules = rules is not None
        if rules is None:
            from .rules import default_rules
            rules = default_rules()
        if project_rules is None:
            if explicit_rules:
                # An explicit file-rule pack means "run exactly these".
                project_rules = ()
            else:
                from .rules import default_project_rules
                project_rules = default_project_rules()
        self.rules = list(rules)
        self.project_rules = list(project_rules)
        self.config = config if config is not None else Config()

    # -- single-module entry points ------------------------------------------------

    def analyze_source(self, source: str, path: str = "<string>",
                       module: t.Optional[str] = None) -> t.List[Finding]:
        """Analyze one source string (the unit-test entry point)."""
        if module is None:
            module = module_name_for(Path(path))
        try:
            ctx = ModuleContext(path, module, source)
        except SyntaxError as exc:
            return [Finding(
                rule="parse-error", severity=Severity.ERROR, path=path,
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"could not parse: {exc.msg}")]
        findings = self._run_file_rules(ctx)
        findings.extend(self._run_project_rules(Project([ctx])))
        findings.extend(self._stale_suppressions(ctx))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def analyze_file(self, path: t.Union[str, Path]) -> t.List[Finding]:
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.analyze_source(source, path=path.as_posix())

    # -- whole-tree entry point ------------------------------------------------------

    def analyze_paths(self, paths: t.Iterable[t.Union[str, Path]]) -> t.List[Finding]:
        """Analyze files and/or directory trees of ``*.py`` files.

        All files are parsed up front so project rules see one coherent
        project; per-module findings keep their historical ordering
        (grouped by file), project-rule and stale-suppression findings
        are appended sorted.
        """
        findings: t.List[Finding] = []
        contexts: t.List[ModuleContext] = []
        for target in paths:
            target = Path(target)
            files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
            for file in files:
                if self.config.path_exempt(file):
                    continue
                source = file.read_text(encoding="utf-8")
                posix = file.as_posix()
                try:
                    ctx = ModuleContext(posix, module_name_for(file), source)
                except SyntaxError as exc:
                    findings.append(Finding(
                        rule="parse-error", severity=Severity.ERROR,
                        path=posix, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"could not parse: {exc.msg}"))
                    continue
                contexts.append(ctx)
                findings.extend(self._run_file_rules(ctx))
        late: t.List[Finding] = list(self._run_project_rules(Project(contexts)))
        for ctx in contexts:
            late.extend(self._stale_suppressions(ctx))
        late.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        findings.extend(late)
        return findings

    # -- passes --------------------------------------------------------------------

    def _run_file_rules(self, ctx: ModuleContext) -> t.List[Finding]:
        findings: t.List[Finding] = []
        for rule_cls in self.rules:
            if not self.config.rule_enabled(rule_cls.id):
                continue
            if not rule_cls.applies_to(ctx.module, self.config):
                continue
            severity = self.config.severities.get(rule_cls.id)
            findings.extend(rule_cls(ctx, severity=severity).run())
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def _run_project_rules(self, project: Project) -> t.List[Finding]:
        findings: t.List[Finding] = []
        for rule_cls in self.project_rules:
            if not self.config.rule_enabled(rule_cls.id):
                continue
            severity = self.config.severities.get(rule_cls.id)
            findings.extend(rule_cls(self.config, severity=severity).run(project))
        return findings

    # -- stale suppressions ---------------------------------------------------------

    def _active_rule_ids(self, module: str) -> t.Set[str]:
        """Rule ids that actually ran against ``module`` this run."""
        active: t.Set[str] = set()
        for rule_cls in [*self.rules, *self.project_rules]:
            if (self.config.rule_enabled(rule_cls.id)
                    and rule_cls.applies_to(module, self.config)):
                active.add(rule_cls.id)
        return active

    def _stale_suppressions(self, ctx: ModuleContext) -> t.List[Finding]:
        """Flag suppression tokens that suppressed nothing this run.

        A token is judged only when its rule was enabled and in scope
        for the module (otherwise nothing could have matched it, and
        removing it would be wrong); unknown rule ids are always
        flagged — they are typos that never suppressed anything.
        """
        if not self.config.rule_enabled(STALE_SUPPRESSION_ID):
            return []
        known = {rule_cls.id for rule_cls in [*self.rules, *self.project_rules]}
        active = self._active_rule_ids(ctx.module)
        severity = self.config.severities.get(STALE_SUPPRESSION_ID,
                                              Severity.ERROR)
        findings: t.List[Finding] = []

        def judge(token: str, line_key: t.Optional[int], line: int) -> None:
            if (line_key, token) in ctx.used_suppressions:
                return
            if token == "all":
                if not active:
                    return
                detail = "disable=all suppresses no finding"
            elif token not in known:
                detail = (f"disable={token} names no known rule "
                          "(typo, or the rule was removed)")
            elif token not in active:
                return  # disabled or out of scope: cannot judge
            else:
                detail = f"disable={token} no longer suppresses any finding"
            findings.append(Finding(
                rule=STALE_SUPPRESSION_ID, severity=severity, path=ctx.path,
                line=line, col=1,
                message=f"stale suppression: {detail}; remove the comment"))

        for token in sorted(ctx.file_suppressions):
            judge(token, None, ctx.file_suppression_lines.get(token, 1))
        for line, tokens in sorted(ctx.line_suppressions.items()):
            for token in sorted(tokens):
                judge(token, line, line)
        return findings


def render_findings(findings: t.Sequence[Finding], as_json: bool = False) -> str:
    if as_json:
        return json.dumps([finding.to_dict() for finding in findings], indent=2)
    return "\n".join(finding.format() for finding in findings)
