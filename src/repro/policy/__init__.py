"""Non-technical regulation: agencies, ICP registration, investigations."""

from .agencies import (
    Investigation,
    MIIT,
    RegulatoryEnvironment,
    SecurityMinistry,
    ServiceListing,
    TCA,
)
from .icp import (
    APPROVED,
    IcpRegistration,
    IcpRegistry,
    REJECTED,
    REQUIRED_DOCUMENTS,
    REVOKED,
    SUBMITTED,
    UNDER_REVIEW,
)

__all__ = [
    "APPROVED",
    "IcpRegistration",
    "IcpRegistry",
    "Investigation",
    "MIIT",
    "REJECTED",
    "REQUIRED_DOCUMENTS",
    "REVOKED",
    "RegulatoryEnvironment",
    "SUBMITTED",
    "SecurityMinistry",
    "ServiceListing",
    "TCA",
    "UNDER_REVIEW",
]
