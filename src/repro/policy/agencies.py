"""Government agencies: MIIT, TCA, MPS, MSS (§2).

The paper's central observation is that China's censorship is
*bilateral*: the GFW does aggressive technical blocking; the agencies
do slow, evidence-based regulation — and the two are not synchronized.
This module models the regulation side:

* :class:`MIIT` owns the registry and legislation;
* :class:`TCA` processes registrations (wrapped by the registry's
  review delay);
* :class:`SecurityMinistry` (MPS/MSS) runs *investigations*: slow,
  manual discovery of unregistered services, followed by legal
  shutdowns — unlike the GFW, a shutdown kills the service entirely,
  not just the packets.

Shutdowns are conservative: a service whose domains are registered and
whose visible whitelist matches its registration survives; an
unregistered proxy found by an investigation is shut down (and the
responsible person is in trouble).  Registered VPNs post-2015 are
tolerated; unregistered ones are fair game — footnote 2 of the paper.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..sim import RngRegistry, Simulator
from ..units import DAY
from .icp import APPROVED, IcpRegistry


@dataclass(frozen=True)
class ServiceListing:
    """A publicly observable Internet service inside China."""

    name: str
    domain: str
    #: What the service actually does, observable on investigation.
    kind: str  # "web", "proxy", "vpn"
    #: Hook invoked by a legal shutdown (unregisters listeners etc.).
    shutdown: t.Callable[[], None] = lambda: None


@dataclass
class Investigation:
    """One MPS/MSS case file."""

    target: ServiceListing
    opened_at: float
    closed_at: t.Optional[float] = None
    outcome: t.Optional[str] = None
    evidence: t.List[str] = field(default_factory=list)


class MIIT:
    """Ministry of Industry and Information Technology."""

    def __init__(self, registry: IcpRegistry) -> None:
        self.registry = registry
        #: Current legislation flags; the VPN rule changed in 2015/2017.
        self.registered_vpn_legal = True

    def database(self):
        """The public miitbeian.gov.cn lookup."""
        return self.registry.all_registrations()


class TCA:
    """City-level Telecommunication Administration: intake window."""

    def __init__(self, registry: IcpRegistry) -> None:
        self.registry = registry

    def file_registration(self, **kwargs) -> str:
        registration = self.registry.submit(**kwargs)
        return registration.number


class SecurityMinistry:
    """MPS/MSS: investigations and legal shutdowns."""

    def __init__(self, sim: Simulator, registry: IcpRegistry,
                 rng: t.Optional[RngRegistry] = None,
                 investigation_days: float = 45.0) -> None:
        self.sim = sim
        self.registry = registry
        self.rng = (rng if rng is not None else sim.rng).stream("mps")
        self.investigation_days = investigation_days
        self.services: t.List[ServiceListing] = []
        self.investigations: t.List[Investigation] = []
        self.shutdowns: t.List[str] = []

    def observe_service(self, listing: ServiceListing) -> None:
        """A service becomes visible (user reports, scanning, press)."""
        self.services.append(listing)

    def open_investigation(self, listing: ServiceListing) -> Investigation:
        case = Investigation(target=listing, opened_at=self.sim.now)
        self.investigations.append(case)
        self.sim.process(self._investigate(case), name=f"mps:{listing.domain}")
        return case

    def sweep(self) -> t.List[Investigation]:
        """Open investigations into every observed proxy/VPN service."""
        opened = []
        for listing in self.services:
            if listing.kind in ("proxy", "vpn"):
                opened.append(self.open_investigation(listing))
        return opened

    def _investigate(self, case: Investigation):
        # Evidence collection takes time — regulation cannot be
        # automated the way packet filtering can (§2).
        duration = self.investigation_days * (0.6 + 0.8 * self.rng.random())
        yield self.sim.timeout(duration * DAY)
        listing = case.target
        registration = self.registry.registration_for_domain(listing.domain)
        case.closed_at = self.sim.now
        if registration is not None and registration.status == APPROVED:
            case.evidence.append("registered ICP with visible whitelist")
            case.outcome = "no-action"
            return
        case.evidence.append("no ICP registration found in MIIT database")
        case.outcome = "shutdown"
        self.shutdowns.append(listing.domain)
        listing.shutdown()


class RegulatoryEnvironment:
    """The four agencies wired together over one registry."""

    def __init__(self, sim: Simulator, rng: t.Optional[RngRegistry] = None,
                 review_days: float = 30.0,
                 investigation_days: float = 45.0) -> None:
        self.sim = sim
        self.registry = IcpRegistry(sim, review_days=review_days)
        self.miit = MIIT(self.registry)
        self.tca = TCA(self.registry)
        self.security = SecurityMinistry(sim, self.registry, rng=rng,
                                         investigation_days=investigation_days)

    def legalize(self, **registration_kwargs) -> str:
        """File and (after the review delay elapses) hold a valid ICP."""
        return self.tca.file_registration(**registration_kwargs)
