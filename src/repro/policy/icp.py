"""ICP registration: the non-technical half of §2.

Any provider of public Internet content in China must register with
the local Telecommunication Administration; MIIT keeps the central
database.  Registration is a manual, weeks-long review of the company,
the responsible person, and the service documentation — modeled here
as a simulated-time review delay with document completeness checks.
"""

from __future__ import annotations

import itertools
import typing as t
from dataclasses import dataclass, field

from ..errors import RegistrationError
from ..sim import Simulator
from ..units import DAY

#: Registration states.
SUBMITTED = "submitted"
UNDER_REVIEW = "under-review"
APPROVED = "approved"
REJECTED = "rejected"
REVOKED = "revoked"

#: Documents the TCA requires (§3 "Service legalization").
REQUIRED_DOCUMENTS = frozenset({
    "legal-representative-biometric",
    "service-documentation",
    "usage-video",
    "user-guide",
})

_serials = itertools.count(15_063_437)  # first issue = the paper's number


@dataclass
class IcpRegistration:
    """One registration record in the MIIT database."""

    number: str
    company: str
    service_name: str
    service_type: str
    domains: t.Tuple[str, ...]
    whitelist: t.Tuple[str, ...]
    responsible_person: str
    documents: t.FrozenSet[str]
    submitted_at: float
    status: str = SUBMITTED
    decided_at: t.Optional[float] = None
    history: t.List[t.Tuple[float, str]] = field(default_factory=list)

    def record(self, now: float, event: str) -> None:
        self.history.append((now, event))


class IcpRegistry:
    """The MIIT central database plus the TCA review workflow."""

    def __init__(self, sim: Simulator, review_days: float = 30.0) -> None:
        self.sim = sim
        self.review_days = review_days
        self._by_number: t.Dict[str, IcpRegistration] = {}
        self._by_domain: t.Dict[str, IcpRegistration] = {}

    def submit(
        self,
        company: str,
        service_name: str,
        service_type: str,
        domains: t.Sequence[str],
        whitelist: t.Sequence[str] = (),
        responsible_person: str = "legal representative",
        documents: t.Iterable[str] = REQUIRED_DOCUMENTS,
    ) -> IcpRegistration:
        """File a registration; review completes after ``review_days``."""
        documents = frozenset(documents)
        missing = REQUIRED_DOCUMENTS - documents
        if missing:
            raise RegistrationError(
                f"registration incomplete; missing documents: {sorted(missing)}")
        if not domains:
            raise RegistrationError("a registration needs at least one domain")
        for domain in domains:
            if domain in self._by_domain:
                raise RegistrationError(f"{domain} is already registered")
        registration = IcpRegistration(
            number=f"ICP-{next(_serials)}",
            company=company,
            service_name=service_name,
            service_type=service_type,
            domains=tuple(domains),
            whitelist=tuple(whitelist),
            responsible_person=responsible_person,
            documents=documents,
            submitted_at=self.sim.now,
        )
        registration.record(self.sim.now, "submitted")
        self._by_number[registration.number] = registration
        for domain in domains:
            self._by_domain[domain] = registration
        registration.status = UNDER_REVIEW
        self.sim.schedule(self.review_days * DAY,
                          lambda: self._decide(registration))
        return registration

    def _decide(self, registration: IcpRegistration) -> None:
        if registration.status != UNDER_REVIEW:
            return
        registration.status = APPROVED
        registration.decided_at = self.sim.now
        registration.record(self.sim.now, "approved")

    # -- queries --------------------------------------------------------------------

    def lookup(self, number: str) -> IcpRegistration:
        found = self._by_number.get(number)
        if found is None:
            raise RegistrationError(f"no such registration: {number}")
        return found

    def registration_for_domain(self, domain: str) -> t.Optional[IcpRegistration]:
        return self._by_domain.get(domain)

    def is_registered(self, domain: str) -> bool:
        registration = self._by_domain.get(domain)
        return registration is not None and registration.status == APPROVED

    def revoke(self, number: str, reason: str) -> None:
        """MPS/MSS shutdown decision for a registered service."""
        registration = self.lookup(number)
        registration.status = REVOKED
        registration.record(self.sim.now, f"revoked: {reason}")

    def all_registrations(self) -> t.List[IcpRegistration]:
        return list(self._by_number.values())
