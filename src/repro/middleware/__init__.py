"""Access-method middleware: VPNs, Tor, Shadowsocks, plus shared plumbing.

ScholarCloud itself lives in :mod:`repro.core`; the common
:class:`AccessMethod` interface is defined here.
"""

from .base import (
    AccessMethod,
    ChannelStream,
    MessageChannel,
    RelayedChannel,
    estimate_meta_length,
    pump_between,
    unwrap_forward,
    wrap_forward,
)
from .direct import DirectMethod
from .othermethods import HostsFileMethod, PublicWebProxy, WEB_PROXY_PORT
from .shadowsocks import ShadowsocksMethod
from .tor import TorMethod
from .vpn import NativeVpn, OpenVpn

__all__ = [
    "AccessMethod",
    "ChannelStream",
    "DirectMethod",
    "HostsFileMethod",
    "MessageChannel",
    "NativeVpn",
    "OpenVpn",
    "PublicWebProxy",
    "RelayedChannel",
    "ShadowsocksMethod",
    "TorMethod",
    "WEB_PROXY_PORT",
    "estimate_meta_length",
    "pump_between",
    "unwrap_forward",
    "wrap_forward",
]
