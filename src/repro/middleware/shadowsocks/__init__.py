"""Shadowsocks middleware: protocol, ss-server, ss-local, access method."""

from .client import ShadowsocksMethod, SsConnector, SsLocal
from .protocol import (
    AUTH_FRAME,
    DEFAULT_KEEPALIVE,
    IV_LENGTH,
    KEY_LENGTH,
    SS_PORT,
    address_block,
    auth_features,
    data_features,
    derive_iv,
    derive_key,
    first_frame,
    first_frame_features,
)
from .server import SsServer

__all__ = [
    "AUTH_FRAME",
    "DEFAULT_KEEPALIVE",
    "IV_LENGTH",
    "KEY_LENGTH",
    "SS_PORT",
    "ShadowsocksMethod",
    "SsConnector",
    "SsLocal",
    "SsServer",
    "address_block",
    "auth_features",
    "data_features",
    "derive_iv",
    "derive_key",
    "first_frame",
    "first_frame_features",
]
