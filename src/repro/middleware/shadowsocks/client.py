"""``ss-local`` and the Shadowsocks access method.

The local proxy runs *on the client laptop* (the paper's Figure 2d:
"Proxy Client"), so browser↔ss-local hops are in-process; what crosses
the network — and the GFW — is the encrypted client↔server stream.

The measured costs the paper attributes to Shadowsocks come from here:

* :meth:`SsLocal.ensure_session` opens the extra auth connection
  (TCP 1) whenever the 10 s keep-alive has lapsed — i.e. on every
  page load of the 60 s-spaced methodology;
* every browser connection becomes a fresh encrypted stream whose
  first frame carries the length signature DPI looks for.
"""

from __future__ import annotations

import typing as t

from ...errors import MiddlewareError
from ...http.client import Connector, TlsStream
from ...transport import TlsSession
from ..base import AccessMethod, ChannelStream, RelayedChannel
from .protocol import (
    DEFAULT_KEEPALIVE,
    SS_PORT,
    auth_features,
    data_features,
    first_frame_features,
)
from .server import SsServer


class SsLocal:
    """The local proxy half of the Shadowsocks pair."""

    def __init__(self, testbed, server_addr, password: str = "scholar-tunnel",
                 port: int = SS_PORT,
                 keepalive: float = DEFAULT_KEEPALIVE,
                 host=None) -> None:
        self.testbed = testbed
        self.host = host if host is not None else testbed.client
        self.server_addr = server_addr
        self.password = password
        self.port = port
        self.keepalive = keepalive
        self._last_auth_activity: t.Optional[float] = None
        self.auth_rounds = 0
        self.streams_opened = 0

    # -- session (TCP 1) -----------------------------------------------------------

    def session_alive(self) -> bool:
        return (self._last_auth_activity is not None
                and (self.testbed.sim.now - self._last_auth_activity)
                <= self.keepalive)

    def ensure_session(self):
        """Generator: run the TCP 1 auth exchange if the keep-alive lapsed."""
        if self.session_alive():
            return
        transport = self.testbed.transport_of(self.host)
        conn = yield transport.connect_tcp(
            self.server_addr, self.port, features=auth_features(),
            timeout=30.0)
        try:
            yield from self._auth_on(conn)
        except BaseException:
            conn.close()  # failed auth must not strand the dial
            raise
        self.auth_rounds += 1
        # The session connection idles server-side as the keep-alive
        # anchor; we don't need to hold it here.

    def _auth_on(self, conn):
        """The challenge–response user/password exchange (2 round trips)."""
        from ...crypto import hmac_sha256
        conn.send_message(60, meta=("ss-auth", "user"),
                          features=auth_features())
        challenge = yield conn.recv_message()
        if not (isinstance(challenge, tuple)
                and challenge[0] == "ss-auth-challenge"):
            raise MiddlewareError(f"shadowsocks auth failed: {challenge!r}")
        proof = hmac_sha256(self.password.encode(), challenge[1])
        conn.send_message(52, meta=("ss-auth-response", proof),
                          features=auth_features())
        reply = yield conn.recv_message()
        if reply != ("ss-auth-ok",):
            raise MiddlewareError(f"shadowsocks auth rejected: {reply!r}")
        self._last_auth_activity = self.testbed.sim.now

    def touch(self) -> None:
        self._last_auth_activity = self.testbed.sim.now

    # -- data streams -----------------------------------------------------------------

    def open_stream(self, hostname: str, port: int):
        """Generator: open one encrypted relay stream (TCP 3).

        Per the paper's source-code analysis, the auth procedure is
        re-initialized for any connection that has not carried a
        request within the keep-alive window — so every fresh data
        connection runs the exchange before its relay request.
        """
        yield from self.ensure_session()
        transport = self.testbed.transport_of(self.host)
        conn = yield transport.connect_tcp(
            self.server_addr, self.port, features=data_features(),
            timeout=30.0)
        try:
            yield from self._auth_on(conn)
            frame_features = first_frame_features(self.password, hostname, port)
            frame_length = frame_features.length_signature or 38
            conn.send_message(frame_length, meta=("ss-connect", hostname, port),
                              features=frame_features)
            ready = yield conn.recv_message()
            if ready != ("ss-ready",):
                raise MiddlewareError(f"shadowsocks relay refused: {ready!r}")
        except BaseException:
            conn.close()  # failed relay open must not strand the dial
            raise
        self.streams_opened += 1
        self.touch()
        return RelayedChannel(self.testbed.sim, conn, overhead=0,
                              features=data_features(), name="ss")


class SsConnector(Connector):
    """Browser connector backed by ss-local."""

    name = "shadowsocks"

    def __init__(self, local: SsLocal) -> None:
        self.local = local
        self.session_tickets: t.Set[str] = set()

    def open(self, hostname: str, port: int, use_tls: bool):
        channel = yield from self.local.open_stream(hostname, port)
        if not use_tls:
            return ChannelStream(channel)
        session = TlsSession(channel, sni=hostname)
        resumed = hostname in self.session_tickets
        try:
            yield from session.client_handshake(resumed=resumed)
        except BaseException:
            channel.close()  # a failed handshake must not strand the relay
            raise
        self.session_tickets.add(hostname)
        return TlsStream(session)


class ShadowsocksMethod(AccessMethod):
    """The full pair: ss-server on the VM, ss-local on the laptop."""

    name = "shadowsocks"
    display_name = "Shadowsocks"
    requires_client_software = True

    def __init__(self, testbed, password: str = "scholar-tunnel",
                 keepalive: float = DEFAULT_KEEPALIVE) -> None:
        super().__init__(testbed)
        self.password = password
        self.keepalive = keepalive
        self.server: t.Optional[SsServer] = None
        self.local: t.Optional[SsLocal] = None
        self.connected = False

    def setup(self):
        from ...dns import StubResolver
        from ...measure.testbed import GOOGLE_DNS_ADDR
        testbed = self.testbed
        if self.server is None:
            resolver = StubResolver(testbed.sim, testbed.remote_vm,
                                    upstream=GOOGLE_DNS_ADDR)
            self.server = SsServer(
                testbed.sim, testbed.remote_vm, resolver,
                cpu=testbed.remote_cpu, password=self.password,
                keepalive=self.keepalive)
        self.local = SsLocal(testbed, testbed.remote_vm.address,
                             password=self.password,
                             keepalive=self.keepalive)
        # First-session auth so the method is usable immediately.
        yield from self.local.ensure_session()
        self.connected = True

    def connector(self) -> SsConnector:
        if not self.connected or self.local is None:
            raise MiddlewareError("shadowsocks is not set up")
        return SsConnector(self.local)

    def attach_client(self, host):
        """Generator: a dedicated ss-local on another client machine."""
        if self.server is None:
            raise MiddlewareError("shadowsocks server is not deployed")
        local = SsLocal(self.testbed, self.testbed.remote_vm.address,
                        password=self.password, keepalive=self.keepalive,
                        host=host)
        yield from local.ensure_session()
        return SsConnector(local)

    def teardown(self) -> None:
        self.connected = False
