"""Shadowsocks wire framing and key derivation.

Classic (2012–2017) Shadowsocks, as the paper measured it:

* keys derived from the password with ``EVP_BytesToKey`` (MD5, no
  salt) — implemented for real in :mod:`repro.crypto`;
* AES-256-CFB stream encryption: a 16-byte IV followed by ciphertext,
  with **zero** per-message expansion (stream cipher);
* the first client frame is ``IV ‖ Enc(atyp ‖ len ‖ host ‖ port)`` —
  a short, fully random-looking packet whose length is a function of
  the hostname.  That length signature plus first-packet entropy is
  exactly what the GFW's Shadowsocks detector keys on
  (:class:`repro.gfw.dpi.ShadowsocksClassifier`).

The wire features this module reports are *computed from real
ciphertext* produced by the pure-Python AES-CFB, not hand-declared.
"""

from __future__ import annotations

import hashlib
import typing as t

from ...crypto import CfbCipher, evp_bytes_to_key, shannon_entropy
from ...net import WireFeatures

#: Default server port.
SS_PORT = 8388
#: IV length for aes-256-cfb.
IV_LENGTH = 16
#: Key length for aes-256-cfb.
KEY_LENGTH = 32
#: Per-session auth frame size (the paper's TCP 1 exchange).
AUTH_FRAME = 60
#: Default keep-alive: the paper calls out Shadowsocks' 10 s timeout
#: as a major PLT cost (re-auth on every 60 s-spaced measurement).
DEFAULT_KEEPALIVE = 10.0


def derive_key(password: str) -> bytes:
    """The password-to-key derivation Shadowsocks actually uses."""
    return evp_bytes_to_key(password.encode(), KEY_LENGTH)


def address_block(host: str, port: int) -> bytes:
    """The plaintext request header: atyp ‖ len ‖ host ‖ port."""
    encoded = host.encode()
    return bytes([3, len(encoded)]) + encoded + port.to_bytes(2, "big")


def derive_iv(password: str, host: str, port: int) -> bytes:
    """Deterministic per-(password, host, port) IV.

    Real Shadowsocks draws a fresh ``os.urandom`` IV per connection;
    inside the deterministic testbed the IV only feeds the measured
    wire features, so a keyed digest keeps the ciphertext realistic
    while keeping runs bit-for-bit reproducible.  Pass ``iv=`` to the
    frame functions to model the real thing.
    """
    return hashlib.md5(f"{password}|{host}|{port}".encode()).digest()[:IV_LENGTH]


def first_frame(password: str, host: str, port: int,
                iv: t.Optional[bytes] = None) -> bytes:
    """Real bytes of the first client frame (IV ‖ ciphertext)."""
    iv = iv if iv is not None else derive_iv(password, host, port)
    cipher = CfbCipher(derive_key(password), iv)
    return iv + cipher.encrypt(address_block(host, port))


def first_frame_features(password: str, host: str, port: int,
                         iv: t.Optional[bytes] = None) -> WireFeatures:
    """Wire features computed from genuine ciphertext.

    The length signature is the true first-frame length.  The entropy
    figure is measured over a 2 KiB continuation of the same keystream
    (a DPI box judges the stream, not just one short packet); if the
    cipher were swapped for something weaker, the measured entropy —
    and thus GFW detectability — would change with it.
    """
    iv = iv if iv is not None else derive_iv(password, host, port)
    cipher = CfbCipher(derive_key(password), iv)
    header = cipher.encrypt(address_block(host, port))
    continuation = cipher.encrypt(
        (b"GET / HTTP/1.1\r\nHost: " + host.encode() + b"\r\n\r\n") * 40)
    sample = iv + header + continuation[: 2048 - len(header) - IV_LENGTH]
    return WireFeatures(
        protocol_tag="unknown-stream",
        entropy=shannon_entropy(sample),
        length_signature=IV_LENGTH + len(header),
    )


def data_features() -> WireFeatures:
    """Steady-state ciphertext stream: opaque, no framing, no length tell."""
    return WireFeatures(protocol_tag="unknown-stream", entropy=8.0)


def auth_features() -> WireFeatures:
    """The auth frame: same opaque stream, short fixed length."""
    return WireFeatures(protocol_tag="unknown-stream", entropy=8.0,
                        length_signature=AUTH_FRAME)
