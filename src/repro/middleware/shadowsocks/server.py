"""The Shadowsocks server (``ss-server``) on the rented US VM.

Behavioural details that drive the paper's measurements:

* **Per-session authentication** (the paper's TCP 1): a data stream is
  only relayed for clients holding a live authenticated session; the
  session expires after the 10 s keep-alive, forcing re-auth on every
  60 s-spaced page load.
* **Hang-on-garbage**: bytes that don't decrypt to a valid request are
  swallowed silently and the connection is left open — the classic
  Shadowsocks probe-resistance choice that, ironically, became the
  GFW's active-probing fingerprint.
* **CPU accounting**: each auth and relayed byte consumes work on the
  shared single-core VM (:attr:`Testbed.remote_cpu`), which is what
  bends Shadowsocks' curve past 60 concurrent clients in Figure 7.
"""

from __future__ import annotations

import typing as t

from ...dns import StubResolver
from ...errors import MiddlewareError, NameResolutionError, TransportError
from ...sim import ProcessorSharingServer, Simulator
from ...transport import TcpConnection, TransportLayer
from ..base import estimate_meta_length, unwrap_forward, wrap_forward
from .protocol import DEFAULT_KEEPALIVE, SS_PORT, data_features

#: Server CPU work per auth: multi-user deployments of the era
#: verified passwords with key-stretching hashes — ~100 ms of CPU on
#: the single-core VM.  Re-run on every fresh connection (keep-alive
#: reinitialization), this is what bends Shadowsocks' curve past 60
#: concurrent clients in Figure 7 and stretches its PLT.
AUTH_DEMAND = 0.1
CONNECT_DEMAND = 0.004
PER_BYTE_DEMAND = 4e-7


class SsServer:
    """ss-server with the paper's session-auth variant."""

    def __init__(
        self,
        sim: Simulator,
        host,
        resolver: StubResolver,
        cpu: ProcessorSharingServer,
        password: str = "scholar-tunnel",
        port: int = SS_PORT,
        keepalive: float = DEFAULT_KEEPALIVE,
    ) -> None:
        self.sim = sim
        self.host = host
        self.resolver = resolver
        self.cpu = cpu
        self.password = password
        self.port = port
        self.keepalive = keepalive
        #: client address -> last authenticated-activity time
        self._sessions: t.Dict[str, float] = {}
        self.auths = 0
        self.relays_opened = 0
        self.garbage_connections = 0
        transport = t.cast(TransportLayer, host.transport)
        transport.listen_tcp(port, self._accept)

    # -- session management ---------------------------------------------------------

    def session_alive(self, client: str) -> bool:
        last = self._sessions.get(client)
        return last is not None and (self.sim.now - last) <= self.keepalive

    def _touch(self, client: str) -> None:
        # Prune sessions already past the keepalive window on the way
        # in: ``session_alive`` treats them as dead either way, so this
        # only bounds the table, it never changes an answer.
        now = self.sim.now
        for stale in [key for key, last in self._sessions.items()
                      if now - last > self.keepalive]:
            del self._sessions[stale]
        self._sessions[client] = now

    # -- connection handling -----------------------------------------------------------

    def _accept(self, conn: TcpConnection) -> None:
        self.sim.process(self._serve(conn), name="ss-server")

    def _serve(self, conn: TcpConnection):
        """Unified per-connection state machine.

        The paper's source-code reading (§4.3) found that the auth
        procedure re-initializes whenever a connection has carried no
        request for 10 s — so every *new* connection must run the
        auth exchange before it can relay, and the dedicated session
        connection (Figure 4's TCP 1) anchors the HTTP session.
        """
        client = str(conn.remote_addr)
        conn_authed = False
        while True:
            try:
                first = yield conn.recv_message()
            except TransportError:
                return
            if first is None:
                return
            if isinstance(first, tuple) and first[0] == "ss-auth":
                ok = yield from self._handle_auth(conn, client, first)
                if not ok:
                    return  # hang already consumed the connection
                conn_authed = True
                continue
            if isinstance(first, tuple) and first[0] == "ss-connect":
                if not (conn_authed and self.session_alive(client)):
                    # Unauthenticated relay attempt: hang, like garbage.
                    self.garbage_connections += 1
                    while (yield conn.recv_message()) is not None:
                        pass
                    return
                yield from self._handle_relay(conn, client, first)
                return
            # Garbage (active probe, scanner): swallow and hang. Never
            # answer, never reset — the fingerprintable Shadowsocks tell.
            self.garbage_connections += 1
            while (yield conn.recv_message()) is not None:
                pass
            return

    def _handle_auth(self, conn: TcpConnection, client: str, frame: t.Any):
        """Challenge–response user/password auth (2 round trips).

        The server issues a nonce; the client must answer with
        ``HMAC-SHA256(password, nonce)`` — replay-proof, and verified
        with bcrypt-grade CPU cost on this single-core VM.
        """
        from ...crypto import hmac_sha256
        nonce = f"{client}:{self.sim.now}".encode()
        conn.send_message(36, meta=("ss-auth-challenge", nonce),
                          features=data_features())
        try:
            response = yield conn.recv_message()
        except TransportError:
            return False
        expected = hmac_sha256(self.password.encode(), nonce)
        if not (isinstance(response, tuple) and response[0] == "ss-auth-response"
                and response[1] == expected):
            # Wrong credentials are swallowed silently.
            while (yield conn.recv_message()) is not None:
                pass
            return False
        yield self.cpu.submit(AUTH_DEMAND)
        self.auths += 1
        self._touch(client)
        conn.send_message(20, meta=("ss-auth-ok",), features=data_features())
        return True

    def _handle_relay(self, conn: TcpConnection, client: str, frame: t.Any):
        _tag, host, port = frame
        yield self.cpu.submit(CONNECT_DEMAND)
        transport = t.cast(TransportLayer, self.host.transport)
        try:
            address = yield self.resolver.resolve(host)
            target = yield transport.connect_tcp(address, port, timeout=30.0)
        except (NameResolutionError, TransportError):
            conn.close()
            return
        self.relays_opened += 1
        self._touch(client)
        try:
            conn.send_message(20, meta=("ss-ready",),
                              features=data_features())
        except TransportError:
            # The client vanished between dial and ready-ack; the
            # freshly-dialed target must not outlive the relay.
            target.close()
            conn.close()
            return
        self.sim.process(self._pump_upstream(conn, target, client),
                         name="ss-up")
        self.sim.process(self._pump_downstream(conn, target, client),
                         name="ss-down")

    def _pump_upstream(self, conn: TcpConnection, target: TcpConnection,
                       client: str):
        """Client frames -> target."""
        while True:
            try:
                message = yield conn.recv_message()
            except TransportError:
                target.close()
                return
            if message is None:
                target.close()
                return
            try:
                length, meta = unwrap_forward(message)
            except MiddlewareError:
                continue  # malformed frame from the client: drop it
            self._touch(client)
            yield self.cpu.submit(PER_BYTE_DEMAND * length)
            try:
                target.send_message(length, meta=meta)
            except TransportError:
                conn.close()
                return

    def _pump_downstream(self, conn: TcpConnection, target: TcpConnection,
                         client: str):
        """Target replies -> encrypted frames back to the client."""
        while True:
            try:
                message = yield target.recv_message()
            except TransportError:
                conn.close()
                return
            if message is None:
                conn.close()
                return
            length = estimate_meta_length(message)
            yield self.cpu.submit(PER_BYTE_DEMAND * length)
            try:
                conn.send_message(length, meta=wrap_forward(length, message),
                                  features=data_features())
            except TransportError:
                target.close()
                return
