"""Tor over meek: relays, domain-fronted transport, client."""

from .cells import CELL_PAYLOAD, CELL_SIZE, cells_for, wire_bytes
from .client import DIRECTORY_BYTES, FRONT_DOMAIN, TorConnector, TorMethod, TorNetwork
from .meek import CdnFront, DEFAULT_POLL_INTERVAL, MeekChannel
from .relay import OR_PORT, TorRelay

__all__ = [
    "CELL_PAYLOAD",
    "CELL_SIZE",
    "CdnFront",
    "DEFAULT_POLL_INTERVAL",
    "DIRECTORY_BYTES",
    "FRONT_DOMAIN",
    "MeekChannel",
    "OR_PORT",
    "TorConnector",
    "TorMethod",
    "TorNetwork",
    "TorRelay",
    "cells_for",
    "wire_bytes",
]
