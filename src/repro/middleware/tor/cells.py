"""Tor cell framing.

Cells are fixed 514-byte units; application payloads are padded up to
whole cells, which is both Tor's real behaviour and the source of its
bandwidth overhead in Figure 6a.  Cells are carried in our simulation
as message metas of the form ``("cell", circuit_id, command, payload)``
— sizes are computed from the real framing rules, contents stay
abstract.
"""

from __future__ import annotations

import typing as t

#: Wire size of one cell (Tor link protocol 4).
CELL_SIZE = 514
#: Usable payload per RELAY_DATA cell.
CELL_PAYLOAD = 498

# Cell commands.
CREATE = "create2"
CREATED = "created2"
EXTEND = "extend2"
EXTENDED = "extended2"
BEGIN = "relay-begin"
CONNECTED = "relay-connected"
DATA = "relay-data"
END = "relay-end"


def cells_for(length: int) -> int:
    """Number of cells needed to carry ``length`` payload bytes."""
    if length <= 0:
        return 1
    return (length + CELL_PAYLOAD - 1) // CELL_PAYLOAD


def wire_bytes(length: int) -> int:
    """On-wire bytes for ``length`` payload bytes, cell-padded."""
    return cells_for(length) * CELL_SIZE


def make_cell(circuit_id: int, command: str,
              payload: t.Any = None) -> t.Tuple[str, int, str, t.Any]:
    return ("cell", circuit_id, command, payload)


def is_cell(message: t.Any) -> bool:
    return (isinstance(message, tuple) and len(message) == 4
            and message[0] == "cell")
