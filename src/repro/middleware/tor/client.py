"""The Tor client: network install, circuit construction, connector.

:class:`TorNetwork` adds the volunteer infrastructure to a testbed
(CDN front, bridge, middle, exit — the client cannot choose or control
these, which is the paper's §4.3 reason for excluding Tor from the
scalability experiment).  :class:`TorMethod` is the access method: it
bootstraps over meek (directory fetch, then a 3-hop circuit built one
EXTEND at a time) and exposes a connector whose streams ride the
circuit as RELAY cells.
"""

from __future__ import annotations

import itertools
import typing as t

from ...dns import StubResolver
from ...errors import MiddlewareError, TransportError
from ...http.client import Connector, TlsStream
from ...net import WireFeatures
from ...sim import Event, Store
from ...transport import TlsSession
from ...units import ms, Mbps, KB
from ..base import AccessMethod, ChannelStream, MessageChannel
from . import cells
from .meek import CdnFront, MeekChannel
from .relay import TorRelay

#: Front domain (member of repro.gfw.dpi.KNOWN_MEEK_FRONTS).
FRONT_DOMAIN = "cdn.azureedge.example"
#: Consensus + microdescriptors fetched by a fresh client at
#: bootstrap (Tor Browser downloads several hundred KB).
DIRECTORY_BYTES = KB(150)

_stream_ids = itertools.count(1)
_circuit_ids = itertools.count(100)


class TorNetwork:
    """The volunteer relay infrastructure, installed into a testbed."""

    def __init__(self, testbed) -> None:
        from ...measure.testbed import GOOGLE_DNS_ADDR
        from ...transport import install_transport
        self.testbed = testbed
        net = testbed.net
        sim = testbed.sim

        self.front_host = net.add_host("cdn-front", address="13.32.1.50")
        self.bridge_host = net.add_host("tor-bridge", address="104.131.1.10")
        self.middle_host = net.add_host("tor-middle", address="171.25.193.9")
        self.exit_host = net.add_host("tor-exit", address="176.10.104.240")
        net.connect(self.front_host, testbed.us_core, latency=ms(4),
                    bandwidth=Mbps(1000))
        net.connect(self.bridge_host, testbed.us_core, latency=ms(6),
                    bandwidth=Mbps(100))
        net.connect(self.middle_host, testbed.us_core, latency=ms(12),
                    bandwidth=Mbps(50), loss=0.001)
        net.connect(self.exit_host, testbed.us_core, latency=ms(10),
                    bandwidth=Mbps(50), loss=0.001)
        net.build_routes()
        for host in (self.front_host, self.bridge_host, self.middle_host,
                     self.exit_host):
            install_transport(sim, host)

        testbed.misc_zone.add_a(FRONT_DOMAIN, "13.32.1.50")

        exit_resolver = StubResolver(sim, self.exit_host,
                                     upstream=GOOGLE_DNS_ADDR)
        self.bridge = TorRelay(sim, self.bridge_host, name="bridge")
        self.middle = TorRelay(sim, self.middle_host, name="middle")
        self.exit = TorRelay(sim, self.exit_host, resolver=exit_resolver,
                             name="exit")
        self.front = CdnFront(sim, self.front_host,
                              bridge_addr=self.bridge_host.address,
                              front_domain=FRONT_DOMAIN)


class _TorStreamChannel(MessageChannel):
    """One application stream multiplexed over the circuit."""

    def __init__(self, method: "TorMethod", stream_id: int) -> None:
        self.sim = method.testbed.sim
        self.method = method
        self.stream_id = stream_id
        self.inbox = Store(self.sim)
        self.open = True

    def send_message(self, length: int, meta: t.Any = None,
                     features: t.Optional[WireFeatures] = None) -> None:
        if not self.open:
            raise MiddlewareError("tor stream is closed")
        self.method._send_cell(cells.DATA, {
            "stream": self.stream_id, "length": length, "meta": meta})

    def recv_message(self) -> Event:
        return self.inbox.get()

    def close(self) -> None:
        if self.open:
            self.open = False
            self.method._send_cell(cells.END, {"stream": self.stream_id})
            self.method._streams.pop(self.stream_id, None)

    @property
    def state(self) -> str:
        return "ESTABLISHED" if self.open else "CLOSED"


class TorConnector(Connector):
    """Browser-facing connector that opens streams over the circuit."""

    name = "tor"

    def __init__(self, method: "TorMethod") -> None:
        self.method = method
        self.session_tickets: t.Set[str] = set()

    def open(self, hostname: str, port: int, use_tls: bool):
        channel = yield from self.method.open_stream(hostname, port)
        if not use_tls:
            return ChannelStream(channel)
        session = TlsSession(channel, sni=hostname)
        resumed = hostname in self.session_tickets
        try:
            yield from session.client_handshake(resumed=resumed)
        except BaseException:
            try:
                channel.close()
            except (MiddlewareError, TransportError):
                pass  # circuit already down: nothing left to END
            raise
        self.session_tickets.add(hostname)
        return TlsStream(session)


class TorMethod(AccessMethod):
    """Tor over meek, as measured in the paper (Tor Browser 6.5)."""

    name = "tor"
    display_name = "Tor"
    requires_client_software = True

    def __init__(self, testbed, poll_interval: float = 0.08) -> None:
        super().__init__(testbed)
        self.poll_interval = poll_interval
        self.network: t.Optional[TorNetwork] = None
        self.meek: t.Optional[MeekChannel] = None
        self.circuit_id: t.Optional[int] = None
        self._streams: t.Dict[int, _TorStreamChannel] = {}
        # Key space = the control-protocol command vocabulary (a few
        # fixed strings); the per-command waiter lists are popped.
        self._control_waiters: t.Dict[str, t.List[Event]] = {}  # reprolint: disable=unbounded-cache-field
        self._connected_waiters: t.Dict[int, Event] = {}
        self.bootstrap_time: float = 0.0
        self.connected = False

    # -- lifecycle ---------------------------------------------------------------------

    def install_network(self) -> TorNetwork:
        if self.network is None:
            self.network = TorNetwork(self.testbed)
        return self.network

    def setup(self):
        """Bootstrap: meek TLS, directory fetch, 3-hop circuit build."""
        testbed = self.testbed
        started = testbed.sim.now
        self.install_network()

        # 1. HTTPS to the CDN front (looks like ordinary web traffic,
        #    except for the cadence the GFW has learned to spot).
        address = yield testbed.resolver.resolve(FRONT_DOMAIN)
        transport = testbed.transport_of(testbed.client)
        conn = yield transport.connect_tcp(
            address, 443,
            features=WireFeatures(protocol_tag="tls", sni=FRONT_DOMAIN,
                                  entropy=7.9),
            timeout=60.0)
        try:
            tls = TlsSession(conn, sni=FRONT_DOMAIN)
            yield from tls.client_handshake()
            self.meek = MeekChannel(testbed.sim, tls,
                                    poll_interval=self.poll_interval)
            testbed.sim.process(self._demux_loop(), name="tor-demux")

            # 2. Circuit: CREATE to the bridge, EXTEND twice.
            self.circuit_id = next(_circuit_ids)
            self.meek.send_message(
                cells.CELL_SIZE,
                meta=cells.make_cell(self.circuit_id, cells.CREATE))
            yield self._wait_control(cells.CREATED)
            network = self.network
            assert network is not None
            for next_hop in (network.middle_host.address,
                             network.exit_host.address):
                self.meek.send_message(
                    cells.CELL_SIZE,
                    meta=cells.make_cell(self.circuit_id, cells.EXTEND,
                                         {"next": str(next_hop), "length": 84}))
                yield self._wait_control(cells.EXTENDED)

            # 3. Directory fetch (microdescriptor consensus) through the
            #    fresh circuit — the bulk of Tor's first-time cost.
            directory = yield from self.open_stream(
                "directory.torproject.internal", 80, internal=True)
            try:
                directory.send_message(300, meta=("dir-request",))
                reply = yield directory.recv_message()
                if not (isinstance(reply, tuple)
                        and reply[0] == "dir-response"):
                    raise MiddlewareError(
                        f"directory fetch failed: {reply!r}")
            except BaseException:
                # The stream table must not keep a dead directory
                # stream; the outer handler only cleans up the channel.
                directory.close()
                raise
            directory.close()
        except BaseException:
            # A failed bootstrap must not strand the meek connection.
            if self.meek is not None:
                self.meek.close()
            conn.close()
            raise

        self.bootstrap_time = testbed.sim.now - started
        self.connected = True

    def connector(self) -> TorConnector:
        if not self.connected:
            raise MiddlewareError("tor is not bootstrapped; run setup() first")
        return TorConnector(self)

    def teardown(self) -> None:
        if self.meek is not None:
            self.meek.close()
        self.connected = False

    # -- streams ----------------------------------------------------------------------------

    def open_stream(self, hostname: str, port: int, internal: bool = False):
        """Generator: BEGIN a stream, wait for CONNECTED."""
        stream_id = next(_stream_ids)
        channel = _TorStreamChannel(self, stream_id)
        self._streams[stream_id] = channel
        waiter = self.testbed.sim.event()
        self._connected_waiters[stream_id] = waiter
        self._send_cell(cells.BEGIN, {"stream": stream_id, "host": hostname,
                                      "port": port, "internal": internal,
                                      "length": 64})
        yield waiter
        return channel

    def _send_cell(self, command: str, payload: t.Dict[str, t.Any]) -> None:
        if self.meek is None or self.circuit_id is None:
            raise MiddlewareError("tor transport is not up")
        length = int(payload.get("length", 0))
        self.meek.send_message(
            cells.wire_bytes(length),
            meta=cells.make_cell(self.circuit_id, command, payload))

    # -- inbound cell demux --------------------------------------------------------------------

    def _demux_loop(self):
        meek = self.meek
        assert meek is not None
        while True:
            try:
                message = yield meek.recv_message()
            except (MiddlewareError, TransportError) as exc:
                self._fail_everything(exc)
                return
            if message is None:
                self._fail_everything(MiddlewareError("circuit closed"))
                return
            if not cells.is_cell(message):
                continue
            _tag, _cid, command, payload = message
            if command in (cells.CREATED, cells.EXTENDED):
                self._resolve_control(command)
            elif command == cells.CONNECTED:
                waiter = self._connected_waiters.pop(payload["stream"], None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(None)
            elif command == cells.DATA:
                stream = self._streams.get(payload["stream"])
                if stream is not None:
                    # Bounded by Tor's own flow: the circuit delivers
                    # what the exit relayed for one paced TCP stream.
                    stream.inbox.put(payload["meta"])  # reprolint: disable=unbounded-queue
            elif command == cells.END:
                self._end_stream(payload)

    def _end_stream(self, payload: t.Dict[str, t.Any]) -> None:
        stream_id = payload.get("stream")
        waiter = self._connected_waiters.pop(stream_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.fail(MiddlewareError(
                f"tor stream {stream_id} refused: {payload.get('reason')}"))
        stream = self._streams.pop(stream_id, None)
        if stream is not None:
            stream.open = False
            stream.inbox.put(None)

    def _wait_control(self, command: str) -> Event:
        waiter = self.testbed.sim.event()
        self._control_waiters.setdefault(command, []).append(waiter)
        return waiter

    def _resolve_control(self, command: str) -> None:
        waiters = self._control_waiters.get(command) or []
        if waiters:
            waiter = waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed(None)

    def _fail_everything(self, exc: Exception) -> None:
        for waiters in self._control_waiters.values():
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.fail(MiddlewareError(str(exc)))
        for waiter in self._connected_waiters.values():
            if not waiter.triggered:
                waiter.fail(MiddlewareError(str(exc)))
        self.connected = False
