"""meek: domain-fronted HTTPS transport (Fifield et al., PETS 2015).

The client speaks ordinary HTTPS to a CDN *front* domain; the CDN
forwards request bodies to the actual Tor bridge.  Tor cells ride as
HTTP POST bodies, and the client polls even when idle so downstream
cells have a channel back.  Both properties are what the paper pays
for: polling adds latency to every cell, and by 2017 the GFW's DPI
classified exactly this cadence-plus-front combination (the 4.4% loss
measured in Figure 5c).
"""

from __future__ import annotations

import itertools
import typing as t

from ...errors import MiddlewareError, TransportError
from ...net import Host, WireFeatures
from ...sim import Event, Simulator, Store
from ...transport import TcpConnection, TlsSession, TransportLayer
from ..base import MessageChannel
from .relay import OR_PORT, relay_link_features

#: HTTP overhead per meek POST / response.
POST_OVERHEAD = 160
RESPONSE_OVERHEAD = 80
#: Client poll cadence while idle.  meek's real poller backs off when
#: idle but polls aggressively (~100 ms) while traffic is flowing.
DEFAULT_POLL_INTERVAL = 0.08

_session_ids = itertools.count(1)


class CdnFront:
    """The CDN edge: terminates client TLS, forwards bodies to bridges."""

    def __init__(self, sim: Simulator, host: Host, bridge_addr,
                 front_domain: str, max_hold: float = 0.35) -> None:
        self.sim = sim
        self.host = host
        self.bridge_addr = bridge_addr
        self.front_domain = front_domain
        self.max_hold = max_hold
        self.posts_served = 0
        # Key space = one long-lived session id per meek client; the
        # bridge leg survives the client's polling, so dropping state
        # between polls would sever the tunnel.
        self._sessions: t.Dict[int, t.Dict[str, t.Any]] = {}  # reprolint: disable=unbounded-cache-field
        transport = t.cast(TransportLayer, host.transport)
        transport.listen_tcp(443, self._accept)

    def _accept(self, conn: TcpConnection) -> None:
        self.sim.process(self._serve(conn), name="cdn-front")

    def _serve(self, conn: TcpConnection):
        session = TlsSession(conn)
        try:
            yield from session.server_handshake()
            while True:
                message = yield session.recv()
                if message is None:
                    return
                if not (isinstance(message, tuple) and message[0] == "meek-post"):
                    continue
                _tag, session_id, batch = message
                self.posts_served += 1
                state = yield from self._session_state(session_id)
                if state is None:
                    session.send(RESPONSE_OVERHEAD,
                                 meta=("meek-resp", "bridge-unreachable", ()))
                    continue
                for length, meta in batch:
                    state["bridge"].send_message(length, meta=meta,
                                                 features=relay_link_features())
                # Long-poll: hold the response briefly so a reply that
                # is already in flight from the bridge rides this POST
                # instead of waiting out the client's next poll (the
                # meek-server turnaround behaviour).
                queued: Store = state["queue"]
                if not len(queued):
                    yield self.sim.any_of(
                        [queued.watch(), self.sim.timeout(self.max_hold)])
                downstream = []
                total = 0
                while len(queued):
                    item = yield queued.get()
                    downstream.append(item)
                    total += item[0]
                session.send(RESPONSE_OVERHEAD + total,
                             meta=("meek-resp", "ok", tuple(downstream)))
        except TransportError:
            return

    def _session_state(self, session_id: int):
        state = self._sessions.get(session_id)
        if state is not None:
            return state
        transport = t.cast(TransportLayer, self.host.transport)
        try:
            bridge = yield transport.connect_tcp(
                self.bridge_addr, OR_PORT, features=relay_link_features(),
                timeout=20.0)
        except TransportError:
            return None
        state = {"bridge": bridge, "queue": Store(self.sim)}
        self._sessions[session_id] = state
        self.sim.process(self._pump_bridge(state), name="front-bridge-pump")
        return state

    def _pump_bridge(self, state: t.Dict[str, t.Any]):
        """Queue downstream cells until the client's next poll."""
        from .relay import _payload_length
        bridge: TcpConnection = state["bridge"]
        queue: Store = state["queue"]
        while True:
            try:
                message = yield bridge.recv_message()
            except TransportError:
                return
            if message is None:
                return
            length = 514
            if isinstance(message, tuple) and len(message) == 4:
                length = max(514, _payload_length(message[3]))
            # Drained on every client poll (<= one poll interval of
            # backlog); capping it would stall the bridge pump and
            # change the calibrated meek PLT traces.
            queue.put((length, message))  # reprolint: disable=unbounded-queue


class MeekChannel(MessageChannel):
    """Client side: a cell channel tunneled through HTTPS polling."""

    def __init__(self, sim: Simulator, tls: TlsSession,
                 poll_interval: float = DEFAULT_POLL_INTERVAL) -> None:
        self.sim = sim
        self.tls = tls
        self.poll_interval = poll_interval
        self.session_id = next(_session_ids)
        self._outbound: t.List[t.Tuple[int, t.Any]] = []
        self._inbox = Store(sim)
        self._kick = sim.event()
        self._closed = False
        self.polls_sent = 0
        sim.process(self._poll_loop(), name="meek-poll")

    # -- MessageChannel ------------------------------------------------------------

    def send_message(self, length: int, meta: t.Any = None,
                     features: t.Optional[WireFeatures] = None) -> None:
        if self._closed:
            raise MiddlewareError("meek channel is closed")
        self._outbound.append((length, meta))
        if not self._kick.triggered:
            self._kick.succeed(None)

    def recv_message(self) -> Event:
        return self._inbox.get()

    def close(self) -> None:
        self._closed = True
        if not self._kick.triggered:
            self._kick.succeed(None)

    @property
    def state(self) -> str:
        return "CLOSED" if self._closed else "ESTABLISHED"

    # -- polling ---------------------------------------------------------------------

    def _poll_loop(self):
        # meek's poller: aggressive while traffic flows, exponential
        # backoff (up to ~5 s) while idle — otherwise the idle channel
        # would cost hundreds of empty POSTs a minute.
        interval = self.poll_interval
        while not self._closed:
            if not self._outbound:
                # Idle: wait for data or the poll timer, whichever first.
                self._kick = self.sim.event()
                yield self.sim.any_of(
                    [self._kick, self.sim.timeout(interval)])
                if self._closed:
                    return
            if self._outbound:
                interval = self.poll_interval  # traffic: reset cadence
            else:
                interval = min(interval * 1.7, 5.0)
            batch, self._outbound = self._outbound, []
            body = sum(length for length, _meta in batch)
            self.polls_sent += 1
            try:
                self.tls.send(POST_OVERHEAD + body,
                              meta=("meek-post", self.session_id, tuple(batch)))
                response = yield self.tls.recv()
            except TransportError as exc:
                self._fail(exc)
                return
            if response is None:
                self._fail(MiddlewareError("meek front closed the channel"))
                return
            if not (isinstance(response, tuple) and response[0] == "meek-resp"):
                continue
            _tag, status, downstream = response
            if status != "ok":
                self._fail(MiddlewareError(f"meek bridge failure: {status}"))
                return
            if downstream:
                interval = self.poll_interval  # downstream flowing: stay hot
            for _length, cell in downstream:
                self._inbox.put(cell)

    def _fail(self, exc: Exception) -> None:
        self._closed = True
        while self._inbox._getters:
            self._inbox._getters.popleft().fail(
                MiddlewareError(f"meek transport failed: {exc}"))
