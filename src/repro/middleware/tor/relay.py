"""Tor relay nodes: circuit switching and exit behaviour.

Each relay accepts per-circuit TCP connections from its predecessor,
handles CREATE/EXTEND, and pumps RELAY cells in both directions.  The
exit relay additionally resolves target names (Tor resolves at the
exit — which is how Tor sidesteps DNS poisoning) and opens the real
target connections.
"""

from __future__ import annotations

import typing as t

from ...dns import StubResolver
from ...errors import MiddlewareError, NameResolutionError, TransportError
from ...net import Host, IPv4Address, WireFeatures
from ...sim import Simulator
from ...transport import TcpConnection, TransportLayer
from . import cells
from .cells import CELL_SIZE

#: Port relays listen on (OR port).
OR_PORT = 9001


def relay_link_features() -> WireFeatures:
    """Relay-to-relay TLS with Tor's distinctive fingerprint."""
    return WireFeatures(protocol_tag="tor-tls", entropy=7.95)


class _Circuit:
    """Relay-side state for one circuit hop."""

    __slots__ = ("circuit_id", "upstream", "downstream", "streams")

    def __init__(self, circuit_id: int, upstream: TcpConnection) -> None:
        self.circuit_id = circuit_id
        self.upstream = upstream                       # toward the client
        self.downstream: t.Optional[TcpConnection] = None  # toward the exit
        self.streams: t.Dict[int, TcpConnection] = {}  # exit only


class TorRelay:
    """A middle/exit-capable relay running on a simulated host."""

    def __init__(self, sim: Simulator, host: Host,
                 resolver: t.Optional[StubResolver] = None,
                 name: t.Optional[str] = None) -> None:
        self.sim = sim
        self.host = host
        self.name = name or host.name
        self.resolver = resolver
        self._circuits: t.Dict[t.Tuple[int, int], _Circuit] = {}
        self.cells_relayed = 0
        transport = t.cast(TransportLayer, host.transport)
        transport.listen_tcp(OR_PORT, self._accept)

    @property
    def address(self) -> IPv4Address:
        return self.host.address

    # -- inbound connection handling -------------------------------------------------

    def _accept(self, conn: TcpConnection) -> None:
        self.sim.process(self._serve_upstream(conn),
                         name=f"{self.name}-upstream")

    def _serve_upstream(self, conn: TcpConnection):
        """Handle cells arriving from the client direction."""
        try:
            while True:
                try:
                    message = yield conn.recv_message()
                except TransportError:
                    return
                if message is None:
                    return
                if not cells.is_cell(message):
                    continue  # garbage (e.g. a GFW probe): swallow silently
                _tag, circuit_id, command, payload = message
                key = (id(conn), circuit_id)
                circuit = self._circuits.get(key)
                if command == cells.CREATE:
                    self._circuits[key] = _Circuit(circuit_id, conn)
                    conn.send_message(
                        CELL_SIZE,
                        meta=cells.make_cell(circuit_id, cells.CREATED),
                        features=relay_link_features())
                    continue
                if circuit is None:
                    continue
                if command == cells.EXTEND:
                    yield from self._extend(circuit, payload)
                elif command in (cells.BEGIN, cells.DATA, cells.END):
                    if circuit.downstream is not None:
                        self.cells_relayed += 1
                        circuit.downstream.send_message(
                            cells.wire_bytes(_payload_length(payload)),
                            meta=message, features=relay_link_features())
                    else:
                        yield from self._exit_handle(circuit, command, payload)
        finally:
            # The client link is gone; its circuits can never carry
            # another cell.  Dropping their entries also prevents a
            # recycled id(conn) from colliding with a dead circuit.
            for key in [key for key in self._circuits
                        if key[0] == id(conn)]:
                del self._circuits[key]

    def _extend(self, circuit: _Circuit, payload: t.Any):
        """EXTEND: splice in a connection to the next relay."""
        next_addr = payload["next"]
        transport = t.cast(TransportLayer, self.host.transport)
        try:
            downstream = yield transport.connect_tcp(
                next_addr, OR_PORT, features=relay_link_features(),
                timeout=30.0)
        except TransportError:
            self._reply(circuit, cells.END, {"reason": "extend-failed"})
            return
        try:
            downstream.send_message(
                CELL_SIZE,
                meta=cells.make_cell(circuit.circuit_id, cells.CREATE),
                features=relay_link_features())
            created = yield downstream.recv_message()
        except TransportError:
            downstream.close()
            self._reply(circuit, cells.END, {"reason": "extend-failed"})
            return
        if not (cells.is_cell(created) and created[2] == cells.CREATED):
            downstream.close()
            self._reply(circuit, cells.END, {"reason": "create-failed"})
            return
        circuit.downstream = downstream
        self.sim.process(self._pump_backward(circuit),
                         name=f"{self.name}-backward")
        self._reply(circuit, cells.EXTENDED)

    def _pump_backward(self, circuit: _Circuit):
        """Forward cells arriving from downstream back toward the client."""
        downstream = circuit.downstream
        assert downstream is not None
        while True:
            try:
                message = yield downstream.recv_message()
            except TransportError:
                return
            if message is None:
                return
            if not cells.is_cell(message):
                continue
            payload = message[3]
            self.cells_relayed += 1
            try:
                circuit.upstream.send_message(
                    cells.wire_bytes(_payload_length(payload)),
                    meta=message, features=relay_link_features())
            except TransportError:
                return

    # -- exit-node duties ----------------------------------------------------------------

    def _exit_handle(self, circuit: _Circuit, command: str, payload: t.Any):
        if command == cells.BEGIN:
            if payload.get("internal"):
                # Directory stream served by the relay itself.
                circuit.streams[payload["stream"]] = "internal"  # type: ignore[assignment]
                self._reply(circuit, cells.CONNECTED,
                            {"stream": payload["stream"]})
                return
            yield from self._exit_begin(circuit, payload)
        elif command == cells.DATA:
            stream_conn = circuit.streams.get(payload["stream"])
            if stream_conn == "internal":
                self._serve_directory(circuit, payload)
            elif stream_conn is not None:
                stream_conn.send_message(payload["length"],
                                         meta=payload["meta"])
        elif command == cells.END:
            stream_conn = circuit.streams.pop(payload.get("stream"), None)
            if stream_conn is not None and stream_conn != "internal":
                stream_conn.close()

    def _serve_directory(self, circuit: _Circuit, payload: t.Any) -> None:
        """Answer a directory request with the consensus blob."""
        from .client import DIRECTORY_BYTES
        self._reply(circuit, cells.DATA,
                    {"stream": payload["stream"], "length": DIRECTORY_BYTES,
                     "meta": ("dir-response", DIRECTORY_BYTES)})

    def _exit_begin(self, circuit: _Circuit, payload: t.Any):
        if self.resolver is None:
            raise MiddlewareError(f"{self.name} is not exit-capable (no resolver)")
        stream_id = payload["stream"]
        host, port = payload["host"], payload["port"]
        transport = t.cast(TransportLayer, self.host.transport)
        try:
            address = yield self.resolver.resolve(host)
            target = yield transport.connect_tcp(address, port, timeout=30.0)
        except (NameResolutionError, TransportError) as exc:
            self._reply(circuit, cells.END,
                        {"stream": stream_id, "reason": str(exc)})
            return
        circuit.streams[stream_id] = target
        self.sim.process(self._pump_target(circuit, stream_id, target),
                         name=f"{self.name}-stream-{stream_id}")
        self._reply(circuit, cells.CONNECTED, {"stream": stream_id})

    def _pump_target(self, circuit: _Circuit, stream_id: int,
                     target: TcpConnection):
        """Wrap target responses into DATA cells toward the client."""
        while True:
            try:
                message = yield target.recv_message()
            except TransportError:
                self._reply(circuit, cells.END,
                            {"stream": stream_id, "reason": "reset"})
                return
            if message is None:
                self._reply(circuit, cells.END,
                            {"stream": stream_id, "reason": "eof"})
                return
            # Length is unknown at the exit (message metas don't carry
            # it); approximate with one KB-scale response per meta by
            # asking the meta itself when available.
            length = _meta_length(message)
            self._reply(circuit, cells.DATA,
                        {"stream": stream_id, "length": length,
                         "meta": message})

    def _reply(self, circuit: _Circuit, command: str,
               payload: t.Any = None) -> None:
        try:
            circuit.upstream.send_message(
                cells.wire_bytes(_payload_length(payload)),
                meta=cells.make_cell(circuit.circuit_id, command, payload),
                features=relay_link_features())
        except TransportError:
            pass


def _payload_length(payload: t.Any) -> int:
    if isinstance(payload, dict):
        return int(payload.get("length", 0))
    return 0


def _meta_length(meta: t.Any) -> int:
    """Byte length of an application message meta (shared estimator)."""
    from ..base import estimate_meta_length
    return estimate_meta_length(meta)
