"""The survey's "other methods" (34% of bypassers, §4.1).

Two representatives:

* :class:`HostsFileMethod` — editing ``/etc/hosts`` with a known-good
  Google IP to sidestep DNS poisoning.  It worked for a while in the
  early 2010s; by the paper's measurement era the GFW's SNI filter
  resets those flows anyway, which this implementation demonstrates.
* :class:`PublicWebProxy` — a Free-Gate-style public web gateway: an
  unencrypted HTTP service outside the wall that fetches pages on the
  user's behalf.  Trivially detectable (the target URL travels in
  cleartext), so the GFW's URL keyword filter kills it the moment the
  blocked domain appears on the wire — and its well-known domain is
  itself a blocking target.
"""

from __future__ import annotations

import typing as t

from ..dns import StubResolver
from ..dns.records import DnsRecord
from ..dns.resolver import _CacheEntry
from ..errors import MiddlewareError
from ..http.client import Connector, DirectConnector
from ..net import WireFeatures
from .base import AccessMethod, ChannelStream, RelayedChannel, estimate_meta_length, unwrap_forward, wrap_forward

#: Port the public web proxy listens on.
WEB_PROXY_PORT = 8000


class HostsFileMethod(AccessMethod):
    """Pin scholar.google.com to a believed-good IP in the hosts file."""

    name = "hosts-file"
    display_name = "hosts-file editing"
    requires_client_software = False

    def __init__(self, testbed, pinned_address: t.Optional[str] = None) -> None:
        super().__init__(testbed)
        from ..measure.testbed import SCHOLAR_ADDR
        self.pinned_address = pinned_address or SCHOLAR_ADDR
        self.installed = False

    def setup(self):
        """Install the pin: an eternal cache entry in the stub resolver,
        which is exactly what a hosts-file entry is to the OS."""
        resolver: StubResolver = self.testbed.resolver
        for hostname in ("scholar.google.com", "www.google.com"):
            resolver.cache[hostname] = _CacheEntry(
                (DnsRecord(hostname, "A", self.pinned_address, ttl=1e12),),
                expires=float("inf"), rcode="NOERROR")
        self.installed = True
        return
        yield  # pragma: no cover

    def connector(self) -> DirectConnector:
        if not self.installed:
            raise MiddlewareError("hosts-file pin not installed; run setup()")
        return self.testbed.direct_connector()

    def teardown(self) -> None:
        if self.installed:
            self.testbed.resolver.flush_cache()
            self.installed = False


class _WebProxyChannel(RelayedChannel):
    """Client side of a web-proxy fetch stream (plain HTTP on the wire)."""


class WebProxyConnector(Connector):
    """Connector that tunnels requests through the public gateway.

    The fatal flaw is visible right here: the target hostname rides in
    *cleartext* in the proxy request, so the GFW's URL filter sees it.
    """

    name = "web-proxy"

    def __init__(self, method: "PublicWebProxy") -> None:
        self.method = method

    def open(self, hostname: str, port: int, use_tls: bool):
        testbed = self.method.testbed
        transport = testbed.transport_of(testbed.client)
        conn = yield transport.connect_tcp(
            self.method.gateway_addr, WEB_PROXY_PORT,
            features=WireFeatures(protocol_tag="plain-http",
                                  plaintext=f"GET http://{hostname}/",
                                  entropy=4.2),
            timeout=30.0)
        try:
            conn.send_message(
                64, meta=("wp-connect", hostname, port),
                features=WireFeatures(protocol_tag="plain-http",
                                      plaintext=f"CONNECT {hostname}",
                                      entropy=4.2))
            reply = yield conn.recv_message()
            if reply != ("wp-ready",):
                raise MiddlewareError(
                    f"web proxy refused {hostname}: {reply!r}")
        except BaseException:
            conn.close()  # a refused or dead gateway must not strand the dial
            raise
        channel = _WebProxyChannel(
            testbed.sim, conn, overhead=24,
            features=WireFeatures(protocol_tag="plain-http",
                                  plaintext=hostname, entropy=4.5),
            name="web-proxy")
        # Web proxies terminate TLS at the gateway: the browser speaks
        # plain HTTP to the proxy regardless of the target scheme.
        return ChannelStream(channel)


class PublicWebProxy(AccessMethod):
    """A Free-Gate-style public web gateway outside the wall."""

    name = "web-proxy"
    display_name = "public web proxy"
    requires_client_software = False

    def __init__(self, testbed) -> None:
        super().__init__(testbed)
        self.gateway_addr = None
        self.deployed = False
        self.fetches = 0

    def setup(self):
        from ..measure.testbed import GOOGLE_DNS_ADDR
        testbed = self.testbed
        self.gateway_addr = testbed.remote_vm.address
        transport = testbed.transport_of(testbed.remote_vm)
        if WEB_PROXY_PORT not in transport._tcp_listeners:
            resolver = StubResolver(testbed.sim, testbed.remote_vm,
                                    upstream=GOOGLE_DNS_ADDR, port=5363)
            transport.listen_tcp(
                WEB_PROXY_PORT,
                lambda conn: testbed.sim.process(
                    self._serve(conn, resolver), name="web-proxy"))
        self.deployed = True
        return
        yield  # pragma: no cover

    def connector(self) -> WebProxyConnector:
        if not self.deployed:
            raise MiddlewareError("web proxy is not deployed; run setup()")
        return WebProxyConnector(self)

    def _serve(self, conn, resolver: StubResolver):
        from ..errors import NameResolutionError, TransportError
        try:
            first = yield conn.recv_message()
        except TransportError:
            return
        if not (isinstance(first, tuple) and first[0] == "wp-connect"):
            conn.close()
            return
        _tag, hostname, port = first
        transport = self.testbed.transport_of(self.testbed.remote_vm)
        from ..transport import TlsSession
        try:
            address = yield resolver.resolve(hostname)
            # The gateway terminates TLS itself (as 2000s-era CGI
            # proxies did) and hands the user plaintext.
            target = yield transport.connect_tcp(address, 443, timeout=30.0)
            session = TlsSession(target, sni=hostname)
            yield from session.client_handshake()
        except (NameResolutionError, TransportError):
            conn.close()
            return
        self.fetches += 1
        conn.send_message(16, meta=("wp-ready",))
        self.testbed.sim.process(self._pump_up(conn, session), name="wp-up")
        self.testbed.sim.process(self._pump_down(conn, session), name="wp-down")

    def _pump_up(self, conn, session):
        from ..errors import TransportError
        while True:
            try:
                message = yield conn.recv_message()
            except TransportError:
                session.conn.close()
                return
            if message is None:
                session.conn.close()
                return
            try:
                length, meta = unwrap_forward(message)
            except MiddlewareError:
                continue
            try:
                session.send(length, meta=meta)
            except TransportError:
                conn.close()
                return

    def _pump_down(self, conn, session):
        from ..errors import TransportError
        while True:
            try:
                message = yield session.recv()
            except TransportError:
                conn.close()
                return
            if message is None:
                conn.close()
                return
            length = estimate_meta_length(message)
            try:
                # Replies carry the page content in cleartext too.
                conn.send_message(
                    length, meta=wrap_forward(length, message),
                    features=WireFeatures(protocol_tag="plain-http",
                                          plaintext="proxied page content",
                                          entropy=4.8))
            except TransportError:
                session.conn.close()
                return
