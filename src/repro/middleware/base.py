"""Shared machinery for access-method middleware.

Every access method ultimately hands the browser a
:class:`~repro.http.client.Stream`.  Proxied methods build those
streams out of *message channels* — anything with ``send_message`` /
``recv_message`` (a :class:`~repro.transport.TcpConnection`, or a
:class:`RelayedChannel` riding across a proxy chain).  TLS-in-tunnel
works because :class:`~repro.transport.TlsSession` only needs the
channel interface.

Relay framing: proxies forward application messages wrapped as
``("fwd", length, meta)`` so every hop knows how many bytes to put on
its wire; each hop chooses its own wire features, which is how tunnel
legs control what the GFW can see.
"""

from __future__ import annotations

import typing as t

from ..errors import MiddlewareError, TransportError
from ..http.client import Connector, Stream
from ..net import WireFeatures
from ..sim import Event, Simulator, Store

if t.TYPE_CHECKING:  # pragma: no cover
    from ..measure.testbed import Testbed

#: Framing label for relayed application messages.
FWD = "fwd"


def wrap_forward(length: int, meta: t.Any) -> t.Tuple[str, int, t.Any]:
    return (FWD, length, meta)


def unwrap_forward(message: t.Any) -> t.Tuple[int, t.Any]:
    if not (isinstance(message, tuple) and len(message) == 3
            and message[0] == FWD):
        raise MiddlewareError(f"malformed relay frame: {message!r}")
    return message[1], message[2]


class MessageChannel:
    """Duck-typed protocol: what a relayed endpoint looks like."""

    sim: Simulator

    def send_message(self, length: int, meta: t.Any = None,
                     features: t.Optional[WireFeatures] = None) -> None:
        raise NotImplementedError

    def recv_message(self) -> Event:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class RelayedChannel(MessageChannel):
    """Client-side endpoint of a proxied stream.

    ``send_message`` wraps the payload in relay framing and pushes it
    down the underlying channel with ``overhead`` extra bytes and the
    tunnel's wire features; incoming frames are unwrapped into a local
    inbox.  A channel is *pumped* by its owning protocol, which decides
    when to start/stop (see the per-method client implementations).
    """

    def __init__(self, sim: Simulator, underlying: MessageChannel,
                 overhead: int, features: t.Optional[WireFeatures],
                 name: str = "relay") -> None:
        self.sim = sim
        self.underlying = underlying
        self.overhead = overhead
        self.features = features
        self.name = name
        self._inbox = Store(sim)
        self._closed = False
        self._pump_started = False

    # -- MessageChannel ----------------------------------------------------------

    def send_message(self, length: int, meta: t.Any = None,
                     features: t.Optional[WireFeatures] = None) -> None:
        # Inner features are deliberately ignored: on the tunneled leg
        # the wire shows only the tunnel's own features.
        self._ensure_pump()
        self.underlying.send_message(
            length + self.overhead, meta=wrap_forward(length, meta),
            features=self.features)

    def recv_message(self) -> Event:
        self._ensure_pump()
        return self._inbox.get()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.underlying.close()

    # -- state, mirroring TcpConnection enough for TlsStream.alive -------------------

    @property
    def state(self) -> str:
        return getattr(self.underlying, "state", "ESTABLISHED")

    # -- pumping -------------------------------------------------------------------

    def _ensure_pump(self) -> None:
        if self._pump_started:
            return
        self._pump_started = True
        self.sim.process(self._pump(), name=f"{self.name}-pump")

    def _pump(self):
        while True:
            try:
                message = yield self.underlying.recv_message()
            except TransportError as exc:
                self._fail_waiters(exc)
                return
            if message is None:
                # One EOF sentinel, then the pump exits — nothing grows.
                self._inbox.put(None)  # reprolint: disable=unbounded-queue
                return
            try:
                _length, meta = unwrap_forward(message)
            except MiddlewareError:
                continue  # drop junk rather than crash the pump
            # Bounded by the sender: this inbox mirrors one TCP stream
            # whose sender paces on ACKs, and capping it would change
            # the calibrated Figure 4-6 wire traces.
            self._inbox.put(meta)  # reprolint: disable=unbounded-queue

    def _fail_waiters(self, exc: Exception) -> None:
        while self._inbox._getters:
            self._inbox._getters.popleft().fail(type(exc)(str(exc)))


class ChannelStream(Stream):
    """Adapt any MessageChannel to the browser's Stream interface."""

    def __init__(self, channel: MessageChannel) -> None:
        self.channel = channel

    def send(self, length: int, meta: t.Any) -> None:
        self.channel.send_message(length, meta)

    def recv(self) -> Event:
        return self.channel.recv_message()

    def close(self) -> None:
        self.channel.close()

    @property
    def alive(self) -> bool:
        return getattr(self.channel, "state", "ESTABLISHED") == "ESTABLISHED"


def pump_between(sim: Simulator, source: MessageChannel, sink: MessageChannel,
                 rewrap: t.Callable[[int, t.Any], t.Tuple[int, t.Any, t.Optional[WireFeatures]]],
                 name: str = "pump"):
    """Generator: forward relay frames from ``source`` into ``sink``.

    ``rewrap(length, meta)`` returns the (length, meta, features) to
    send on the sink side — how a proxy hop swaps framing/features.
    Ends on EOF or transport failure, closing the sink.
    """
    # Fluid mode drains the source's already-delivered frames in one
    # wakeup (one event per quantum) instead of one event round-trip
    # per message.  Only raw TCP inboxes qualify: a RelayedChannel's
    # inbox holds unwrapped metas, not relay frames.
    inbox = getattr(source, "_inbox", None) if hasattr(source, "handle_segment") else None
    while True:
        try:
            message = yield source.recv_message()
        except TransportError:
            sink.close()
            return
        while True:
            if message is None:
                sink.close()
                return
            try:
                length, meta = unwrap_forward(message)
            except MiddlewareError:
                pass  # drop junk rather than crash the pump
            else:
                out_length, out_meta, out_features = rewrap(length, meta)
                try:
                    sink.send_message(out_length, meta=out_meta,
                                      features=out_features)
                except TransportError:
                    source.close()
                    return
            if sim.fluid is None or inbox is None:
                break
            ready, message = inbox.get_nowait()
            if not ready:
                break


def estimate_meta_length(meta: t.Any) -> int:
    """Byte length of an application message meta.

    Proxies relaying *inbound* traffic (target → client) see only the
    meta, not the wire length, so they need to reconstruct it.  Exact
    for this reproduction's workloads: HTTP messages expose
    ``.size()``, TLS handshake metas map onto the constants in
    :mod:`repro.transport.tls`, TLS app records add record overhead.
    """
    from ..transport import tls as tls_sizes
    size = getattr(meta, "size", None)
    if callable(size):
        return int(size())
    if isinstance(meta, tuple) and meta:
        if meta[0] == "tls-app":
            return estimate_meta_length(meta[1]) + tls_sizes.RECORD_OVERHEAD
        if meta[0] == "tls" and len(meta) >= 2:
            by_name = {
                "client-hello": tls_sizes.CLIENT_HELLO,
                "server-hello": tls_sizes.SERVER_HELLO_WITH_CERT,
                "server-hello-abbreviated": tls_sizes.ABBREVIATED_SERVER_HELLO,
                "client-finished": tls_sizes.CLIENT_KEY_EXCHANGE_FINISHED,
                "server-finished": tls_sizes.SERVER_FINISHED,
            }
            return by_name.get(meta[1], 300)
        if meta[0] == "echo":
            return 64
    return 600


class AccessMethod:
    """One way of reaching Google Scholar, drivable by the harness."""

    #: Machine-readable identifier (figure keys use these).
    name = "abstract"
    #: Name as printed in the paper's figures.
    display_name = "Abstract"
    #: True if client software beyond the browser must run (Figure 6b).
    requires_client_software = False

    def __init__(self, testbed: "Testbed") -> None:
        self.testbed = testbed

    def setup(self):
        """Generator process: prepare the method (tunnels, circuits…)."""
        return
        yield  # pragma: no cover

    def connector(self) -> Connector:
        """The connector the browser should use."""
        raise NotImplementedError

    def attach_client(self, host):
        """Generator: provision ``host`` and return a Connector for it.

        Used by the Figure 7 scalability experiment to drive many
        concurrent clients through one server-side deployment.  Tor
        does not implement this — the paper excludes Tor from the
        scalability study because the bridge infrastructure is not
        under the experimenter's control.
        """
        raise NotImplementedError(
            f"{self.display_name} does not support multi-client attachment")
        yield  # pragma: no cover

    def teardown(self) -> None:
        """Undo host hooks so methods can be swapped within one world."""
