"""Packet-level VPN tunneling: client and server hook machinery.

A VPN here is what it really is: IP-in-something encapsulation.  The
client host grows an outbound hook that wraps matching packets and
re-targets them at the VPN server; the server decapsulates, NATs, and
forwards.  Replies reverse the path.  Because the *outer* packet is all
the GFW can parse, the inner flow (destination, SNI, everything) is
invisible — which is precisely why VPNs beat DNS poisoning and SNI
resets.
"""

from __future__ import annotations

import typing as t

from ...net import Host, IPv4Address, Packet, Prefix, WireFeatures
from ...sim import Simulator
from .nat import NatTable

#: Selector deciding which outbound packets enter the tunnel.
RouteSelector = t.Callable[[Packet], bool]


class VpnTunnelServer:
    """Server-side decapsulation + NAT on a simulated host."""

    def __init__(self, sim: Simulator, host: Host, protocol: str,
                 overhead: int, features: WireFeatures) -> None:
        self.sim = sim
        self.host = host
        self.protocol = protocol
        self.overhead = overhead
        self.features = features
        self.nat = NatTable(host.address)
        #: client address -> active (so multiple clients can attach)
        self.clients: t.Set[str] = set()
        self.packets_decapsulated = 0
        self.packets_returned = 0
        host.inbound_hooks.append(self._hook)

    def attach_client(self, client_addr: IPv4Address) -> None:
        self.clients.add(str(client_addr))

    def detach_client(self, client_addr: IPv4Address) -> None:
        self.clients.discard(str(client_addr))

    def remove(self) -> None:
        if self._hook in self.host.inbound_hooks:
            self.host.inbound_hooks.remove(self._hook)

    def _hook(self, packet: Packet) -> t.Optional[Packet]:
        # Tunneled packet from a client: decapsulate, NAT, forward.
        if (packet.protocol == self.protocol and packet.is_tunneled
                and packet.dst == self.host.address
                and str(packet.src) in self.clients):
            inner = packet.inner()
            translated = self.nat.outbound(inner)
            if translated is None:
                return None
            self.packets_decapsulated += 1
            self.host.send(translated)
            return None
        # Reply from the open Internet matching a NAT entry: wrap it
        # back toward the client.
        if packet.dst == self.host.address and not packet.is_tunneled:
            restored = self.nat.inbound(packet)
            if restored is not None:
                self.packets_returned += 1
                wrapped = restored.encapsulate(
                    src=self.host.address, dst=restored.dst,
                    protocol=self.protocol, overhead=self.overhead,
                    features=self.features)
                self.host.send(wrapped)
                return None
        return packet


class VpnTunnelClient:
    """Client-side encapsulation hooks."""

    def __init__(self, sim: Simulator, host: Host,
                 server_addr: IPv4Address, protocol: str, overhead: int,
                 features: WireFeatures, selector: RouteSelector) -> None:
        self.sim = sim
        self.host = host
        self.server_addr = server_addr
        self.protocol = protocol
        self.overhead = overhead
        self.features = features
        self.selector = selector
        self.packets_tunneled = 0
        self.bytes_overhead = 0
        host.outbound_hooks.append(self._outbound)
        host.inbound_hooks.append(self._inbound)

    def remove(self) -> None:
        if self._outbound in self.host.outbound_hooks:
            self.host.outbound_hooks.remove(self._outbound)
        if self._inbound in self.host.inbound_hooks:
            self.host.inbound_hooks.remove(self._inbound)

    def _outbound(self, packet: Packet) -> t.Optional[Packet]:
        if packet.is_tunneled or packet.dst == self.server_addr:
            return packet  # never re-wrap tunnel traffic
        if not self.selector(packet):
            return packet
        self.packets_tunneled += 1
        self.bytes_overhead += self.overhead
        return packet.encapsulate(
            src=self.host.address, dst=self.server_addr,
            protocol=self.protocol, overhead=self.overhead,
            features=self.features)

    def _inbound(self, packet: Packet) -> t.Optional[Packet]:
        if (packet.protocol == self.protocol and packet.is_tunneled
                and packet.src == self.server_addr):
            return packet.inner()
        return packet


def full_tunnel_selector(local_prefixes: t.Sequence[Prefix]) -> RouteSelector:
    """Route everything except campus-local traffic (native VPN)."""

    def selector(packet: Packet) -> bool:
        return not any(packet.dst in prefix for prefix in local_prefixes)
    return selector


def split_tunnel_selector(routed_prefixes: t.Sequence[Prefix]) -> RouteSelector:
    """Route only configured prefixes (OpenVPN with explicit routes)."""

    def selector(packet: Packet) -> bool:
        return any(packet.dst in prefix for prefix in routed_prefixes)
    return selector
