"""Source NAT at the VPN server.

Decapsulated client packets leave the VPN server with the server's own
address; the table remembers how to map replies back to the client.
TCP/UDP map on ports, ICMP on the echo identifier.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

from ...net import IPv4Address, Packet
from ...transport.sockets import Datagram, _Echo
from ...transport.tcp import Segment


@dataclasses.dataclass(frozen=True)
class NatEntry:
    client_addr: IPv4Address
    client_port: int


class NatTable:
    """Port-based source NAT."""

    def __init__(self, public_addr: IPv4Address) -> None:
        self.public_addr = public_addr
        self._next_port = itertools.count(40_000)
        # (proto, nat_port) -> entry;  (proto, client, client_port) -> nat_port
        # Bounded by the run's distinct client flows: mappings must
        # outlive their flow (the packet layer has no flow-end signal),
        # and modeling NAT timeouts would change flow identity mid-run.
        self._by_nat: t.Dict[t.Tuple[str, int], NatEntry] = {}  # reprolint: disable=unbounded-cache-field
        self._by_client: t.Dict[t.Tuple[str, str, int], int] = {}  # reprolint: disable=unbounded-cache-field

    def translations(self) -> int:
        return len(self._by_nat)

    def outbound(self, packet: Packet) -> t.Optional[Packet]:
        """Rewrite a client packet to source from the public address."""
        if packet.protocol == "tcp":
            segment: Segment = packet.payload
            nat_port = self._port_for(packet.protocol, packet.src, segment.sport)
            rewritten = dataclasses.replace(segment, sport=nat_port)
            return packet.copy(src=self.public_addr, payload=rewritten,
                               flow=("tcp", str(self.public_addr), nat_port,
                                     str(packet.dst), segment.dport))
        if packet.protocol == "udp":
            datagram: Datagram = packet.payload
            nat_port = self._port_for(packet.protocol, packet.src, datagram.sport)
            rewritten = Datagram(nat_port, datagram.dport, datagram.payload,
                                 datagram.length)
            return packet.copy(src=self.public_addr, payload=rewritten,
                               flow=("udp", str(self.public_addr), nat_port,
                                     str(packet.dst), datagram.dport))
        if packet.protocol == "icmp":
            echo: _Echo = packet.payload
            nat_ident = self._port_for(packet.protocol, packet.src, echo.ident)
            return packet.copy(src=self.public_addr,
                               payload=_Echo(nat_ident, echo.is_reply),
                               flow=("icmp", str(self.public_addr),
                                     str(packet.dst), nat_ident))
        return None

    def inbound(self, packet: Packet) -> t.Optional[Packet]:
        """Rewrite a reply back toward the client; None if unmapped."""
        if packet.protocol == "tcp":
            segment = packet.payload
            entry = self._by_nat.get(("tcp", segment.dport))
            if entry is None:
                return None
            rewritten = dataclasses.replace(segment, dport=entry.client_port)
            return packet.copy(dst=entry.client_addr, payload=rewritten)
        if packet.protocol == "udp":
            datagram = packet.payload
            entry = self._by_nat.get(("udp", datagram.dport))
            if entry is None:
                return None
            rewritten = Datagram(datagram.sport, entry.client_port,
                                 datagram.payload, datagram.length)
            return packet.copy(dst=entry.client_addr, payload=rewritten)
        if packet.protocol == "icmp":
            echo = packet.payload
            entry = self._by_nat.get(("icmp", echo.ident))
            if entry is None:
                return None
            return packet.copy(dst=entry.client_addr,
                               payload=_Echo(entry.client_port, echo.is_reply))
        return None

    def _port_for(self, proto: str, client: IPv4Address, port: int) -> int:
        key = (proto, str(client), port)
        existing = self._by_client.get(key)
        if existing is not None:
            return existing
        nat_port = next(self._next_port)
        self._by_client[key] = nat_port
        self._by_nat[(proto, nat_port)] = NatEntry(client, port)
        return nat_port
